//! Vendored ChaCha8 random number generator.
//!
//! A faithful ChaCha8 keystream (Bernstein's ChaCha with 8 rounds, the
//! same core the real `rand_chacha` crate uses) exposed through the
//! vendored `rand` shim's `RngCore`/`SeedableRng` traits. The word
//! stream is deterministic given a seed and identical across platforms;
//! it is *not* guaranteed to match upstream `rand_chacha`'s stream
//! word-for-word (the workspace never recorded golden values against
//! upstream, so only self-consistency matters).

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds: fast, high-quality, seedable.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: constants, 8 key words, 64-bit block counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = working;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        Self { state, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_rfc_block_function() {
        // RFC 7539 §2.3.2 test vector uses 20 rounds; with our 8-round
        // generator we can still verify the quarter round primitive from
        // §2.1.1.
        let mut st = [0u32; 16];
        st[0] = 0x11111111;
        st[1] = 0x01020304;
        st[2] = 0x9b8d6f43;
        st[3] = 0x01234567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a92f4);
        assert_eq!(st[1], 0xcb1cf8ce);
        assert_eq!(st[2], 0x4581472e);
        assert_eq!(st[3], 0x5881c4bb);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should differ almost everywhere");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
