//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The build environment has no network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) is unavailable. This crate
//! parses the item token stream directly and emits impls of the shim's
//! value-tree traits (`serde::Serialize::to_value` /
//! `serde::Deserialize::from_value`) as source text.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields (`#[serde(skip)]` and bare
//!   `#[serde(default)]` honoured per field)
//! - tuple structs (newtypes serialize as their inner value, matching
//!   serde; `#[serde(transparent)]` is accepted and implied)
//! - unit structs
//! - enums of unit / newtype / tuple variants, externally tagged by
//!   default or adjacently tagged via `#[serde(tag = "…", content = "…")]`
//! - container-level `#[serde(from = "T", into = "T")]`
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_serialize(&item))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_deserialize(&item))
}

fn emit(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive shim generated invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------- parsing

#[derive(Default)]
struct Attrs {
    tag: Option<String>,
    content: Option<String>,
    from: Option<String>,
    into: Option<String>,
    skip: bool,
    default: bool,
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    arity: usize, // 0 = unit, 1 = newtype, n = tuple
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: Attrs,
    body: Body,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected identifier, got {other:?}"),
        }
    }
}

/// Collects `#[...]` attribute groups, folding any `#[serde(...)]` content
/// into `attrs`; stops at the first non-attribute token.
fn parse_attrs(c: &mut Cursor, attrs: &mut Attrs) {
    while c.at_punct('#') {
        c.next();
        let group = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive shim: malformed attribute: {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        if inner.at_ident("serde") {
            inner.next();
            if let Some(TokenTree::Group(args)) = inner.next() {
                parse_serde_args(Cursor::new(args.stream()), attrs);
            }
        }
    }
}

/// Parses `tag = "…", content = "…", from = "…", into = "…", skip,
/// transparent, …` inside `#[serde(...)]`. Unknown bare idents are ignored
/// (e.g. `transparent`, which is implied for newtypes here).
fn parse_serde_args(mut c: Cursor, attrs: &mut Attrs) {
    while c.peek().is_some() {
        let key = c.expect_ident();
        let value = if c.at_punct('=') {
            c.next();
            match c.next() {
                Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())),
                other => panic!("serde_derive shim: expected string after `{key} =`, got {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("content", Some(v)) => attrs.content = Some(v),
            ("from", Some(v)) => attrs.from = Some(v),
            ("into", Some(v)) => attrs.into = Some(v),
            ("skip", None) => attrs.skip = true,
            ("default", None) => attrs.default = true,
            ("transparent", None) => {}
            (other, _) => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
        }
        if c.at_punct(',') {
            c.next();
        }
    }
}

fn unquote(lit: &str) -> String {
    let s = lit.trim();
    let s = s.strip_prefix('"').unwrap_or(s);
    let s = s.strip_suffix('"').unwrap_or(s);
    s.to_string()
}

/// Skips a type (or any token run) up to a top-level `,`, tracking angle
/// bracket depth so `Vec<(A, B)>`-style commas do not terminate early.
fn skip_until_top_comma(c: &mut Cursor) {
    let mut angle_depth: i32 = 0;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        c.next();
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let mut attrs = Attrs::default();
    parse_attrs(&mut c, &mut attrs);
    // Visibility: `pub`, `pub(crate)`, …
    if c.at_ident("pub") {
        c.next();
        if matches!(c.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            c.next();
        }
    }
    let kind = c.expect_ident();
    let name = c.expect_ident();
    if c.at_punct('<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    let body = match kind.as_str() {
        "struct" => parse_struct_body(&mut c),
        "enum" => parse_enum_body(&mut c),
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    };
    Item { name, attrs, body }
}

fn parse_struct_body(c: &mut Cursor) -> Body {
    match c.peek() {
        None => Body::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_top_level_fields(g.stream());
            Body::Tuple(n)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Body::Named(parse_named_fields(g.stream()))
        }
        other => panic!("serde_derive shim: unexpected struct body: {other:?}"),
    }
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut n = 0;
    while c.peek().is_some() {
        skip_until_top_comma(&mut c);
        n += 1;
        c.next(); // the comma, if any
    }
    n
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let mut attrs = Attrs::default();
        parse_attrs(&mut c, &mut attrs);
        if c.peek().is_none() {
            break;
        }
        if c.at_ident("pub") {
            c.next();
            if matches!(
                c.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                c.next();
            }
        }
        let name = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_top_comma(&mut c);
        c.next(); // trailing comma, if any
        fields.push(Field { name, skip: attrs.skip, default: attrs.default });
    }
    fields
}

fn parse_enum_body(c: &mut Cursor) -> Body {
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde_derive shim: expected enum body, got {other:?}"),
    };
    let mut c = Cursor::new(group.stream());
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let mut attrs = Attrs::default();
        parse_attrs(&mut c, &mut attrs);
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let arity = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                c.next();
                n
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive shim: struct enum variants are not supported (`{name}`)")
            }
            _ => 0,
        };
        // Skip an explicit discriminant, if any.
        if c.at_punct('=') {
            skip_until_top_comma(&mut c);
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, arity });
    }
    Body::Enum(variants)
}

// ------------------------------------------------------------- generation

fn var_bindings(arity: usize) -> (String, Vec<String>) {
    let names: Vec<String> = (0..arity).map(|i| format!("__f{i}")).collect();
    (names.join(", "), names)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.attrs.into {
        format!(
            "let __repr: {into} = ::core::convert::Into::into(\
             <Self as ::core::clone::Clone>::clone(self));\
             ::serde::Serialize::to_value(&__repr)"
        )
    } else {
        match &item.body {
            Body::Unit => "::serde::Value::Null".to_string(),
            Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
            Body::Named(fields) => {
                let mut s = String::from("let mut __m = ::serde::Map::new();");
                for f in fields.iter().filter(|f| !f.skip) {
                    s.push_str(&format!(
                        "__m.insert(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0}));",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(__m)");
                s
            }
            Body::Enum(variants) => gen_serialize_enum(item, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             #[allow(unused_mut, unused_variables, clippy::all)]\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        let (pat, binds) = var_bindings(v.arity);
        let payload = match v.arity {
            0 => None,
            1 => Some(format!("::serde::Serialize::to_value({})", binds[0])),
            _ => {
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                Some(format!("::serde::Value::Array(::std::vec![{}])", elems.join(", ")))
            }
        };
        let lhs = if v.arity == 0 {
            format!("{name}::{vn}")
        } else {
            format!("{name}::{vn}({pat})")
        };
        let rhs = match (&item.attrs.tag, &item.attrs.content) {
            (Some(tag), content) => {
                // Adjacently tagged: {"tag": "Variant", "content": payload}
                let mut s = String::from("{ let mut __m = ::serde::Map::new();");
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{tag}\"), \
                     ::serde::Value::String(::std::string::String::from(\"{vn}\")));"
                ));
                if let (Some(content), Some(payload)) = (content, &payload) {
                    s.push_str(&format!(
                        "__m.insert(::std::string::String::from(\"{content}\"), {payload});"
                    ));
                }
                s.push_str("::serde::Value::Object(__m) }");
                s
            }
            (None, _) => match &payload {
                // Externally tagged: "Variant" or {"Variant": payload}
                None => format!(
                    "::serde::Value::String(::std::string::String::from(\"{vn}\"))"
                ),
                Some(payload) => format!(
                    "{{ let mut __m = ::serde::Map::new();\
                     __m.insert(::std::string::String::from(\"{vn}\"), {payload});\
                     ::serde::Value::Object(__m) }}"
                ),
            },
        };
        arms.push_str(&format!("{lhs} => {rhs},\n"));
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.attrs.from {
        format!(
            "let __repr: {from} = ::serde::Deserialize::from_value(__v)?;\
             ::core::result::Result::Ok(::core::convert::From::from(__repr))"
        )
    } else {
        match &item.body {
            Body::Unit => format!("::core::result::Result::Ok({name})"),
            Body::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(\
                             __arr.get({i}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for {name}\"))?;\
                     ::core::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Body::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::core::default::Default::default(),",
                            f.name
                        ));
                    } else if f.default {
                        // Absent key ⇒ Default::default(); present key
                        // deserializes normally (matching upstream serde's
                        // bare `#[serde(default)]`).
                        inits.push_str(&format!(
                            "{0}: match __obj.get(\"{0}\") {{\
                             ::core::option::Option::Some(__fv) => \
                             ::serde::Deserialize::from_value(__fv)\
                             .map_err(|e| e.context(\"{name}.{0}\"))?,\
                             ::core::option::Option::None => \
                             ::core::default::Default::default(),\
                             }},",
                            f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{0}: ::serde::Deserialize::from_value(\
                             __obj.get(\"{0}\").unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| e.context(\"{name}.{0}\"))?,",
                            f.name
                        ));
                    }
                }
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}\"))?;\
                     ::core::result::Result::Ok({name} {{ {inits} }})"
                )
            }
            Body::Enum(variants) => gen_deserialize_enum(item, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables, clippy::all)]\n\
             fn from_value(__v: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// Builds the expression reconstructing variant `v` from `__content`
/// (a `&Value` holding the payload).
fn variant_from_content(name: &str, v: &Variant) -> String {
    match v.arity {
        0 => format!("::core::result::Result::Ok({name}::{})", v.name),
        1 => format!(
            "::core::result::Result::Ok({name}::{}(\
             ::serde::Deserialize::from_value(__content)?))",
            v.name
        ),
        n => {
            let elems: Vec<String> = (0..n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         __arr.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "{{ let __arr = __content.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array payload for {name}::{}\"))?;\
                 ::core::result::Result::Ok({name}::{}({})) }}",
                v.name,
                v.name,
                elems.join(", ")
            )
        }
    }
}

fn gen_deserialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if let Some(tag) = &item.attrs.tag {
        let content_key = item.attrs.content.clone().unwrap_or_else(|| "content".to_string());
        let mut arms = String::new();
        for v in variants {
            arms.push_str(&format!("\"{}\" => {},\n", v.name, variant_from_content(name, v)));
        }
        format!(
            "let __obj = __v.as_object().ok_or_else(|| \
             ::serde::Error::custom(\"expected object for {name}\"))?;\
             let __tag = match __obj.get(\"{tag}\") {{\
                 ::core::option::Option::Some(::serde::Value::String(s)) => s.as_str(),\
                 _ => return ::core::result::Result::Err(\
                     ::serde::Error::custom(\"missing `{tag}` tag for {name}\")),\
             }};\
             let __content = __obj.get(\"{content_key}\").unwrap_or(&::serde::Value::Null);\
             match __tag {{\n{arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant {{__other:?}}\"))),\n\
             }}"
        )
    } else {
        // Externally tagged.
        let mut unit_arms = String::new();
        for v in variants.iter().filter(|v| v.arity == 0) {
            unit_arms.push_str(&format!(
                "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                v.name
            ));
        }
        let mut payload_arms = String::new();
        for v in variants.iter().filter(|v| v.arity > 0) {
            payload_arms.push_str(&format!(
                "\"{}\" => {},\n",
                v.name,
                variant_from_content(name, v)
            ));
        }
        format!(
            "match __v {{\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::core::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\
                     let (__k, __content) = __m.iter().next().expect(\"len checked\");\
                     match __k.as_str() {{\n{payload_arms}\
                         __other => ::core::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                     }}\
                 }}\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                     \"expected string or single-key object for {name}\")),\
             }}"
        )
    }
}
