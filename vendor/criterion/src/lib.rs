//! A minimal, dependency-free, criterion-API-compatible bench harness.
//!
//! The TD-AC workspace vendors every dependency and builds offline, so
//! the real criterion crate (and its tree of transitive deps) is out of
//! reach. The benches only use a small slice of its API — groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `Throughput`,
//! `BenchmarkId` — which this shim reimplements with a plain
//! `Instant`-based timer:
//!
//! * each benchmark is calibrated once, then timed for `sample_size`
//!   samples (default 10, override with `TDAC_BENCH_SAMPLES`), each
//!   sample batching enough iterations to cover ~5 ms;
//! * the per-iteration **median** is reported on stdout, and — when
//!   `TDAC_BENCH_JSON` names a file — appended to it as one JSON line
//!   `{"id": "<group>/<name>", "median_ns": <f64>, "samples": <n>}`,
//!   the format `scripts/bench.sh` folds into `BENCH_tdac.json`.
//!
//! Statistical machinery (outlier analysis, regression detection) is
//! deliberately absent: the repo's benches compare medians across
//! configurations of the *same* build, where a median over batched
//! samples is stable enough, as the committed BENCH_tdac.json shows.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

/// Re-export so benches may use either `criterion::black_box` or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle, created by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group; results are reported as
    /// `<group>/<bench name>`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Declared throughput of a benchmark. Accepted for API compatibility;
/// the shim reports time per iteration only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name (`group/<parameter>`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a bare parameter, as in
    /// `BenchmarkId::from_parameter(62)`.
    pub fn from_parameter(p: impl Display) -> Self {
        Self { id: p.to_string() }
    }

    /// Builds a `<function>/<parameter>` id.
    pub fn new(function: impl Into<String>, p: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), p),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares throughput (accepted, not used in reports).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark closure under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark closure over a borrowed input under
    /// `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-bench; nothing to flush).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

/// Target wall time per sample: batches of iterations are sized so one
/// sample covers at least this long, keeping timer quantization noise
/// well under the medians being compared.
const SAMPLE_TARGET_NS: f64 = 5_000_000.0;

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = std::env::var("TDAC_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(sample_size)
        .max(1);

    // Calibration run: one iteration, doubling as warm-up.
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns.max(1.0);
    let iters = (SAMPLE_TARGET_NS / per_iter).ceil().max(1.0) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.iters = iters;
        f(&mut b);
        times.push(b.elapsed_ns / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("bench times are finite"));
    let median = if times.len() % 2 == 1 {
        times[times.len() / 2]
    } else {
        (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2.0
    };
    let median = (median * 10.0).round() / 10.0;

    println!("{id}: median {median} ns/iter ({samples} samples × {iters} iters)");
    if let Ok(path) = std::env::var("TDAC_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\": {}, \"median_ns\": {median}, \"samples\": {samples}}}\n",
                json_string(id)
            );
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("cannot open TDAC_BENCH_JSON file {path}: {e}"));
            file.write_all(line.as_bytes())
                .expect("write bench JSON line");
        }
    }
}

/// Minimal JSON string encoder for benchmark ids (ASCII names with
/// slashes and underscores in practice; escapes defensively anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Declares a bench group function compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group and ignoring
/// the arguments `cargo bench` forwards (`--bench`, filters).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_json_roundtrip() {
        std::env::remove_var("TDAC_BENCH_JSON");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        assert!(calls >= 4, "calibration + 3 samples ran: {calls}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a/b"), "\"a/b\"");
        assert_eq!(json_string("q\"\\"), "\"q\\\"\\\\\"");
    }
}
