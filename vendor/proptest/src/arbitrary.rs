//! `any::<T>()` — canonical full-domain strategies for primitives.

use rand::RngCore;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for one primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty => |$rng:ident| $draw:expr;)*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn gen(&self, $rng: &mut TestRng) -> $t {
                $draw
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u32 => |rng| rng.next_u32();
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i32 => |rng| rng.next_u32() as i32;
    i64 => |rng| rng.next_u64() as i64;
}
