//! `any::<T>()` — canonical full-domain strategies for primitives.

use rand::RngCore;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for one primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty => |$rng:ident| $draw:expr, |$value:ident| $shrink:expr;)*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn gen(&self, $rng: &mut TestRng) -> $t {
                $draw
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let $value = *value;
                $shrink
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

// Full-domain integers shrink toward zero by halving; booleans toward
// `false`. Candidates are deduplicated by construction (0, v/2, and the
// predecessor coincide only near zero, where the guards drop them).
macro_rules! uint_toward_zero {
    ($v:ident) => {{
        let mut out = Vec::new();
        if $v != 0 {
            out.push(0);
            if $v / 2 != 0 {
                out.push($v / 2);
            }
            if $v > 2 {
                out.push($v - 1);
            }
        }
        out
    }};
}

macro_rules! sint_toward_zero {
    ($v:ident) => {{
        let mut out = Vec::new();
        if $v != 0 {
            out.push(0);
            if $v / 2 != 0 {
                out.push($v / 2);
            }
        }
        out
    }};
}

impl_any! {
    bool => |rng| rng.next_u64() & 1 == 1, |v| if v { vec![false] } else { Vec::new() };
    u8 => |rng| rng.next_u64() as u8, |v| uint_toward_zero!(v);
    u32 => |rng| rng.next_u32(), |v| uint_toward_zero!(v);
    u64 => |rng| rng.next_u64(), |v| uint_toward_zero!(v);
    usize => |rng| rng.next_u64() as usize, |v| uint_toward_zero!(v);
    i32 => |rng| rng.next_u32() as i32, |v| sint_toward_zero!(v);
    i64 => |rng| rng.next_u64() as i64, |v| sint_toward_zero!(v);
}
