//! Per-case configuration and RNG for the `proptest!` macro.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// Deterministic per-case RNG.
///
/// Seeded from the fully-qualified test name and case index only, so a
/// failing case is reproducible by rerunning the same test binary — no
/// persistence file needed.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(ChaCha8Rng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
