//! Per-case configuration, RNG, and the property runner (with greedy
//! shrinking) behind the `proptest!` macro.

use std::panic::{self, AssertUnwindSafe};

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::strategy::Strategy;

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// Deterministic per-case RNG.
///
/// Seeded from the fully-qualified test name and case index only, so a
/// failing case is reproducible by rerunning the same test binary — no
/// persistence file needed.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(ChaCha8Rng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Upper bound on shrink attempts per failing case. Shrinking is a
/// debugging aid, not a proof search; a fixed budget keeps failing runs
/// fast even when every candidate also fails.
const SHRINK_BUDGET: u32 = 256;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs one property: `config.cases` random cases drawn from `strategy`,
/// each fed to `body`. On the first failing case the input is greedily
/// shrunk via [`Strategy::shrink`] — a candidate is kept whenever the
/// body still panics on it — and the test then fails reporting the
/// *minimal* input found, not the raw generated one.
///
/// This is the engine behind the `proptest!` macro; call it directly for
/// properties whose argument list the macro grammar cannot express.
pub fn run_property<S, F>(name: &str, config: &Config, strategy: S, body: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value),
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case as u64);
        let input = strategy.gen(&mut rng);
        let fails = |v: &S::Value| -> Option<String> {
            panic::catch_unwind(AssertUnwindSafe(|| body(v.clone())))
                .err()
                .map(|e| panic_message(e.as_ref()))
        };
        // The default panic hook already printed the original failure's
        // backtrace; silence it for the shrink re-runs so a failing
        // property does not flood the test log.
        let Some(mut message) = fails(&input) else {
            continue;
        };
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let mut minimal = input;
        let mut budget = SHRINK_BUDGET;
        'shrinking: while budget > 0 {
            for candidate in strategy.shrink(&minimal) {
                if budget == 0 {
                    break 'shrinking;
                }
                budget -= 1;
                if let Some(m) = fails(&candidate) {
                    minimal = candidate;
                    message = m;
                    continue 'shrinking; // restart from the new minimum
                }
            }
            break; // no candidate still fails: local minimum reached
        }
        panic::set_hook(prev_hook);
        panic!(
            "proptest: property {name} failed at case {case} \
             ({} shrink attempts)\nminimal failing input: {minimal:?}\n\
             panic: {message}",
            SHRINK_BUDGET - budget,
        );
    }
}
