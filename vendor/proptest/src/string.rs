//! Regex-shaped string strategies.
//!
//! Supports exactly the pattern family the workspace's tests use: one
//! character class with a bounded repetition — `[class]{m,n}` or
//! `[class]{n}`. Classes may contain literal characters, `a-b` ranges,
//! and the escapes `\n`, `\t`, `\r`, `\\`, `\"`, `\-`, `\]`.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Error for unsupported or malformed patterns.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Strategy producing strings matching a `[class]{m,n}` pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len)
            .map(|_| self.alphabet[rng.gen_range(0..self.alphabet.len())])
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        // Truncate toward the pattern's minimum repetition count; every
        // candidate still matches `[class]{m,n}` because it is a prefix
        // of a matching string.
        let len = value.chars().count();
        let mut out = Vec::new();
        for target in [self.min_len, self.min_len + (len.saturating_sub(self.min_len)) / 2, len.saturating_sub(1)] {
            if target < len && target >= self.min_len {
                let cand: String = value.chars().take(target).collect();
                if !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        out
    }
}

/// Parses `pattern` into a string strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let err = || Error(pattern.to_string());
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;

    if chars.get(pos) != Some(&'[') {
        return Err(err());
    }
    pos += 1;

    // Character class body: literals, escapes, and `a-b` ranges.
    let mut class: Vec<char> = Vec::new();
    let read_char = |pos: &mut usize| -> Result<Option<char>, Error> {
        match chars.get(*pos) {
            None => Err(err()),
            Some(']') => Ok(None),
            Some('\\') => {
                *pos += 1;
                let c = chars.get(*pos).ok_or_else(err)?;
                *pos += 1;
                Ok(Some(match c {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '\\' | '"' | '-' | ']' => *c,
                    _ => return Err(err()),
                }))
            }
            Some(&c) => {
                *pos += 1;
                Ok(Some(c))
            }
        }
    };
    loop {
        let Some(start) = read_char(&mut pos)? else { break };
        // `a-b` range, unless the '-' is the last char before ']'.
        if chars.get(pos) == Some(&'-') && chars.get(pos + 1) != Some(&']') {
            pos += 1;
            let end = read_char(&mut pos)?.ok_or_else(err)?;
            if end < start {
                return Err(err());
            }
            class.extend(start..=end);
        } else {
            class.push(start);
        }
    }
    if class.is_empty() {
        return Err(err());
    }
    pos += 1; // consume ']'

    // Repetition: `{n}` or `{m,n}`.
    if chars.get(pos) != Some(&'{') {
        return Err(err());
    }
    pos += 1;
    let rest: String = chars[pos..].iter().collect();
    let Some(close) = rest.find('}') else { return Err(err()) };
    if !rest[close + 1..].is_empty() {
        return Err(err());
    }
    let bounds = &rest[..close];
    let (min_len, max_len) = match bounds.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().map_err(|_| err())?,
            hi.parse().map_err(|_| err())?,
        ),
        None => {
            let n: usize = bounds.parse().map_err(|_| err())?;
            (n, n)
        }
    };
    if min_len > max_len {
        return Err(err());
    }

    Ok(RegexGeneratorStrategy { alphabet: class, min_len, max_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_printable_ascii_class() {
        let s = string_regex("[ -~]{1,12}").expect("valid");
        assert_eq!(s.alphabet.len(), 95);
        assert_eq!((s.min_len, s.max_len), (1, 12));
    }

    #[test]
    fn parses_escapes_and_fixed_count() {
        let s = string_regex("[ -~\n\"]{3}").expect("valid");
        assert!(s.alphabet.contains(&'\n'));
        assert!(s.alphabet.contains(&'"'));
        assert_eq!((s.min_len, s.max_len), (3, 3));
    }

    #[test]
    fn rejects_unsupported_patterns() {
        for bad in ["abc", "[a-z]*", "[]{1,2}", "[a-z]{2,", "[z-a]{1}"] {
            assert!(string_regex(bad).is_err(), "{bad} should be rejected");
        }
    }
}
