//! Vendored property-testing shim with the subset of the `proptest` API
//! this workspace uses: `Strategy` (with `prop_map` / `prop_flat_map`),
//! range and tuple strategies, `any::<T>()`, `collection::vec`,
//! `string_regex` for `[class]{m,n}` patterns, `prop_oneof!`, and the
//! `proptest!` test macro.
//!
//! Differences from the real crate, by design:
//! - **Minimal shrinking.** On a failing case the runner greedily
//!   simplifies the inputs — integers halve toward the range start,
//!   collections and strings truncate toward their minimum length,
//!   tuples shrink component-wise — and reports the smallest input that
//!   still fails (see [`test_runner::run_property`]). Values produced
//!   through `prop_map` / `prop_flat_map` / `prop_oneof!` are reported
//!   as drawn (those combinators cannot invert their transformation).
//!   Failing cases stay reproducible because the per-case RNG is seeded
//!   from the test name and case index only.
//! - Regex strategies support exactly one shape: a single character
//!   class with a bounded repetition (`[...]{m,n}` / `[...]{n}`), which
//!   is all the workspace's tests use.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
///
/// Without shrinking there is nothing to unwind gently, so this is a
/// plain `assert!` with the same formatting arguments.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a `proptest!` body (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Uniform choice between heterogeneous strategies for the same value
/// type. Each arm is boxed; the branch is picked uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(pattern in strategy, ...) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                // All arguments combine into one tuple strategy so the
                // runner can shrink them jointly; generation order (and
                // hence the RNG stream) matches drawing each argument in
                // sequence, keeping historical cases reproducible.
                let __strategy = ($($strat,)+);
                $crate::test_runner::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__config,
                    __strategy,
                    |($($pat,)+)| $body,
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let u = Strategy::gen(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
            let i = Strategy::gen(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
            let f = Strategy::gen(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1usize..4, 10i64..20).prop_map(|(a, b)| a as i64 + b);
        let mut rng = crate::test_runner::TestRng::for_case("tuples", 1);
        for _ in 0..100 {
            let v = Strategy::gen(&strat, &mut rng);
            assert!((11..23).contains(&v));
        }
    }

    #[test]
    fn flat_map_uses_inner_value() {
        let strat = (2usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n..=n)
        });
        let mut rng = crate::test_runner::TestRng::for_case("flat", 2);
        for _ in 0..50 {
            let v = Strategy::gen(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_regex_respects_class_and_length() {
        let strat = crate::string::string_regex("[a-c]{2,4}").expect("valid");
        let mut rng = crate::test_runner::TestRng::for_case("re", 3);
        for _ in 0..100 {
            let s = Strategy::gen(&strat, &mut rng);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn string_literal_is_a_strategy() {
        let mut rng = crate::test_runner::TestRng::for_case("lit", 4);
        let s = Strategy::gen(&"[ -~\n\"]{0,30}", &mut rng);
        assert!(s.chars().count() <= 30);
        assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
    }

    #[test]
    fn oneof_covers_every_arm() {
        let strat = prop_oneof![
            (0usize..1).prop_map(|_| 0u8),
            (0usize..1).prop_map(|_| 1u8),
            (0usize..1).prop_map(|_| 2u8),
        ];
        let mut rng = crate::test_runner::TestRng::for_case("oneof", 5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::gen(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn same_case_is_reproducible() {
        let gen_once = || {
            let mut rng = crate::test_runner::TestRng::for_case("repro", 7);
            Strategy::gen(&crate::collection::vec(0u64..1000, 5..10), &mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works((a, b) in (0usize..5, 0usize..5), extra in any::<bool>()) {
            prop_assert!(a < 5 && b < 5);
            let _ = extra;
            prop_assert_eq!(a + b, b + a, "commutativity {} {}", a, b);
        }
    }

    #[test]
    fn shrinking_reports_a_minimal_counterexample() {
        // Property: "every drawn integer is below 40" — false for most of
        // the range. The minimal failing input under toward-start
        // shrinking is exactly 40.
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_property(
                "shrink-int",
                &crate::test_runner::Config::with_cases(16),
                10usize..1000,
                |v| assert!(v < 40, "too big: {v}"),
            );
        });
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("string panic"),
        };
        assert!(
            msg.contains("minimal failing input: 40"),
            "shrinking should land on the boundary, got:\n{msg}"
        );
    }

    #[test]
    fn shrinking_truncates_collections() {
        // Property: "no vec contains an element ≥ 5". Minimal failing
        // input is the shortest vec (length 1) holding the smallest
        // failing element (5).
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_property(
                "shrink-vec",
                &crate::test_runner::Config::with_cases(16),
                crate::collection::vec(0usize..100, 1..8),
                |v| assert!(v.iter().all(|&x| x < 5), "bad vec {v:?}"),
            );
        });
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("string panic"),
        };
        assert!(
            msg.contains("minimal failing input: [5]"),
            "expected the one-element vec [5], got:\n{msg}"
        );
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let strat = (0usize..10, 0usize..10);
        let cands = Strategy::shrink(&strat, &(4, 0));
        // Only the first component can shrink; every candidate keeps the
        // second at 0.
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|&(_, b)| b == 0));
        assert!(cands.contains(&(0, 0)) && cands.contains(&(2, 0)) && cands.contains(&(3, 0)));
    }

    #[test]
    fn passing_properties_never_shrink() {
        // Must complete without panicking (and without touching the
        // panic hook).
        crate::test_runner::run_property(
            "always-pass",
            &crate::test_runner::Config::with_cases(32),
            (0usize..100, crate::collection::vec(0i64..10, 0..5)),
            |(a, v)| {
                assert!(a < 100);
                assert!(v.len() < 5);
            },
        );
    }
}
