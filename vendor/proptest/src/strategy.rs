//! The `Strategy` trait and its combinators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// The core method `gen` is object safe; the combinators require
/// `Sized`. There is no shrinking: each case draws fresh values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derives a second strategy from each produced value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.0.len());
        self.0[arm].gen(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.gen(rng)).gen(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(usize, u32, u64, i32, i64, f32, f64);

/// String literals act as regex strategies (`"[ -~]{0,40}"` in a
/// `proptest!` argument position), matching real-proptest behaviour.
impl Strategy for &str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .expect("string literal used as a strategy must be a supported regex")
            .gen(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
