//! The `Strategy` trait and its combinators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// The core method `gen` is object safe; the combinators require
/// `Sized`. There is no shrinking: each case draws fresh values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a previously generated value, most
    /// aggressive first. The runner greedily re-tests candidates and
    /// keeps any that still fail, so minimal counterexamples only need
    /// each step to stay inside the strategy's domain. Combinators that
    /// cannot invert their transformation (`prop_map`, `prop_flat_map`,
    /// `prop_oneof!`) return no candidates — shrinking then stops at the
    /// originally drawn value, which matches the shim's "minimal, not
    /// optimal" contract.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derives a second strategy from each produced value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.0.len());
        self.0[arm].gen(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.gen(rng)).gen(rng)
    }
}

// Shrinking a range-drawn number moves it toward the range's start: the
// start itself, the midpoint, and the predecessor. Every candidate stays
// inside the range by construction.
macro_rules! int_shrink {
    ($t:ty) => {
        fn int_candidates(start: $t, value: $t) -> Vec<$t> {
            let mut out = Vec::new();
            if value > start {
                out.push(start);
                // Midpoint toward the start ("halve integers").
                let mid = start + (value - start) / 2;
                if mid != start && mid != value {
                    out.push(mid);
                }
                if value - 1 != start {
                    out.push(value - 1);
                }
            }
            out
        }
    };
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!($t);
                int_candidates(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!($t);
                int_candidates(*self.start(), *value)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u32, u64, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value != self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2.0;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value != *self.start() {
                    out.push(*self.start());
                    let mid = *self.start() + (*value - *self.start()) / 2.0;
                    if mid != *self.start() && mid != *value {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// String literals act as regex strategies (`"[ -~]{0,40}"` in a
/// `proptest!` argument position), matching real-proptest behaviour.
impl Strategy for &str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .expect("string literal used as a strategy must be a supported regex")
            .gen(rng)
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        crate::string::string_regex(self)
            .map(|s| s.shrink(value))
            .unwrap_or_default()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, cloning the rest.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
