//! Collection strategies: `vec(element, size)`.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// A strategy producing `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.gen(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        // Truncate toward the minimum length first (big jumps): the
        // shortest allowed prefix, then the half-way prefix.
        let len = value.len();
        let lo = self.size.lo.min(len);
        for target in [lo, lo + (len - lo) / 2] {
            if target < len && !out.iter().any(|v| v.len() == target) {
                out.push(value[..target].to_vec());
            }
        }
        // Removing any single element also shortens the vec, and unlike
        // a prefix cut it can discard a passing element that precedes
        // the failing one.
        if len > self.size.lo {
            for i in 0..len {
                let mut next = value.clone();
                next.remove(i);
                out.push(next);
            }
        }
        // Then shrink elements in place, one position at a time.
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}
