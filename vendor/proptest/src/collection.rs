//! Collection strategies: `vec(element, size)`.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// A strategy producing `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}
