//! Minimal vendored rayon shim.
//!
//! The build environment has no network access, so the real `rayon`
//! cannot be fetched. This shim provides the subset of rayon's API the
//! workspace uses — `par_iter` / `into_par_iter` / `par_chunks` /
//! `par_bridge`, `map` / `for_each` / `collect` / `reduce`, thread pools
//! with `install`, and `current_num_threads` — built on
//! `std::thread::scope`.
//!
//! # Determinism contract (stronger than rayon's)
//!
//! Every driver that materializes results (`run`, and everything built on
//! it: `collect`, `for_each` ordering of side-effect-free maps, …)
//! returns them in **source order**, and `reduce` folds them **in source
//! order** — so any `map → collect`/`reduce` chain produces the exact
//! sequence of `f` applications and fold steps a sequential loop would,
//! bit-identical at any thread count. The only exception is
//! `par_bridge().map(...).reduce(...)`, which folds worker-locally to
//! keep memory bounded; there the operation must be order-insensitive
//! (e.g. an argmax with a total-order tie-break), which rayon requires of
//! `reduce` anyway.
//!
//! # Scheduling
//!
//! Work is split into one contiguous chunk per thread (no work
//! stealing); threads are scoped per call rather than pooled. That is a
//! deliberate simplification: the workspace's parallel regions are
//! coarse (per-`k` sweeps, per-group algorithm runs, `O(n²)` kernels),
//! where chunked splitting is within noise of a stealing scheduler.
//! Nested parallel calls run inline on the worker thread (depth-1
//! parallelism), which both bounds oversubscription and keeps nested
//! results deterministic.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Mutex;

// ------------------------------------------------------- thread counting

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set on shim worker threads so nested parallel calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel calls on this thread will use.
///
/// Resolution order: nested-in-worker (always 1) → `ThreadPool::install`
/// override → `RAYON_NUM_THREADS` env var → `available_parallelism`.
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n;
    }
    default_num_threads()
}

fn default_num_threads() -> usize {
    // Resolved once per process, like rayon's global pool: `env::var` is
    // cheap but `available_parallelism` reads cgroup files on Linux
    // (~10 µs/call), which would otherwise tax every parallel call.
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Error building a [`ThreadPool`] (kept for API compatibility; the shim
/// builder cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { n: self.num_threads.unwrap_or_else(default_num_threads) })
    }
}

/// A "pool": in this shim, a scoped thread-count override. Threads are
/// spawned per parallel call, not kept alive.
#[derive(Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing every parallel
    /// call it makes (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE.with(|o| o.replace(Some(self.n)));
        let guard = RestoreOverride(prev);
        let out = op();
        drop(guard);
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}

struct RestoreOverride(Option<usize>);

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.0));
    }
}

// --------------------------------------------------------------- driving

/// Splits `0..len` into at most `n` contiguous ranges of near-equal size.
fn split_ranges(len: usize, n: usize) -> Vec<Range<usize>> {
    let n = n.clamp(1, len.max(1));
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `work` over each chunk (one scoped thread per chunk when more
/// than one) and concatenates the per-chunk outputs **in chunk order**.
fn drive_chunks<C: Send, R: Send>(
    chunks: Vec<C>,
    work: &(dyn Fn(C) -> Vec<R> + Sync),
) -> Vec<R> {
    if chunks.len() <= 1 {
        return chunks.into_iter().flat_map(work).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    work(c)
                })
            })
            .collect();
        let mut out = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

// ---------------------------------------------------------------- traits

/// A parallel iterator over `Item`s with source-order result delivery.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Applies `f` to every item in parallel, returning the results in
    /// **source order**. This is the primitive every adapter builds on.
    fn run<R: Send>(self, f: &(dyn Fn(Self::Item) -> R + Sync)) -> Vec<R>;

    /// Map + fold without necessarily materializing all mapped values
    /// (the bridge overrides this to stream). The default materializes
    /// via [`run`](Self::run) and folds in source order.
    fn map_reduce<R: Send>(
        self,
        map: &(dyn Fn(Self::Item) -> R + Sync),
        identity: &(dyn Fn() -> R + Sync),
        op: &(dyn Fn(R, R) -> R + Sync),
    ) -> R {
        self.run(map).into_iter().fold(identity(), |a, b| op(a, b))
    }

    /// Transforms each item with `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Transforms each item, dropping `None` results (order preserved).
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Runs `f` on every item for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.run(&move |x| f(x));
    }

    /// Collects results in source order into any `FromIterator`.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run(&|x| x).into_iter().collect()
    }

    /// Reduces all items with `op`, starting each fold arm from
    /// `identity()`. Folds in source order (except after `par_bridge`,
    /// which folds worker-locally — `op` must be order-insensitive
    /// there, as rayon itself requires).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        self.map_reduce(&|x| x, &identity, &op)
    }

    /// Number of items.
    fn count(self) -> usize {
        self.run(&|_| ()).len()
    }
}

/// Types convertible into a [`ParallelIterator`] by value.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` sugar: parallel iteration over `&self`.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: Send + 'a;

    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

// --------------------------------------------------------------- sources

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn run<R: Send>(self, f: &(dyn Fn(Self::Item) -> R + Sync)) -> Vec<R> {
        let slice = self.slice;
        let ranges = split_ranges(slice.len(), current_num_threads());
        drive_chunks(ranges, &|range: Range<usize>| {
            slice[range].iter().map(f).collect()
        })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self.as_slice() }
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn run<R: Send>(self, f: &(dyn Fn(Self::Item) -> R + Sync)) -> Vec<R> {
        let mut items = self.items;
        let ranges = split_ranges(items.len(), current_num_threads());
        // Split the Vec into one owned chunk per range (back to front so
        // split_off is O(chunk)).
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
        for range in ranges.iter().rev() {
            chunks.push(items.split_off(range.start));
        }
        chunks.reverse();
        drive_chunks(chunks, &|chunk: Vec<T>| chunk.into_iter().map(f).collect())
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        VecIter { items: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn run<R: Send>(self, f: &(dyn Fn(Self::Item) -> R + Sync)) -> Vec<R> {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let ranges = split_ranges(len, current_num_threads());
        drive_chunks(ranges, &|range: Range<usize>| {
            (start + range.start..start + range.end).map(f).collect()
        })
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> Self::Iter {
        RangeIter { range: self }
    }
}

/// `par_chunks`: parallel iteration over non-overlapping subslices.
pub trait ParallelSlice<T: Sync> {
    /// Splits into `chunk_size`-sized pieces (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> VecIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> VecIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        VecIter { items: self.chunks(chunk_size).collect() }
    }
}

// -------------------------------------------------------------- adapters

/// See [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn run<R2: Send>(self, f2: &(dyn Fn(Self::Item) -> R2 + Sync)) -> Vec<R2> {
        let f = self.f;
        let composed = move |x: B::Item| f2(f(x));
        self.base.run(&composed)
    }

    fn map_reduce<R2: Send>(
        self,
        map: &(dyn Fn(Self::Item) -> R2 + Sync),
        identity: &(dyn Fn() -> R2 + Sync),
        op: &(dyn Fn(R2, R2) -> R2 + Sync),
    ) -> R2 {
        let f = self.f;
        let composed = move |x: B::Item| map(f(x));
        self.base.map_reduce(&composed, identity, op)
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> Option<R> + Sync,
    R: Send,
{
    type Item = R;

    fn run<R2: Send>(self, f2: &(dyn Fn(Self::Item) -> R2 + Sync)) -> Vec<R2> {
        let f = self.f;
        let composed = move |x: B::Item| f(x).map(f2);
        let results = self.base.run(&composed);
        results.into_iter().flatten().collect()
    }

    fn map_reduce<R2: Send>(
        self,
        map: &(dyn Fn(Self::Item) -> R2 + Sync),
        identity: &(dyn Fn() -> R2 + Sync),
        op: &(dyn Fn(R2, R2) -> R2 + Sync),
    ) -> R2 {
        let f = self.f;
        // `identity()` must be neutral for `op` (rayon's contract), so
        // folding it in for filtered-out items is a no-op.
        let composed = move |x: B::Item| match f(x) {
            Some(y) => map(y),
            None => identity(),
        };
        self.base.map_reduce(&composed, identity, op)
    }
}

// ---------------------------------------------------------------- bridge

/// Converts any `Iterator + Send` into a parallel iterator. See
/// [`ParallelBridge`].
pub struct IterBridge<I> {
    iter: I,
}

/// `par_bridge()`: drive a sequential iterator from multiple threads.
/// Items are pulled lazily under a lock, so `Bell(n)`-sized streams never
/// materialize.
pub trait ParallelBridge: Iterator + Send + Sized
where
    Self::Item: Send,
{
    /// Bridges `self` into a [`ParallelIterator`].
    fn par_bridge(self) -> IterBridge<Self> {
        IterBridge { iter: self }
    }
}

impl<I: Iterator + Send> ParallelBridge for I where I::Item: Send {}

impl<I: Iterator + Send> ParallelIterator for IterBridge<I>
where
    I::Item: Send,
{
    type Item = I::Item;

    fn run<R: Send>(self, f: &(dyn Fn(Self::Item) -> R + Sync)) -> Vec<R> {
        let n = current_num_threads();
        if n <= 1 {
            return self.iter.map(f).collect();
        }
        // Tag items with their sequence number while pulling under the
        // lock, then restore source order.
        let source = Mutex::new(self.iter.enumerate());
        let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    s.spawn(|| {
                        IN_WORKER.with(|w| w.set(true));
                        let mut local = Vec::new();
                        loop {
                            let next = source.lock().expect("bridge lock").next();
                            match next {
                                Some((seq, item)) => local.push((seq, f(item))),
                                None => break,
                            }
                        }
                        local
                    })
                })
                .collect();
            let mut all = Vec::new();
            for h in handles {
                match h.join() {
                    Ok(part) => all.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            all
        });
        tagged.sort_by_key(|&(seq, _)| seq);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    fn map_reduce<R: Send>(
        self,
        map: &(dyn Fn(Self::Item) -> R + Sync),
        identity: &(dyn Fn() -> R + Sync),
        op: &(dyn Fn(R, R) -> R + Sync),
    ) -> R {
        let n = current_num_threads();
        if n <= 1 {
            return self.iter.map(map).fold(identity(), |a, b| op(a, b));
        }
        // Stream: each worker folds locally; worker accumulators are
        // combined in worker order. `op` must be order-insensitive.
        let source = Mutex::new(self.iter);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    s.spawn(|| {
                        IN_WORKER.with(|w| w.set(true));
                        let mut acc = identity();
                        loop {
                            let next = source.lock().expect("bridge lock").next();
                            match next {
                                Some(item) => acc = op(acc, map(item)),
                                None => break,
                            }
                        }
                        acc
                    })
                })
                .collect();
            let mut acc = identity();
            for h in handles {
                match h.join() {
                    Ok(part) => acc = op(acc, part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            acc
        })
    }
}

/// Commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelBridge, ParallelIterator,
        ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_vec_preserves_order() {
        let v: Vec<String> = (0..257).map(|i| i.to_string()).collect();
        let out: Vec<String> = v.clone().into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], "0!");
        assert_eq!(out[256], "256!");
    }

    #[test]
    fn range_source_matches_sequential() {
        let par: Vec<usize> = (3..103).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<usize> = (3..103).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn reduce_folds_in_source_order() {
        // String concatenation is order-sensitive: equality with the
        // sequential fold proves ordered reduction.
        let v: Vec<usize> = (0..100).collect();
        let par = v
            .par_iter()
            .map(|x| x.to_string())
            .reduce(String::new, |a, b| a + &b);
        let seq = (0..100).map(|x| x.to_string()).fold(String::new(), |a, b| a + &b);
        assert_eq!(par, seq);
    }

    #[test]
    fn par_bridge_run_restores_order() {
        let out: Vec<usize> = (0..500).par_bridge().map(|x| x + 1).collect();
        assert_eq!(out, (1..501).collect::<Vec<_>>());
    }

    #[test]
    fn par_bridge_streaming_reduce_is_deterministic() {
        // Order-insensitive op (max by value, min index tie-break).
        let pick = |a: Option<(usize, u64)>, b: Option<(usize, u64)>| match (a, b) {
            (None, x) | (x, None) => x,
            (Some((ia, va)), Some((ib, vb))) => {
                if vb > va || (vb == va && ib < ia) {
                    Some((ib, vb))
                } else {
                    Some((ia, va))
                }
            }
        };
        let score = |i: usize| (i as u64 * 2654435761) % 1000;
        for _ in 0..5 {
            let best = (0..10_000)
                .par_bridge()
                .map(|i| Some((i, score(i))))
                .reduce(|| None, pick);
            let seq = (0..10_000).map(|i| Some((i, score(i)))).fold(None, pick);
            assert_eq!(best, seq);
        }
    }

    #[test]
    fn filter_map_keeps_order() {
        let out: Vec<usize> = (0..100)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        let seq: Vec<usize> = (0..100).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn par_chunks_covers_slice() {
        let v: Vec<usize> = (0..103).collect();
        let sums: Vec<usize> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), v.iter().sum::<usize>());
    }

    #[test]
    fn pool_install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
        });
        let pool3 = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool3.install(|| {
            assert_eq!(current_num_threads(), 3);
            let out: Vec<usize> = (0..10).into_par_iter().map(|x| x).collect();
            assert_eq!(out, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        let out: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| {
                // Inside a worker, nested calls must see one thread.
                let inner: Vec<usize> = (0..4).into_par_iter().map(|j| i * 10 + j).collect();
                inner.into_iter().sum()
            })
            .collect();
        let seq: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, seq);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..100usize).into_par_iter().for_each(|i| {
                if i == 57 {
                    panic!("boom");
                }
            });
        });
    }
}
