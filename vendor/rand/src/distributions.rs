//! Distributions: `Standard` and `WeightedIndex`.

use crate::{unit_f64, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: `f64` uniform in `[0, 1)`,
/// integers over their full range, fair bools.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Failure constructing a [`WeightedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight iterator was empty.
    NoItem,
    /// A weight was negative or NaN.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            WeightedError::NoItem => "no weights provided",
            WeightedError::InvalidWeight => "negative or NaN weight",
            WeightedError::AllWeightsZero => "all weights are zero",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices proportionally to a list of non-negative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds the sampler from an iterator of weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Into<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w: f64 = w.into();
            if !(w >= 0.0) {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(Self { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = unit_f64(rng) * self.total;
        let idx = self.cumulative.partition_point(|&c| c <= x);
        idx.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let w = WeightedIndex::new([0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = Lcg::seed_from_u64(9);
        for _ in 0..500 {
            let i = w.sample(&mut rng);
            assert!(i == 1 || i == 3, "index {i} has zero weight");
        }
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert_eq!(
            WeightedIndex::new(std::iter::empty::<f64>()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(WeightedIndex::new([-1.0]).unwrap_err(), WeightedError::InvalidWeight);
        assert_eq!(WeightedIndex::new([0.0, 0.0]).unwrap_err(), WeightedError::AllWeightsZero);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Lcg::seed_from_u64(42).next_u64();
        let b = Lcg::seed_from_u64(42).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, Lcg::seed_from_u64(43).next_u64());
    }
}
