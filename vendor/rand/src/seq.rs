//! Slice sampling helpers: `shuffle` and `choose`.

use crate::{bounded_u64, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (descending Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Picks one element uniformly, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = bounded_u64(rng, self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut Lcg(11));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 items should move something");
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = Lcg(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }
}
