//! Minimal vendored rand shim.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This shim reimplements the subset of the rand 0.8
//! API the workspace uses — `RngCore`/`SeedableRng`, `Rng::gen`,
//! `Rng::gen_range`, slice shuffling/choosing and `WeightedIndex` — with
//! fully deterministic algorithms:
//! - `seed_from_u64` fills the seed via SplitMix64 (same scheme rand_core
//!   uses), so per-restart reseeding patterns keep their dispersion;
//! - bounded integers use Lemire's multiply-shift reduction;
//! - floats use the top 53 bits of `next_u64`;
//! - `shuffle` is the classic descending Fisher–Yates.
//!
//! Exact stream parity with upstream rand is *not* a goal (no golden
//! values were ever produced against it in this repo); self-consistent
//! determinism across runs and platforms is.

pub mod distributions;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a `u64` via SplitMix64 (32-bit chunks,
    /// the rand_core scheme) and constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution (`f64` in `[0, 1)`,
    /// full-range integers, fair bools).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform `f64` in `[0, 1)` from the top 53 bits of `next_u64`.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire multiply-shift: uniform integer in `[0, span)` (`span > 0`).
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types uniformly sampleable over a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                match span.checked_add(1) {
                    Some(s) => lo.wrapping_add(bounded_u64(rng, s) as $t),
                    // Full-width range: every value is fair game.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but adequate mixing for unit tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(0..10usize);
            assert!(a < 10);
            let b = rng.gen_range(1..=50i64);
            assert!((1..=50).contains(&b));
            let c = rng.gen_range(-0.08..0.08f64);
            assert!((-0.08..0.08).contains(&c));
            let d = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&d));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn fill_bytes_covers_all_lengths() {
        let mut rng = Counter(3);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
        }
    }
}
