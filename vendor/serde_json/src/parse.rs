//! Recursive-descent JSON parser producing the serde shim's `Value` tree.

use serde::{Map, Number, Value};

pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err("invalid unicode escape".to_string()),
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the whole sequence through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".to_string());
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err("invalid UTF-8 in string".to_string()),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated unicode escape")?;
            let digit = (b as char).to_digit(16).ok_or("invalid hex digit")?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::Float(f))),
            Err(_) => Err(format!("invalid number `{text}` at byte {start}")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
