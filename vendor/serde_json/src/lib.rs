//! Minimal vendored serde_json shim.
//!
//! Renders the vendored serde [`Value`] tree to JSON text and parses JSON
//! text back. Output conventions match real serde_json where the
//! workspace depends on them:
//! - `to_string` is compact (`{"key":value}`) with object keys in
//!   insertion (= struct declaration) order;
//! - `to_string_pretty` indents with two spaces;
//! - floats print with a decimal point or exponent (`1.0`, not `1`), so
//!   the integer/float lexical distinction round-trips.

mod parse;

use std::fmt;

pub use serde::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e)
    }
}

/// Result alias used by this crate's API.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    serde::write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s).map_err(Error::new)?;
    T::from_value(&value).map_err(Error::from)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                serde::write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => serde::write_compact(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Builds a [`Value`] from JSON-looking syntax. Supports `null`, array
/// literals of expressions, object literals with string-literal keys and
/// expression values, and bare expressions (anything [`Serialize`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::to_value(&$elem).expect("json! value") ),*
        ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut __m = $crate::Map::new();
        $(
            __m.insert(
                ::std::string::String::from($key),
                $crate::to_value(&$val).expect("json! value"),
            );
        )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v: Value = from_str(r#"{"a":1,"b":[true,null,"x"],"c":-2.5}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null,"x"],"c":-2.5}"#);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42i64).unwrap(), "42");
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"name": "x", "n": 3, "ok": true});
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"x","n":3,"ok":true}"#);
        assert!(json!(null).is_null());
        assert_eq!(json!([1, 2]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage_and_trailing() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{}{}").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
