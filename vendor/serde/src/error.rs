//! Deserialization error type for the serde shim.

use std::fmt;

/// A deserialization (or, rarely, serialization) failure with a
/// human-readable message and breadcrumb context.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self { msg: msg.to_string() }
    }

    /// Prefixes the message with a location breadcrumb such as
    /// `"Dataset.claims"`.
    pub fn context(self, what: &str) -> Self {
        Self { msg: format!("{what}: {}", self.msg) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
