//! The in-memory JSON-shaped value tree.

use std::fmt;

/// A number: the shim distinguishes the lexical classes JSON requires so
/// integers round-trip exactly and floats keep their shortest
/// representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer (no decimal point in the source text).
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating point number.
    Float(f64),
}

impl Number {
    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map, standing in for
/// `serde_json::Map`. Backed by a `Vec` of pairs so object keys serialize
/// in the order they were inserted (struct declaration order for derived
/// impls).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<V> Map<String, V> {
    /// Inserts `key → value`, replacing (in place) any existing entry and
    /// returning the previous value.
    pub fn insert(&mut self, key: String, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`, linear in the number of entries (objects here are
    /// small: struct fields, experiment sections).
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl<K, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self { entries: iter.into_iter().collect() }
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a Map<K, V> {
    type Item = &'a (K, V);
    type IntoIter = std::slice::Iter<'a, (K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A JSON-shaped value: the exchange format between [`crate::Serialize`],
/// [`crate::Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// The object behind this value, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array behind this value, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean behind this value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Short name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (same text `serde_json::to_string` emits).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        crate::impls::write_compact(&mut out, self);
        f.write_str(&out)
    }
}
