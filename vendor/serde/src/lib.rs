//! Minimal vendored serde shim.
//!
//! The build environment has no network access, so the real `serde` crate
//! cannot be fetched. This shim keeps the workspace's public API surface
//! (`derive(Serialize, Deserialize)`, `serde_json::to_string`/`from_str`,
//! …) working by (de)serializing through an in-memory [`Value`] tree
//! instead of serde's visitor architecture. `serde_json` (also vendored)
//! renders that tree to JSON text and parses it back.
//!
//! The programming model is intentionally tiny:
//! - [`Serialize`] converts `self` into a [`Value`].
//! - [`Deserialize`] reconstructs `Self` from a `&Value`.
//! - Objects preserve insertion order ([`Map`] is a `Vec` of pairs), so
//!   struct fields serialize in declaration order, matching what the
//!   workspace's tests expect of serde_json output.

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::{Map, Number, Value};

#[doc(hidden)]
pub use impls::{write_compact, write_escaped, write_number};

/// Serialize `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `v`, failing with a descriptive [`Error`] on
    /// shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}
