//! Trait impls for std types, plus the shared compact JSON writer.

use crate::{Deserialize, Error, Map, Number, Serialize, Value};

// ------------------------------------------------------------- Serialize

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Number(Number::Int(i)),
                    Err(_) => Value::Number(Number::UInt(v)),
                }
            }
        }
    )*};
}
ser_unsigned!(u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Number(Number::Float(f))
                } else {
                    // JSON has no NaN/Inf; serialize as null (JS behavior).
                    Value::Null
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<V: Serialize> Serialize for Map<String, V> {
    fn to_value(&self) -> Value {
        self.iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect::<Map>()
            .into_object()
    }
}

impl Map<String, Value> {
    fn into_object(self) -> Value {
        Value::Object(self)
    }
}

// ----------------------------------------------------------- Deserialize

fn type_err<T>(expected: &str, v: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {}", v.kind())))
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_err("bool", v),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => *n,
                    _ => return type_err(stringify!($t), v),
                };
                let out = match n {
                    Number::Int(i) => <$t>::try_from(i).ok(),
                    Number::UInt(u) => <$t>::try_from(u).ok(),
                    Number::Float(_) => None,
                };
                out.ok_or_else(|| {
                    Error::custom(format!("number out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null; accept the round-trip.
            Value::Null => Ok(f64::NAN),
            _ => type_err("f64", v),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items.try_into().map_err(|_| {
            Error::custom(format!("expected array of length {N}, got {got}"))
        })
    }
}

macro_rules! de_tuple {
    ($(($n:literal; $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = match v {
                    Value::Array(a) if a.len() == $n => a,
                    Value::Array(a) => {
                        return Err(Error::custom(format!(
                            "expected array of length {}, got {}", $n, a.len()
                        )))
                    }
                    _ => return type_err("array", v),
                };
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; A: 0)
    (2; A: 0, B: 1)
    (3; A: 0, B: 1, C: 2)
    (4; A: 0, B: 1, C: 2, D: 3)
    (5; A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ---------------------------------------------------------- JSON writing

/// Writes `v` as compact JSON (`{"key":value}`, no whitespace). Shared by
/// `Value`'s `Display` impl and the vendored `serde_json`.
#[doc(hidden)]
pub fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

/// Writes a number the way serde_json does: integers bare, floats with
/// Rust's shortest round-trip representation (which always keeps a `.0`
/// or exponent, so the lexical integer/float distinction survives).
#[doc(hidden)]
pub fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f:?}");
        }
        Number::Float(_) => out.push_str("null"),
    }
}

/// Writes `s` as a JSON string literal with escapes.
#[doc(hidden)]
pub fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
