//! Failure-injection integration tests: how the algorithms and TD-AC
//! degrade under dropped claims, injected copiers and truth-flipping
//! noise — and that the robustness machinery treats store-backed runs
//! exactly like in-memory ones.

use td_ac::algorithms::{Accu, MajorityVote, TruthDiscovery};
use td_ac::core::{Tdac, TdacConfig};
use td_ac::data::{add_noise, drop_claims, generate_synthetic, inject_copiers, SyntheticConfig};
use td_ac::metrics::evaluate_fn;
use td_ac::{CancelToken, DegradationReason, ExecutionLimits};
use td_verify::{ChaosHook, OutcomeFingerprint};

/// Cell-level accuracy (fraction of cells answered exactly right) — the
/// right measure for degradation tests: the instance-level accuracy of
/// the paper's tables inflates when corruption adds *more distinct false
/// candidates* (each an easy true negative), masking real degradation.
fn accuracy(algo: &dyn TruthDiscovery, d: &td_ac::model::Dataset, t: &td_ac::model::GroundTruth) -> f64 {
    let r = algo.discover(&d.view_all());
    evaluate_fn(d, t, |o, a| r.prediction(o, a)).cell_accuracy
}

#[test]
fn graceful_degradation_under_claim_dropping() {
    let data = generate_synthetic(&SyntheticConfig::ds3().scaled(60));
    let full = accuracy(&MajorityVote, &data.dataset, &data.truth);
    let mut prev = full + 0.05;
    for rate in [0.2, 0.5, 0.8] {
        let (dropped, dtruth) = drop_claims(&data.dataset, &data.truth, rate, 11);
        let acc = accuracy(&MajorityVote, &dropped, &dtruth);
        assert!(
            acc > 0.3,
            "rate {rate}: accuracy {acc:.3} collapsed rather than degraded"
        );
        assert!(
            acc <= prev + 0.1,
            "rate {rate}: accuracy should not improve materially under dropping"
        );
        prev = acc;
    }
}

#[test]
fn tdac_still_runs_on_heavily_dropped_data() {
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(60));
    let (dropped, _) = drop_claims(&data.dataset, &data.truth, 0.7, 13);
    let out = Tdac::new(TdacConfig::default())
        .run(&MajorityVote, &dropped)
        .expect("TD-AC must survive sparse data");
    assert_eq!(out.result.len(), dropped.n_cells());
}

#[test]
fn copy_detection_resists_injected_copiers_better_than_voting() {
    // Inject a clique of copiers cloning one (possibly bad) source.
    let data = generate_synthetic(&SyntheticConfig::ds3().scaled(60));
    let (attacked, atruth) = inject_copiers(&data.dataset, &data.truth, 8, 0.95, 17);
    let vote_acc = accuracy(&MajorityVote, &attacked, &atruth);
    let accu_acc = accuracy(&Accu::default(), &attacked, &atruth);
    // The copiers amplify whatever their victim says; dependence-aware
    // Accu should hold up at least as well as naive voting (small
    // tolerance — the victim might be a good source, making the attack
    // harmless to voting).
    assert!(
        accu_acc >= vote_acc - 0.05,
        "Accu {accu_acc:.3} vs vote {vote_acc:.3} under copier injection"
    );
    assert!(accu_acc > 0.5, "Accu must stay above coin-flip: {accu_acc:.3}");
}

#[test]
fn noise_hurts_monotonically() {
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(40));
    let mut prev = 1.1;
    for rate in [0.0, 0.3, 0.9] {
        let (noisy, ntruth) = add_noise(&data.dataset, &data.truth, rate, 19);
        let acc = accuracy(&MajorityVote, &noisy, &ntruth);
        assert!(
            acc <= prev + 0.02,
            "rate {rate}: accuracy {acc:.3} should not rise with noise (prev {prev:.3})"
        );
        prev = acc;
    }
}

#[test]
fn composed_corruption_pipeline_stays_sound() {
    // Drop, then inject copiers, then noise — the dataset invariants
    // (one claim per cell per source, consistent ids) must hold
    // throughout, and every algorithm must still run.
    let data = generate_synthetic(&SyntheticConfig::ds2().scaled(30));
    let (d, t) = drop_claims(&data.dataset, &data.truth, 0.3, 23);
    let (d, t) = inject_copiers(&d, &t, 3, 0.8, 23);
    let (d, _t) = add_noise(&d, &t, 0.2, 23);
    for cell in d.cells() {
        let mut sources: Vec<_> = d.cell_claims(cell).iter().map(|c| c.source).collect();
        let before = sources.len();
        sources.sort_unstable();
        sources.dedup();
        assert_eq!(sources.len(), before, "one claim per source per cell");
    }
    for algo in td_ac::algorithms::registry::all_algorithms() {
        let r = algo.discover(&d.view_all());
        assert_eq!(r.len(), d.n_cells(), "{}", algo.name());
    }
}

/// A store-backed run lives under the same execution-limits contract as
/// an in-memory run: a distance-eval budget must trip at the same
/// boundary and degrade to the *same bits*. The stored truth page only
/// skips the build phase, which spends no distance evaluations.
#[test]
fn store_backed_run_degrades_identically_under_a_distance_budget() {
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(40));
    let store = Tdac::new(TdacConfig::default()).pack(&MajorityVote, &data.dataset);
    let config = || TdacConfig {
        limits: ExecutionLimits::none().with_max_distance_evals(10),
        ..TdacConfig::default()
    };
    let in_memory = Tdac::new(config())
        .run(&MajorityVote, &data.dataset)
        .expect("a blown budget degrades, it does not error");
    let from_store = Tdac::new(config())
        .run_store(&MajorityVote, &store)
        .expect("store-backed runs degrade the same way");
    let (a, b) = (&in_memory.degradation, &from_store.degradation);
    assert!(a.is_some(), "10 evals cannot cover the sweep");
    assert_eq!(
        a.as_ref().map(|d| (&d.reason, &d.phase)),
        b.as_ref().map(|d| (&d.reason, &d.phase)),
        "both paths must flag the same budget exhaustion"
    );
    assert_eq!(
        OutcomeFingerprint::of(&in_memory),
        OutcomeFingerprint::of(&from_store),
        "degraded outcomes must be bit-identical"
    );
}

/// A chaos cancellation fired at the sweep boundary must yield the same
/// flagged, sound fallback outcome whether the run started from a `.tds`
/// store or from the in-memory dataset.
#[test]
fn store_backed_run_cancels_identically_under_chaos() {
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(40));
    let store = Tdac::new(TdacConfig::default()).pack(&MajorityVote, &data.dataset);
    let run = |store_backed: bool| {
        let token = CancelToken::new();
        let hook = ChaosHook::cancels_at("k_sweep", 1, token.clone());
        let tdac = Tdac::new(TdacConfig {
            observer: hook.observer(),
            limits: ExecutionLimits::none().with_cancel(token),
            ..TdacConfig::default()
        });
        let outcome = if store_backed {
            tdac.run_store(&MajorityVote, &store)
        } else {
            tdac.run(&MajorityVote, &data.dataset)
        }
        .expect("cancellation degrades, it does not error");
        assert!(hook.fired(), "the chaos hook must have injected");
        outcome
    };
    let in_memory = run(false);
    let from_store = run(true);
    for outcome in [&in_memory, &from_store] {
        let deg = outcome.degradation.as_ref().expect("must be flagged");
        assert_eq!(deg.reason, DegradationReason::Cancelled);
        assert!(outcome.fallback, "best-so-far is the un-partitioned run");
    }
    assert_eq!(
        OutcomeFingerprint::of(&in_memory),
        OutcomeFingerprint::of(&from_store),
        "cancelled outcomes must be bit-identical"
    );
}
