//! Property-based integration tests: invariants that must hold for any
//! randomly-shaped dataset, not just the paper's workloads.

use proptest::prelude::*;

use td_ac::algorithms::{registry::all_algorithms, MajorityVote, TruthDiscovery};
use td_ac::cluster::{silhouette_paper, silhouette_samples, Hamming, KMeans, KMeansConfig, Matrix};
use td_ac::core::{bell_number, partitions_iter, AttributePartition, Tdac, TdacConfig};
use td_ac::metrics::evaluate_fn;
use td_ac::model::{AttributeId, Dataset, DatasetBuilder, GroundTruth, Value};

/// Strategy: a random dataset with `n_sources × n_objects × n_attrs`
/// shape and claims drawn from a small integer domain, plus full ground
/// truth.
fn arb_dataset() -> impl Strategy<Value = (Dataset, GroundTruth)> {
    (2usize..6, 1usize..5, 1usize..6, 2i64..6, any::<u64>()).prop_map(
        |(n_sources, n_objects, n_attrs, domain, seed)| {
            // Deterministic pseudo-random fill from the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut b = DatasetBuilder::new();
            for o in 0..n_objects {
                for a in 0..n_attrs {
                    let truth = (next() % domain as u64) as i64;
                    b.truth(&format!("o{o}"), &format!("a{a}"), Value::int(truth));
                    for s in 0..n_sources {
                        if next() % 10 < 8 {
                            let v = (next() % domain as u64) as i64;
                            b.claim(
                                &format!("s{s}"),
                                &format!("o{o}"),
                                &format!("a{a}"),
                                Value::int(v),
                            )
                            .expect("fresh cell");
                        }
                    }
                }
            }
            b.build_with_truth()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_predicts_only_claimed_values((dataset, _truth) in arb_dataset()) {
        for algo in all_algorithms() {
            let r = algo.discover(&dataset.view_all());
            prop_assert_eq!(r.len(), dataset.n_cells(), "{}", algo.name());
            for cell in dataset.cells() {
                let p = r.prediction(cell.object, cell.attribute)
                    .expect("cell predicted");
                prop_assert!(
                    dataset.cell_claims(cell).iter().any(|c| c.value == p),
                    "{} predicted an unclaimed value", algo.name()
                );
            }
        }
    }

    #[test]
    fn source_trust_is_finite_and_bounded((dataset, _truth) in arb_dataset()) {
        for algo in all_algorithms() {
            let r = algo.discover(&dataset.view_all());
            prop_assert_eq!(r.source_trust.len(), dataset.n_sources());
            for &t in &r.source_trust {
                prop_assert!(t.is_finite(), "{} trust not finite", algo.name());
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&t),
                    "{} trust {t} out of [0,1]", algo.name());
            }
        }
    }

    #[test]
    fn metrics_are_bounded_and_consistent((dataset, truth) in arb_dataset()) {
        let r = MajorityVote.discover(&dataset.view_all());
        let rep = evaluate_fn(&dataset, &truth, |o, a| r.prediction(o, a));
        for v in [rep.precision, rep.recall, rep.accuracy, rep.f1, rep.cell_accuracy] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // F1 lies between min and max of precision/recall.
        if rep.precision > 0.0 && rep.recall > 0.0 {
            prop_assert!(rep.f1 <= rep.precision.max(rep.recall) + 1e-12);
            prop_assert!(rep.f1 >= rep.precision.min(rep.recall) - 1e-12);
        }
        prop_assert_eq!(rep.n_cells, dataset.n_cells() as u64);
    }

    #[test]
    fn tdac_predicts_every_cell_once((dataset, _truth) in arb_dataset()) {
        let out = Tdac::new(TdacConfig::default())
            .run(&MajorityVote, &dataset)
            .expect("TD-AC on non-empty dataset");
        prop_assert_eq!(out.result.len(), dataset.n_cells());
        // Partition is a true partition of the attribute set.
        let mut seen: Vec<AttributeId> =
            out.partition.groups().iter().flatten().copied().collect();
        seen.sort_unstable();
        let mut expect: Vec<AttributeId> = dataset.attribute_ids().collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn silhouette_is_bounded_on_random_binary_matrices(
        rows in 2usize..8,
        cols in 1usize..6,
        seed in any::<u64>(),
        k in 2usize..4,
    ) {
        let k = k.min(rows);
        let mut state = seed | 1;
        let mut next = move || { state ^= state << 13; state ^= state >> 7; state };
        let data = Matrix::from_rows(
            &(0..rows)
                .map(|_| (0..cols).map(|_| (next() % 2) as f64).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
        );
        let fit = KMeans::new(KMeansConfig::with_k(k)).fit(&data).expect("fit");
        for c in silhouette_samples(&data, &fit.assignments, &Hamming) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
        let s = silhouette_paper(&data, &fit.assignments, &Hamming);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn partition_enumeration_matches_bell(n in 0usize..7) {
        let attrs: Vec<AttributeId> = (0..n as u32).map(AttributeId::new).collect();
        let parts: Vec<AttributePartition> = partitions_iter(&attrs).collect();
        prop_assert_eq!(parts.len() as u64, bell_number(n));
        for p in &parts {
            prop_assert_eq!(p.n_attributes(), n);
        }
    }

    #[test]
    fn rand_index_is_reflexive_and_bounded(
        assignment in proptest::collection::vec(0usize..3, 2..8),
    ) {
        let attrs: Vec<AttributeId> =
            (0..assignment.len() as u32).map(AttributeId::new).collect();
        let p = AttributePartition::from_assignments(&attrs, &assignment);
        prop_assert!((p.rand_index(&p) - 1.0).abs() < 1e-12);
        let whole = AttributePartition::whole(&attrs);
        let ri = p.rand_index(&whole);
        prop_assert!((0.0..=1.0).contains(&ri));
    }

    #[test]
    fn dataset_roundtrips_through_json((dataset, truth) in arb_dataset()) {
        let json = td_ac::model::json::to_json(&dataset, Some(&truth));
        let (back, t2) = td_ac::model::json::from_json(&json).expect("parse");
        prop_assert_eq!(back.n_claims(), dataset.n_claims());
        prop_assert_eq!(back.n_cells(), dataset.n_cells());
        prop_assert_eq!(t2.expect("truth").len(), truth.len());
    }
}
