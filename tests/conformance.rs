//! Paper-conformance gate: the committed DS1 golden snapshot must match
//! a fresh recomputation bit-for-bit.
//!
//! This runs in the default `cargo test -q` (tier-1), so any change that
//! silently moves a result — an algorithm tweak, a generator change, a
//! clustering or merge refactor — fails here with a field-level diff.
//! Intentional changes are blessed explicitly:
//!
//! ```text
//! cargo run -p td-verify -- --bless   # or TDAC_BLESS=1 cargo test
//! git diff crates/td-verify/goldens/  # review like any code change
//! ```

#[test]
fn ds1_results_match_the_committed_golden() {
    if let Err(diff) = td_verify::check_ds1() {
        panic!("{diff}");
    }
}

#[test]
fn ds1_store_matches_the_committed_golden() {
    if let Err(diff) = td_verify::check_ds1_store() {
        panic!("{diff}");
    }
}
