//! Cross-crate integration tests: the full TD-AC pipeline on the paper's
//! workloads at test scale.

use td_ac::algorithms::{standard_algorithms, Accu, MajorityVote, TruthDiscovery};
use td_ac::core::{AccuGenPartition, AttributePartition, Tdac, TdacConfig, Weighting};
use td_ac::data::{generate_synthetic, SyntheticConfig};
use td_ac::metrics::evaluate_fn;

fn ds1_small() -> td_ac::data::SyntheticDataset {
    generate_synthetic(&SyntheticConfig::ds1().scaled(80))
}

#[test]
fn tdac_improves_or_matches_every_standard_algorithm_on_ds1() {
    let data = ds1_small();
    let tdac = Tdac::new(TdacConfig::default());
    for algo in standard_algorithms() {
        let plain = algo.discover(&data.dataset.view_all());
        let plain_acc = evaluate_fn(&data.dataset, &data.truth, |o, a| plain.prediction(o, a))
            .accuracy;
        let outcome = tdac.run(algo.as_ref(), &data.dataset).expect("TD-AC run");
        let tdac_acc =
            evaluate_fn(&data.dataset, &data.truth, |o, a| outcome.result.prediction(o, a))
                .accuracy;
        assert!(
            tdac_acc >= plain_acc - 0.02,
            "{}: TD-AC {tdac_acc:.3} vs plain {plain_acc:.3} — partitioning must not \
             materially hurt on the structured DS1",
            algo.name()
        );
    }
}

#[test]
fn tdac_recovers_ds1_planted_partition() {
    // F = Accu, as in the paper's synthetic experiments; 150 objects give
    // the truth vectors enough columns for a stable clustering.
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(150));
    let planted = AttributePartition::new(data.planted.groups.clone());
    let outcome = Tdac::new(TdacConfig::default())
        .run(&Accu::default(), &data.dataset)
        .expect("TD-AC run");
    // DS1's reliabilities are sharp {0, 1}; the planted grouping merges
    // singletons whose columns coincide, so exact recovery can differ in
    // singleton placement — require high pairwise agreement instead.
    let ri = outcome.partition.rand_index(&planted);
    assert!(
        ri >= 0.8,
        "recovered {} vs planted {} (Rand index {ri:.2})",
        outcome.partition,
        planted
    );
}

#[test]
fn aggregation_covers_each_cell_exactly_once() {
    let data = ds1_small();
    let outcome = Tdac::new(TdacConfig::default())
        .run(&Accu::default(), &data.dataset)
        .expect("TD-AC run");
    assert_eq!(outcome.result.len(), data.dataset.n_cells());
    // Every prediction targets an attribute of the partition's group
    // structure, and groups are disjoint & exhaustive.
    let total: usize = outcome.partition.groups().iter().map(Vec::len).sum();
    assert_eq!(total, data.dataset.n_attributes());
}

#[test]
fn oracle_brute_force_upper_bounds_and_tdac_comes_close() {
    let data = ds1_small();
    let base = Accu::default();
    let oracle = AccuGenPartition::default()
        .run_oracle(&base, &data.dataset, &data.truth)
        .expect("oracle run");
    let tdac = Tdac::new(TdacConfig::default())
        .run(&base, &data.dataset)
        .expect("TD-AC run");
    let tdac_acc =
        evaluate_fn(&data.dataset, &data.truth, |o, a| tdac.result.prediction(o, a)).accuracy;
    assert!(
        oracle.score >= tdac_acc - 1e-9,
        "oracle {:.3} is an upper bound over TD-AC {tdac_acc:.3}",
        oracle.score
    );
    assert!(
        tdac_acc >= oracle.score - 0.1,
        "TD-AC {tdac_acc:.3} should be near the oracle {:.3} on DS1",
        oracle.score
    );
}

#[test]
fn weighted_brute_force_is_slower_than_tdac() {
    use td_ac::metrics::Stopwatch;
    let data = ds1_small();
    let base = MajorityVote;
    let (_, brute_time) = Stopwatch::time(|| {
        AccuGenPartition::default()
            .run(&base, &data.dataset, Weighting::Avg)
            .map(|o| o.n_partitions)
            .expect("brute force")
    });
    let (_, tdac_time) = Stopwatch::time(|| {
        Tdac::new(TdacConfig::default())
            .run(&base, &data.dataset)
            .expect("TD-AC")
    });
    // The paper reports ~200×; at small scale with parallel brute force
    // we only require a clear gap.
    assert!(
        brute_time > tdac_time,
        "brute force {brute_time:?} must cost more than TD-AC {tdac_time:?}"
    );
}

#[test]
fn all_registered_algorithms_run_on_all_three_synthetic_configs() {
    for cfg in [
        SyntheticConfig::ds1().scaled(40),
        SyntheticConfig::ds2().scaled(40),
        SyntheticConfig::ds3().scaled(40),
    ] {
        let data = generate_synthetic(&cfg);
        for algo in td_ac::algorithms::registry::all_algorithms() {
            let r = algo.discover(&data.dataset.view_all());
            assert_eq!(
                r.len(),
                data.dataset.n_cells(),
                "{} must predict every cell",
                algo.name()
            );
            let report = evaluate_fn(&data.dataset, &data.truth, |o, a| r.prediction(o, a));
            assert!(
                report.accuracy > 0.3,
                "{} accuracy {:.3} implausibly low",
                algo.name(),
                report.accuracy
            );
        }
    }
}

#[test]
fn dataset_json_roundtrip_preserves_algorithm_results() {
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(20));
    let json = td_ac::model::json::to_json(&data.dataset, Some(&data.truth));
    let (back, truth) = td_ac::model::json::from_json(&json).expect("parse");
    let truth = truth.expect("truth present");
    let r1 = MajorityVote.discover(&data.dataset.view_all());
    let r2 = MajorityVote.discover(&back.view_all());
    assert_eq!(r1.len(), r2.len());
    let a1 = evaluate_fn(&data.dataset, &data.truth, |o, a| r1.prediction(o, a)).accuracy;
    let a2 = evaluate_fn(&back, &truth, |o, a| r2.prediction(o, a)).accuracy;
    assert!((a1 - a2).abs() < 1e-12);
}
