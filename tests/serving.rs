//! Integration oracles for the td-serve front end.
//!
//! The serving contract under real concurrency:
//!
//! 1. **bit-identity** — answers served under interleaved multi-client
//!    query/ingest load are byte-identical to from-scratch
//!    [`Tdac::run`] outcomes on the same accumulated claim set, for
//!    every generation a client observes;
//! 2. **bounded admission** — load past `max_inflight` is rejected with
//!    a typed overload response, never queued without bound;
//! 3. **deadline degradation** — a starved ingest produces a *flagged*
//!    best-so-far generation, and queries answered from it carry the
//!    flag too.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use td_ac::algorithms::{algorithm_by_name, MajorityVote};
use td_ac::core::{Tdac, TdacConfig, TdacSession};
use td_ac::model::{ClaimBatch, DatasetBuilder, DeltaDataset, Value};
use td_ac::serve::{Client, ResponseBody, ServeConfig, Server, WireClaim, WireErrorKind};
use td_ac::{RepartitionPolicy, TruthQuery};
use td_verify::ChaosHook;

/// A structurally-correlated base: two attribute groups, four sources
/// with group-dependent reliability, `n_objects` objects.
fn planted_dataset(n_objects: i64) -> td_ac::model::Dataset {
    let mut b = DatasetBuilder::new();
    for o in 0..n_objects {
        append_object(&mut b, o);
    }
    b.build()
}

fn append_object(b: &mut DatasetBuilder, o: i64) {
    let obj = format!("obj-{o}");
    for (ai, attr) in ["g1a", "g1b", "g2a", "g2b"].iter().enumerate() {
        let truth = o * 10 + ai as i64;
        let noise = 7_000 + o * 10 + ai as i64;
        let (a_val, b_val) = if ai < 2 { (truth, noise) } else { (noise, truth) };
        b.claim("src-a", &obj, *attr, Value::int(a_val)).unwrap();
        b.claim("src-b", &obj, *attr, Value::int(b_val)).unwrap();
        b.claim("src-c", &obj, *attr, Value::int(truth)).unwrap();
        b.claim("src-d", &obj, *attr, Value::int(noise + 13)).unwrap();
    }
}

/// The claim batch extending the planted base with object `o`.
fn object_batch(o: i64) -> (ClaimBatch, Vec<WireClaim>) {
    let mut b = DatasetBuilder::new();
    append_object(&mut b, o);
    let d = b.build();
    let mut batch = ClaimBatch::new();
    let mut wire = Vec::new();
    for c in d.claims() {
        let (s, obj, a, v) = (
            d.source_name(c.source),
            d.object_name(c.object),
            d.attribute_name(c.attribute),
            d.value(c.value).clone(),
        );
        batch.claim(s, obj, a, v.clone());
        wire.push(WireClaim {
            source: s.to_string(),
            object: obj.to_string(),
            attribute: a.to_string(),
            value: v,
        });
    }
    (batch, wire)
}

/// The comparison key for one generation's answer: predictions and
/// trust scores serialized (JSON floats round-trip f64 bits), with the
/// per-request profile excluded (its timings differ per request by
/// construction).
fn answer_key(resp: &td_ac::QueryResponse) -> String {
    format!(
        "{}|{}|{}",
        serde_json::to_string(&resp.predictions).unwrap(),
        serde_json::to_string(&resp.sources).unwrap(),
        resp.degradation.is_some(),
    )
}

#[test]
fn interleaved_clients_see_bit_identical_generations() {
    const BATCHES: i64 = 4;
    const BASE_OBJECTS: i64 = 6;

    // Oracle: for each generation, the from-scratch TD-AC outcome on
    // the accumulated claim set, answered through the same query type.
    let base = planted_dataset(BASE_OBJECTS);
    let mut accumulated = DeltaDataset::new(base.clone()).expect("valid base");
    let tdac = Tdac::new(TdacConfig::default());
    let mut oracle: HashMap<u64, String> = HashMap::new();
    for gen in 0..=BATCHES as u64 {
        if gen > 0 {
            let (batch, _) = object_batch(BASE_OBJECTS + gen as i64 - 1);
            accumulated.apply(&batch).expect("consistent batch");
        }
        let outcome = tdac
            .run(&MajorityVote, accumulated.current())
            .expect("oracle run");
        let resp = TruthQuery::All
            .answer(accumulated.current(), &outcome)
            .expect("oracle answer");
        oracle.insert(gen, answer_key(&resp));
    }
    let oracle = Arc::new(oracle);

    // Policy Always is the bit-identity mode: every served generation
    // must match the from-scratch oracle byte for byte.
    let session = TdacSession::start(
        algorithm_by_name("majorityvote").unwrap(),
        TdacConfig::default(),
        RepartitionPolicy::Always,
        base,
    )
    .expect("session starts");
    let mut server = Server::bind(
        "127.0.0.1:0",
        session,
        ServeConfig {
            max_inflight: 16,
            workers: 4,
            default_deadline_ms: None,
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    // Three concurrent query clients hammer the server while the main
    // thread ingests; every answer must match its generation's oracle.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut checked = 0u64;
                for _ in 0..60 {
                    let resp = client
                        .query(TruthQuery::All, Some(30_000))
                        .expect("query round-trips");
                    match resp.body {
                        ResponseBody::Query(q) => {
                            let expected = oracle
                                .get(&resp.generation)
                                .unwrap_or_else(|| panic!("generation {}", resp.generation));
                            assert_eq!(
                                &answer_key(&q),
                                expected,
                                "generation {} answer diverged from the \
                                 from-scratch oracle",
                                resp.generation
                            );
                            checked += 1;
                        }
                        ResponseBody::Error(e) => {
                            panic!("query failed mid-load: {:?}: {}", e.kind, e.message)
                        }
                        other => panic!("unexpected body {other:?}"),
                    }
                }
                checked
            })
        })
        .collect();

    let mut writer = Client::connect(addr).expect("writer connects");
    for g in 0..BATCHES {
        let (_, wire) = object_batch(BASE_OBJECTS + g);
        let resp = writer
            .ingest(wire, Some(60_000))
            .expect("ingest round-trips");
        assert_eq!(resp.generation, g as u64 + 1);
        let ResponseBody::Ingest(ack) = resp.body else {
            panic!("expected ingest ack, got {:?}", resp.body);
        };
        assert!(ack.degradation.is_none(), "ample deadline must not degrade");
        // Let the readers observe this generation before the next one.
        std::thread::sleep(Duration::from_millis(30));
    }

    let total: u64 = readers.into_iter().map(|r| r.join().expect("reader ok")).sum();
    assert_eq!(total, 180, "every concurrent query was verified");

    // The final served generation equals the final oracle generation.
    let resp = writer
        .query(TruthQuery::All, Some(30_000))
        .expect("final query");
    assert_eq!(resp.generation, BATCHES as u64);
    server.shutdown();
}

#[test]
fn load_past_max_inflight_is_rejected_typed() {
    // A chaos delay makes the served ingest hold its admission slot
    // ~600ms, giving the prober a wide window against max_inflight = 1.
    // The sweep's first hit is the session's own start pass; the second
    // is the ingest's re-sweep (policy Always re-sweeps every ingest).
    let hook = ChaosHook::delays_at("k_sweep", 2, Duration::from_millis(600));
    let config = TdacConfig::builder()
        .observer(hook.observer())
        .build()
        .expect("valid config");
    let session = TdacSession::start(
        algorithm_by_name("majorityvote").unwrap(),
        config,
        RepartitionPolicy::Always,
        planted_dataset(5),
    )
    .expect("session starts");
    let mut server = Server::bind(
        "127.0.0.1:0",
        session,
        ServeConfig {
            max_inflight: 1,
            workers: 3,
            default_deadline_ms: None,
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("slow client connects");
        let (_, wire) = object_batch(5);
        client.ingest(wire, None).expect("slow ingest round-trips")
    });

    // Probe while the slot is held: at least one probe must bounce off
    // the admission gate with the typed overload error.
    std::thread::sleep(Duration::from_millis(150));
    let mut prober = Client::connect(addr).expect("prober connects");
    let mut overloaded = 0;
    for _ in 0..20 {
        let resp = prober.query(TruthQuery::All, None).expect("probe round-trips");
        if let ResponseBody::Error(e) = &resp.body {
            assert_eq!(
                e.kind,
                WireErrorKind::Overloaded,
                "the only expected in-band failure is the admission gate: {e:?}"
            );
            overloaded += 1;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        overloaded > 0,
        "no probe was rejected while a 600ms ingest held the only slot"
    );
    assert!(hook.fired(), "the chaos delay actually ran");

    let resp = slow.join().expect("slow client ok");
    assert!(
        matches!(resp.body, ResponseBody::Ingest(_)),
        "the slow ingest itself succeeds: {:?}",
        resp.body
    );

    // Slot released: queries are admitted again.
    let resp = prober.query(TruthQuery::All, None).expect("post-load query");
    assert!(matches!(resp.body, ResponseBody::Query(_)));
    server.shutdown();
}

#[test]
fn starved_deadline_degrades_flagged_not_hung() {
    // The chaos delay stalls the pipeline well past the request
    // deadline, so the ingest must come back *flagged*, and queries on
    // the degraded generation must carry the flag too. Hit 2 targets
    // the ingest's re-sweep (hit 1 is the session's start pass).
    let hook = ChaosHook::delays_at("k_sweep", 2, Duration::from_millis(300));
    let config = TdacConfig::builder()
        .observer(hook.observer())
        .build()
        .expect("valid config");
    let session = TdacSession::start(
        algorithm_by_name("majorityvote").unwrap(),
        config,
        RepartitionPolicy::Always,
        planted_dataset(5),
    )
    .expect("session starts");
    let mut server = Server::bind("127.0.0.1:0", session, ServeConfig::default())
        .expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let (_, wire) = object_batch(5);
    let resp = client.ingest(wire, Some(50)).expect("ingest round-trips");
    assert!(hook.fired(), "the stall actually happened");
    let ResponseBody::Ingest(ack) = resp.body else {
        panic!("a starved ingest still acks (flagged), got {:?}", resp.body);
    };
    let deg = ack
        .degradation
        .expect("blowing a 50ms deadline on a 300ms stall must flag the ack");
    assert_eq!(resp.generation, 1, "the degraded generation is published");

    let q = client
        .query(TruthQuery::All, Some(10_000))
        .expect("query round-trips");
    assert_eq!(q.generation, 1);
    let ResponseBody::Query(answer) = q.body else {
        panic!("expected query body, got {:?}", q.body);
    };
    let q_deg = answer
        .degradation
        .expect("answers from a degraded generation must be flagged");
    assert_eq!(q_deg.reason, deg.reason, "the same degradation is surfaced");
    server.shutdown();
}
