//! Web data integration scenario: fuse stock quotes from dozens of
//! finance sites whose quality differs per attribute *group* (real-time
//! prices vs. stale fundamentals) — the structural correlation TD-AC
//! targets — and flight-status pages with copier cliques, where Accu's
//! copy detection earns its keep.
//!
//! ```sh
//! cargo run --release --example web_data_integration
//! ```

use td_ac::algorithms::{Accu, MajorityVote, TruthDiscovery};
use td_ac::core::{Tdac, TdacConfig};
use td_ac::data::{generate_flights, generate_stocks, FlightsConfig, StocksConfig};
use td_ac::metrics::evaluate_fn;
use td_ac::model::DatasetStats;

fn main() {
    // ------------------------------------------------------ stocks ----
    let (stocks, stocks_truth) = generate_stocks(&StocksConfig::default());
    let st = DatasetStats::of(&stocks);
    println!(
        "Stocks: {} sources × {} symbols × {} attributes, {} observations, DCR {:.0} %",
        st.n_sources, st.n_objects, st.n_attributes, st.n_observations, st.dcr
    );

    let accu = Accu::default();
    let plain = accu.discover(&stocks.view_all());
    let plain_report = evaluate_fn(&stocks, &stocks_truth, |o, a| plain.prediction(o, a));
    println!("  Accu alone  : {plain_report}");

    let outcome = Tdac::new(TdacConfig::builder().build().expect("valid config"))
        .run(&accu, &stocks)
        .expect("TD-AC run");
    let tdac_report = evaluate_fn(&stocks, &stocks_truth, |o, a| outcome.result.prediction(o, a));
    println!("  TD-AC(Accu) : {tdac_report}");
    println!(
        "  recovered attribute groups {} — compare with the planted\n\
         \x20 price/volume/fundamentals split\n",
        outcome.partition
    );

    // ----------------------------------------------------- flights ----
    let (flights, flights_truth) = generate_flights(&FlightsConfig::default());
    let st = DatasetStats::of(&flights);
    println!(
        "Flights: {} sources × {} flights × {} attributes, {} observations, DCR {:.0} %",
        st.n_sources, st.n_objects, st.n_attributes, st.n_observations, st.dcr
    );

    // Copier cliques poison naive voting; Accu's dependence detection
    // discounts them.
    let vote = MajorityVote.discover(&flights.view_all());
    let vote_report = evaluate_fn(&flights, &flights_truth, |o, a| vote.prediction(o, a));
    let smart = accu.discover(&flights.view_all());
    let smart_report = evaluate_fn(&flights, &flights_truth, |o, a| smart.prediction(o, a));
    println!("  MajorityVote: {vote_report}");
    println!("  Accu        : {smart_report}");

    // Source trust should expose the copiers (aggregators are sources
    // 06.. in the simulator).
    let mut trusts: Vec<(String, f64)> = flights
        .source_ids()
        .map(|s| (flights.source_name(s).to_string(), smart.source_trust[s.index()]))
        .collect();
    trusts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite trust"));
    println!("  most trusted : {} ({:.3})", trusts[0].0, trusts[0].1);
    println!(
        "  least trusted: {} ({:.3})",
        trusts.last().expect("non-empty").0,
        trusts.last().expect("non-empty").1
    );
}
