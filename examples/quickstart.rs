//! Quickstart: resolve conflicting claims with a base algorithm, then
//! let TD-AC exploit attribute structure.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use td_ac::algorithms::{MajorityVote, TruthDiscovery, TruthFinder};
use td_ac::core::{Observer, Tdac, TdacConfig};
use td_ac::model::{DatasetBuilder, Value};

fn main() {
    // The paper's running example (Table 1): three sources answer three
    // questions about two topics. Source 1 is good at football questions
    // Q1/Q3, source 2 at Q2, source 3 at computer science.
    let mut b = DatasetBuilder::new();
    let claims: &[(&str, &str, &str, Value)] = &[
        ("source-1", "FB", "Q1", Value::text("Algeria")),
        ("source-1", "FB", "Q2", Value::int(2000)),
        ("source-1", "FB", "Q3", Value::int(12)),
        ("source-2", "FB", "Q1", Value::text("Senegal")),
        ("source-2", "FB", "Q2", Value::int(2019)),
        ("source-2", "FB", "Q3", Value::int(11)),
        ("source-3", "FB", "Q1", Value::text("Algeria")),
        ("source-3", "FB", "Q2", Value::int(1994)),
        ("source-3", "FB", "Q3", Value::int(12)),
        ("source-1", "CS", "Q1", Value::text("Linus Torvalds")),
        ("source-1", "CS", "Q2", Value::int(1830)),
        ("source-1", "CS", "Q3", Value::int(7)),
        ("source-2", "CS", "Q1", Value::text("Bill Gates")),
        ("source-2", "CS", "Q2", Value::int(1991)),
        ("source-2", "CS", "Q3", Value::int(8)),
        ("source-3", "CS", "Q1", Value::text("Steve Jobs")),
        ("source-3", "CS", "Q2", Value::int(1991)),
        ("source-3", "CS", "Q3", Value::int(10)),
    ];
    for (s, o, a, v) in claims {
        b.claim(s, o, a, v.clone()).expect("no conflicting claims");
    }
    let dataset = b.build();

    println!(
        "dataset: {} sources, {} objects, {} attributes, {} claims\n",
        dataset.n_sources(),
        dataset.n_objects(),
        dataset.n_attributes(),
        dataset.n_claims()
    );

    // 1. A base algorithm over all attributes at once.
    for algo in [
        Box::new(MajorityVote) as Box<dyn TruthDiscovery>,
        Box::new(TruthFinder::default()),
    ] {
        let result = algo.discover(&dataset.view_all());
        println!("— {} ({} iterations)", algo.name(), result.iterations);
        for o in dataset.object_ids() {
            for a in dataset.attribute_ids() {
                if let Some(v) = result.prediction(o, a) {
                    println!(
                        "  {}.{} = {}  (confidence {:.2})",
                        dataset.object_name(o),
                        dataset.attribute_name(a),
                        dataset.value(v),
                        result.confidence(o, a).unwrap_or(0.0),
                    );
                }
            }
        }
        println!();
    }

    // 2. TD-AC wraps the base algorithm with attribute partitioning.
    // The builder validates the k range and restart count up front; the
    // observer collects phase timings and work counters for step 3.
    let config = TdacConfig::builder()
        .observer(Observer::enabled())
        .build()
        .expect("default k range is valid");
    let outcome = Tdac::new(config)
        .run(&TruthFinder::default(), &dataset)
        .expect("TD-AC run");
    println!(
        "— TD-AC (F=TruthFinder): partition {} (silhouette {:.3}{})",
        outcome.partition,
        outcome.silhouette,
        if outcome.fallback { ", fallback" } else { "" },
    );
    for o in dataset.object_ids() {
        for a in dataset.attribute_ids() {
            if let Some(v) = outcome.result.prediction(o, a) {
                println!(
                    "  {}.{} = {}",
                    dataset.object_name(o),
                    dataset.attribute_name(a),
                    dataset.value(v),
                );
            }
        }
    }

    // 3. Where did the time go? The outcome carries the run's profile.
    let profile = outcome.profile.expect("observer was enabled");
    println!("\n— profile (docs/OBSERVABILITY.md explains each entry)");
    for p in &profile.phases {
        println!("  {:<14} {:>8.1} µs  ×{}", p.path, p.total_ns as f64 / 1e3, p.count);
    }
    for c in profile.counters.iter().filter(|c| c.value > 0) {
        println!("  {:<30} {}", c.name, c.value);
    }
}
