//! Running TD-AC inside a latency-budgeted service.
//!
//! A request handler cannot block on an unbounded pipeline: it needs a
//! wall-clock deadline, a work ceiling, and a kill switch — and when a
//! budget trips it wants the *best answer so far*, clearly flagged, not
//! an error page. This example wires all three through
//! [`ExecutionLimits`] and shows how a caller tells a complete outcome
//! from a degraded one. The second half keeps the service *running*: a
//! streaming ingest→query loop over a [`TdacSession`], where each tick
//! appends a claim batch under the same deadline and serves the fresh
//! truth without recomputing the clean parts of the pipeline.
//!
//! ```sh
//! cargo run --release --example robust_service
//! ```

use std::time::Duration;

use td_ac::algorithms::Accu;
use td_ac::core::{Tdac, TdacConfig};
use td_ac::model::{ClaimBatch, DatasetBuilder, Value};
use td_ac::{CancelToken, ExecutionLimits, RepartitionPolicy, TdacSession, TruthQuery};

fn main() {
    // A store-inventory feed: supplier A is right about logistics
    // attributes, supplier B about marketing ones, two aggregators copy
    // noise. Structurally correlated reliability — TD-AC's home turf.
    let mut b = DatasetBuilder::new();
    let logistics = ["weight", "stock"];
    let marketing = ["price", "discount"];
    for item in 0..12i64 {
        let obj = format!("sku-{item}");
        for (ai, attr) in logistics.iter().chain(&marketing).enumerate() {
            let truth = item * 100 + ai as i64;
            let noise = 9_000 + item * 100 + ai as i64;
            let a_val = if ai < logistics.len() { truth } else { noise };
            let b_val = if ai < logistics.len() { noise } else { truth };
            b.claim("supplier-a", &obj, attr, Value::int(a_val)).unwrap();
            b.claim("supplier-b", &obj, attr, Value::int(b_val)).unwrap();
            b.claim("aggregator-1", &obj, attr, Value::int(truth)).unwrap();
            b.claim("aggregator-2", &obj, attr, Value::int(noise + 500 + ai as i64)).unwrap();
        }
    }
    let dataset = b.build();

    // Reject garbage at the door — a degenerate feed (no claims, one
    // source) would only produce a meaningless answer downstream.
    dataset
        .validate_for_discovery()
        .expect("feed is non-degenerate");

    // The service budget: 250 ms of wall clock, a distance-work
    // ceiling, and a token an admin endpoint could trip. The same
    // token can be cloned into as many handlers as needed.
    let cancel = CancelToken::new();
    let limits = ExecutionLimits::none()
        .with_deadline(Duration::from_millis(250))
        .with_max_distance_evals(10_000)
        .with_cancel(cancel.clone());
    let config = TdacConfig::builder()
        .limits(limits)
        .build()
        .expect("valid config");

    let outcome = Tdac::new(config).run(&Accu::default(), &dataset).expect("pipeline ran");
    match &outcome.degradation {
        None => println!(
            "complete: partition {} (silhouette {:.3})",
            outcome.partition, outcome.silhouette
        ),
        Some(deg) => println!("DEGRADED best-so-far: {deg}"),
    }

    // The same run with a budget far too small for the sweep: the
    // handler still gets a sound, flagged answer instead of an error.
    let starved = TdacConfig::builder()
        .limits(ExecutionLimits::none().with_max_distance_evals(1))
        .build()
        .expect("valid config");
    let outcome = Tdac::new(starved).run(&Accu::default(), &dataset).expect("pipeline ran");
    let deg = outcome.degradation.expect("one distance eval cannot fit the matrix");
    println!(
        "starved run: {deg} — returned {} predictions anyway",
        outcome.result.len()
    );

    // ── Streaming: the feed keeps arriving after the first answer ──
    //
    // A long-lived service should not rebuild the pipeline per tick.
    // The session ingests each batch, recomputes only the attributes
    // the batch dirtied, and re-partitions only when the pinned
    // grouping's silhouette drifts. Every ingest runs under the same
    // 250 ms deadline as the one-shot handler above.
    let limits = ExecutionLimits::none()
        .with_deadline(Duration::from_millis(250))
        .with_cancel(cancel.clone());
    let config = TdacConfig::builder()
        .limits(limits)
        .build()
        .expect("valid config");
    let mut session = TdacSession::start(
        Accu::default(),
        config,
        RepartitionPolicy::OnDrift(0.05),
        dataset,
    )
    .expect("session starts from the validated feed");
    println!(
        "session live: partition {} over {} claims",
        session.partition(),
        session.dataset().n_claims()
    );

    // Five ticks of fresh SKUs: suppliers keep their per-group
    // reliability, so the planted structure — and the pinned partition
    // — should survive without a re-sweep.
    for tick in 0..5i64 {
        let mut batch = ClaimBatch::new();
        let item = 12 + tick;
        let obj = format!("sku-{item}");
        for (ai, attr) in ["weight", "stock", "price", "discount"].iter().enumerate() {
            let truth = item * 100 + ai as i64;
            let noise = 9_000 + item * 100 + ai as i64;
            let (a_val, b_val) = if ai < 2 { (truth, noise) } else { (noise, truth) };
            batch
                .claim("supplier-a", &obj, *attr, Value::int(a_val))
                .claim("supplier-b", &obj, *attr, Value::int(b_val))
                .claim("aggregator-1", &obj, *attr, Value::int(truth))
                .claim("aggregator-2", &obj, *attr, Value::int(noise + 500 + ai as i64));
        }
        let report = session.ingest(&batch).expect("feed batches are consistent");

        // Query side of the tick: serve the fresh truth for the SKU the
        // batch just introduced, through the typed query surface a real
        // handler would expose (name-addressed in, name-resolved out,
        // degradation flagged on the answer itself).
        let answer = TruthQuery::Attribute(obj.clone(), "price".into())
            .answer(session.dataset(), &report.outcome)
            .expect("the SKU was just ingested");
        assert_eq!(
            answer.degradation.is_some(),
            report.outcome.degradation.is_some(),
            "the answer carries the run's degradation flag"
        );
        let served = answer
            .predictions
            .first()
            .map(|p| p.value.to_string())
            .unwrap_or_else(|| "<no claim>".to_string());
        println!(
            "tick {tick}: +{} claims, {} dirty attrs, reused {}/{} groups{}{} → {obj}.price = {served}",
            report.summary.appended_claims,
            report.dirty_attributes.len(),
            report.groups_reused,
            report.groups_total,
            if report.repartitioned { ", re-partitioned" } else { "" },
            if report.outcome.degradation.is_some() { ", DEGRADED" } else { "" },
        );
    }
    println!(
        "session end: {} batches, {} claims appended, partition {}",
        session.batches_applied(),
        session.claims_appended(),
        session.partition()
    );
}
