//! Plugging a custom base algorithm into TD-AC.
//!
//! TD-AC is generic over the `TruthDiscovery` trait — the paper's `F`
//! parameter. This example implements a small confidence-weighted voter
//! from scratch and runs it both standalone and wrapped by TD-AC on a
//! structured synthetic workload.
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```

use td_ac::algorithms::{TruthDiscovery, TruthResult};
use td_ac::core::{Tdac, TdacConfig};
use td_ac::data::{generate_synthetic, SyntheticConfig};
use td_ac::metrics::evaluate_fn;
use td_ac::model::DatasetView;

/// A two-pass weighted voter: pass 1 scores each source by how often it
/// agrees with the per-cell plurality; pass 2 revotes with those scores
/// as weights. Simpler than TruthFinder, smarter than a plain vote.
struct AgreementWeightedVote;

impl TruthDiscovery for AgreementWeightedVote {
    fn name(&self) -> &'static str {
        "AgreementWeightedVote"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        let n = view.n_sources();
        let mut result = TruthResult::with_sources(n, 0.5);
        result.iterations = 2;

        // Pass 1: plurality agreement rate per source.
        let mut agree = vec![0u32; n];
        let mut total = vec![0u32; n];
        for cell in view.cells() {
            let claims = view.cell_claims(cell);
            // Plurality value of this cell.
            let mut counts: Vec<(td_ac::model::ValueId, u32)> = Vec::new();
            for c in claims {
                match counts.iter_mut().find(|(v, _)| *v == c.value) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((c.value, 1)),
                }
            }
            let plurality = counts
                .iter()
                .max_by_key(|&&(v, n)| (n, std::cmp::Reverse(v)))
                .map(|&(v, _)| v)
                .expect("non-empty cell");
            for c in claims {
                total[c.source.index()] += 1;
                agree[c.source.index()] += u32::from(c.value == plurality);
            }
        }
        let weight: Vec<f64> = (0..n)
            .map(|s| {
                if total[s] == 0 {
                    0.5
                } else {
                    agree[s] as f64 / total[s] as f64
                }
            })
            .collect();

        // Pass 2: weighted revote.
        for cell in view.cells() {
            let claims = view.cell_claims(cell);
            let mut scores: Vec<(td_ac::model::ValueId, f64)> = Vec::new();
            let mut mass = 0.0;
            for c in claims {
                let w = weight[c.source.index()];
                mass += w;
                match scores.iter_mut().find(|(v, _)| *v == c.value) {
                    Some((_, s)) => *s += w,
                    None => scores.push((c.value, w)),
                }
            }
            let &(winner, score) = scores
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
                .expect("non-empty cell");
            let conf = if mass > 0.0 { score / mass } else { 0.0 };
            result.set_prediction(cell.object, cell.attribute, winner, conf);
        }
        result.source_trust = weight;
        result
    }
}

fn main() {
    // A structured workload: DS1 scaled down.
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(200));

    let algo = AgreementWeightedVote;
    let alone = algo.discover(&data.dataset.view_all());
    let alone_report = evaluate_fn(&data.dataset, &data.truth, |o, a| alone.prediction(o, a));
    println!("{} alone   : {alone_report}", algo.name());

    // The builder rejects impossible sweeps (k_min < 2, empty restart
    // budget, …) before any work happens.
    let config = TdacConfig::builder()
        .n_init(10)
        .seed(42)
        .build()
        .expect("k range and restarts are valid");
    let outcome = Tdac::new(config)
        .run(&algo, &data.dataset)
        .expect("TD-AC run");
    let wrapped_report =
        evaluate_fn(&data.dataset, &data.truth, |o, a| outcome.result.prediction(o, a));
    println!("TD-AC(custom F)         : {wrapped_report}");
    println!(
        "partition {} vs planted {}",
        outcome.partition,
        td_ac::core::AttributePartition::new(data.planted.groups.clone())
    );
}
