//! Crowdsourcing scenario: grade a multi-domain exam answered by
//! hundreds of students with no answer key, using truth discovery — and
//! show how TD-AC's attribute partitioning reacts to domain structure.
//!
//! This is the paper's §4.3/§4.4 Exam workload (here: the structural
//! simulator, since the original data is private).
//!
//! ```sh
//! cargo run --release --example crowdsourced_exam
//! ```

use td_ac::algorithms::{TruthDiscovery, TruthFinder};
use td_ac::core::{Tdac, TdacConfig};
use td_ac::data::{generate_exam, ExamConfig};
use td_ac::metrics::{data_coverage_rate, evaluate_fn};

fn main() {
    for n_attrs in [32usize, 62, 124] {
        let cfg = ExamConfig::new(n_attrs, 100);
        let (dataset, truth) = generate_exam(&cfg);
        let dcr = data_coverage_rate(&dataset);
        println!(
            "Exam slice with {n_attrs} questions: {} students, {} answers, DCR {dcr:.0} %",
            dataset.n_sources(),
            dataset.n_claims()
        );

        // Grade with TruthFinder alone…
        let tf = TruthFinder::default();
        let alone = tf.discover(&dataset.view_all());
        let alone_report = evaluate_fn(&dataset, &truth, |o, a| alone.prediction(o, a));

        // …and wrapped in TD-AC (builder-validated config).
        let config = TdacConfig::builder().build().expect("valid config");
        let outcome = Tdac::new(config)
            .run(&tf, &dataset)
            .expect("TD-AC run");
        let tdac_report = evaluate_fn(&dataset, &truth, |o, a| outcome.result.prediction(o, a));

        println!("  TruthFinder alone : {alone_report}");
        println!("  TD-AC(TruthFinder): {tdac_report}");
        println!(
            "  TD-AC grouped the {} questions into {} clusters (silhouette {:.3})",
            n_attrs,
            outcome.partition.len(),
            outcome.silhouette
        );
        // The paper's observation: the sparser the data (lower DCR), the
        // less clustering can help — watch the silhouette shrink across
        // the three slices.
        println!();
    }
}
