//! Object partitioning (TD-OC) vs. attribute partitioning (TD-AC).
//!
//! The paper's conclusion names Yang et al.'s object-partitioning
//! approach as a planned comparison. This example builds a workload
//! where sources specialize per *topic* (object) rather than per
//! *property* (attribute) — the setting where object clustering wins —
//! and runs both.
//!
//! ```sh
//! cargo run --release --example topic_specialists
//! ```

use td_ac::algorithms::{MajorityVote, TruthDiscovery};
use td_ac::core::{Tdac, TdacConfig, Tdoc};
use td_ac::metrics::evaluate_fn;
use td_ac::model::{DatasetBuilder, Value};

fn main() {
    // Two newsrooms: sports desks are right about matches, business desks
    // about companies; a lone generalist breaks ties toward the truth.
    let mut b = DatasetBuilder::new();
    let attributes = ["date", "headline_figure", "location"];
    for i in 0..8i64 {
        let (topic, sports_right) = if i < 4 {
            (format!("match-{i}"), true)
        } else {
            (format!("company-{i}"), false)
        };
        for (ai, attr) in attributes.iter().enumerate() {
            let truth = i * 10 + ai as i64;
            let wrong = 1_000 + i * 10 + ai as i64;
            let (sports_val, business_val) = if sports_right {
                (truth, wrong)
            } else {
                (wrong, truth)
            };
            for desk in ["sports-desk-1", "sports-desk-2"] {
                b.claim(desk, &topic, attr, Value::int(sports_val)).unwrap();
            }
            for desk in ["business-desk-1", "business-desk-2"] {
                b.claim(desk, &topic, attr, Value::int(business_val)).unwrap();
            }
            b.claim("generalist", &topic, attr, Value::int(truth)).unwrap();
            b.truth(&topic, attr, Value::int(truth));
        }
    }
    let (dataset, truth) = b.build_with_truth();

    let base = MajorityVote;
    let plain = base.discover(&dataset.view_all());
    let plain_acc = evaluate_fn(&dataset, &truth, |o, a| plain.prediction(o, a));
    println!("MajorityVote alone : {plain_acc}");

    // Attribute partitioning cannot help here: every attribute has the
    // same mixed-reliability profile.
    let config = TdacConfig::builder().build().expect("valid config");
    let tdac = Tdac::new(config.clone()).run(&base, &dataset).unwrap();
    let tdac_acc = evaluate_fn(&dataset, &truth, |o, a| tdac.result.prediction(o, a));
    println!(
        "TD-AC (attributes) : {tdac_acc}  — partition {}",
        tdac.partition
    );

    // Object partitioning separates matches from companies, and within
    // each topic the local majority + generalist pin the truth.
    let tdoc = Tdoc::new(config).run(&base, &dataset).unwrap();
    let tdoc_acc = evaluate_fn(&dataset, &truth, |o, a| tdoc.result.prediction(o, a));
    println!(
        "TD-OC (objects)    : {tdoc_acc}  — {} object groups (silhouette {:.3})",
        tdoc.partition.len(),
        tdoc.silhouette
    );
}
