#![warn(missing_docs)]

//! # td-ac — Efficient Data Partitioning based Truth Discovery
//!
//! A from-scratch Rust reproduction of **TD-AC** (Tossou & Ba, EDBT
//! 2021): truth discovery for conflicting multi-source data whose
//! attributes are *structurally correlated* — sources exhibit different
//! reliability on different groups of attributes. TD-AC recovers those
//! hidden groups by clustering *attribute truth vectors* with k-means
//! under silhouette model selection, then runs any base truth-discovery
//! algorithm per group.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`model`] — datasets, claims, views, ground truth ([`td_model`]);
//! * [`metrics`] — precision / recall / accuracy / F1 / DCR
//!   ([`td_metrics`]);
//! * [`algorithms`] — 12 classic truth-discovery algorithms
//!   ([`td_algorithms`]);
//! * [`cluster`] — the hand-written clustering stack ([`clustering`]);
//! * [`core`] — TD-AC itself and the AccuGenPartition baseline
//!   ([`tdac_core`]);
//! * [`data`] — the workload generators ([`datagen`]);
//! * [`eval`] — the table/figure reproduction harness ([`tdac_eval`]);
//! * [`serve`] — the batched, deadline-aware TCP serving front end
//!   ([`td_serve`]);
//! * [`shard`] — sharded multi-process execution behind
//!   [`ExecutionBackend::Sharded`] ([`td_shard`]).
//!
//! ## Quickstart
//!
//! ```
//! use td_ac::model::{DatasetBuilder, Value};
//! use td_ac::algorithms::{MajorityVote, TruthDiscovery};
//! use td_ac::core::{Tdac, TdacConfig};
//!
//! let mut b = DatasetBuilder::new();
//! // Three sources disagree about one fact…
//! b.claim("site-a", "afcon2019", "winner", Value::text("Algeria")).unwrap();
//! b.claim("site-b", "afcon2019", "winner", Value::text("Senegal")).unwrap();
//! b.claim("site-c", "afcon2019", "winner", Value::text("Algeria")).unwrap();
//! let dataset = b.build();
//!
//! // …a base algorithm resolves it…
//! let result = MajorityVote.discover(&dataset.view_all());
//!
//! // …and TD-AC wraps any such algorithm with attribute partitioning.
//! let tdac = Tdac::new(TdacConfig::default());
//! let outcome = tdac.run(&MajorityVote, &dataset).unwrap();
//! assert_eq!(outcome.result.len(), result.len());
//! ```

pub use clustering as cluster;
pub use datagen as data;
pub use td_algorithms as algorithms;
pub use td_metrics as metrics;
pub use td_model as model;
pub use td_serve as serve;
pub use td_shard as shard;
pub use tdac_core as core;
pub use tdac_eval as eval;

// The cross-layer vocabulary, hoisted to the root so applications can
// `?` any workspace error, profile any run, bound or cancel a run, and
// pick a distance kernel without digging into the per-crate modules.
pub use tdac_core::{
    BitMatrix, CancelToken, Degradation, DegradationReason, DistanceOptions, ExecutionLimits,
    KernelPolicy, Observer, RunProfile, Rows, ShardFault, TdError, WorkCompleted,
};

// The incremental (streaming) engine: claim batches in, dirty-attribute
// recomputation out. See `docs/STREAMING.md`.
pub use td_model::{ClaimBatch, DeltaDataset, DeltaSummary};
pub use tdac_core::{IngestReport, RepartitionPolicy, SessionError, TdacSession};

// The typed query surface shared by the server, `tdc` and examples:
// name-addressed truth queries with name-resolved, degradation-flagged
// answers. See `docs/SERVING.md`.
pub use tdac_core::{Prediction, QueryResponse, SourceTrust, TruthQuery};

// The persistent binary dataset store (`.tds`): interned columnar
// sections plus precomputed truth-vector pages that let `Tdac::run_store`
// and `TdacSession::start_store` skip the build phase bit-identically.
// See `docs/STORAGE.md`.
pub use tdac_core::{DatasetStore, StoreError, TruthPage};

// The execution backend vocabulary: every config names where it runs —
// in-process (threads) or sharded across worker processes — and the
// shard subsystem's coordinator/typed errors ride along. See
// `docs/SHARDING.md`.
pub use td_shard::{ShardError, ShardRunner, WorkerCommand};
pub use tdac_core::{ExecutionBackend, RetryPolicy, ShardPlan, ShardStrategy};

/// The crate version, for diagnostics.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Touch one symbol from every re-exported crate.
        let _ = crate::model::Value::int(1);
        let _ = crate::metrics::Confusion::new();
        let _ = crate::algorithms::MajorityVote;
        let _ = crate::cluster::KMeansConfig::with_k(2);
        let _ = crate::core::TdacConfig::default();
        let _ = crate::data::SyntheticConfig::ds1();
        let _ = crate::eval::Scale::Small;
        let _ = crate::Observer::disabled();
        let _ = crate::RunProfile::default();
        let _ = crate::KernelPolicy::Auto;
        let _ = crate::BitMatrix::zeros(2, 65);
        let _ = crate::DistanceOptions::builder()
            .kernel(crate::KernelPolicy::Packed)
            .build();
        let m = crate::cluster::Matrix::zeros(2, 3);
        let _: crate::Rows<'_> = (&m).into();
        let _: crate::TdError = crate::core::TdacError::NoAttributes.into();
        let _ = crate::ExecutionLimits::none()
            .with_max_distance_evals(100)
            .with_cancel(crate::CancelToken::new());
        let _ = crate::DegradationReason::Cancelled;
        let _ = crate::WorkCompleted::default();
        let _ = crate::ClaimBatch::new();
        let _ = crate::RepartitionPolicy::OnDrift(0.05);
        let _ = crate::TruthQuery::Attribute("o".into(), "a".into());
        let _ = crate::QueryResponse::default();
        let _ = crate::Prediction {
            object: "o".into(),
            attribute: "a".into(),
            value: crate::model::Value::int(1),
            confidence: 1.0,
        };
        let _ = crate::SourceTrust {
            source: "s".into(),
            trust: 0.5,
        };
        let _ = crate::serve::ServeConfig::default();
        let _ = crate::serve::WireErrorKind::Overloaded;
        let _ = crate::DatasetStore::new(crate::model::DatasetBuilder::new().build());
        let _ = crate::ExecutionBackend::Sharded(crate::ShardPlan::new(
            crate::ShardStrategy::HashByObject,
            4,
        ));
        let _ = crate::ExecutionBackend::default();
        let _ = crate::shard::object_shard("o", 4);
        let _: fn(crate::core::TdacError) -> crate::ShardError = crate::ShardError::Tdac;
        let _ = crate::WorkerCommand::new("tdc", vec!["worker".into()]);
        let _: fn(crate::StoreError) -> crate::TdError = crate::TdError::Store;
        let _: fn(crate::model::ModelError) -> crate::SessionError = crate::SessionError::Model;
        assert!(!crate::VERSION.is_empty());
    }
}
