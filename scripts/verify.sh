#!/usr/bin/env bash
# Full verification sweep: tier-1 gate, the whole workspace test set,
# and the td-verify harness including the Bell(7)/Bell(8) oracles that
# the default feature set skips. See docs/VERIFICATION.md for what each
# layer proves.
#
# Usage: scripts/verify.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: default tests (includes the DS1 golden gate) =="
cargo test --offline -q

echo "== workspace suites (differential / determinism / metamorphic) =="
cargo test --offline -q --workspace

echo "== observer determinism: profiles on vs off, all thread counts =="
cargo test --offline -q -p td-verify --test observer

echo "== kernel parity: packed vs dense distance kernels, DS1 golden =="
cargo test --offline -q -p td-verify --test kernels

echo "== chaos oracles: injected panics/stalls/cancels + budget invariants =="
cargo test --offline -q -p td-verify --test chaos
cargo test --offline -q -p td-verify --test limits_props

echo "== incremental oracle: session ingest vs batch recompute, bit-identical =="
cargo test --offline -q -p td-verify --test incremental

echo "== store: .tds corruption matrix, fuzzing, round-trip bit-identity =="
cargo test --offline -q -p td-verify --test store
cargo run --offline --release -q -p td-verify

echo "== serve: protocol units, concurrent bit-identity, chaos-behind-the-wire =="
cargo test --offline -q -p td-serve
cargo test --offline -q --test serving
cargo test --offline -q -p td-verify --test serve

echo "== serve: tdc serve/query round-trip is bit-identical to tdc run =="
serve_tmp="$(mktemp -d)"
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$serve_tmp"' EXIT
cargo build --release --offline -q -p tdac-eval --bin tdc
tdc="$repo_root/target/release/tdc"
"$tdc" serve --input crates/td-verify/goldens/ds1.tds --algo majorityvote \
    --addr 127.0.0.1:0 > "$serve_tmp/addr" &
serve_pid=$!
for _ in $(seq 1 100); do
    addr="$(head -n1 "$serve_tmp/addr" 2>/dev/null || true)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "${addr:-}" ]] || { echo "verify: tdc serve never printed its address" >&2; exit 1; }
"$tdc" query --addr "$addr" --deadline-ms 30000 --output "$serve_tmp/served.json"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
"$tdc" run --input crates/td-verify/goldens/ds1.tds --algo majorityvote --tdac \
    --output "$serve_tmp/local.json"
diff "$serve_tmp/served.json" "$serve_tmp/local.json" \
    || { echo "verify: served answers diverged from the in-process run" >&2; exit 1; }
echo "served == in-process (bit-identical)"

echo "== shard: worker protocol units + multi-process bit-identity oracle =="
cargo test --offline -q -p td-shard
cargo test --offline -q -p td-verify --test shard

echo "== shard: tdc shard is byte-identical to tdc run, both strategies =="
"$tdc" run --input crates/td-verify/goldens/ds1.tds --algo majorityvote --tdac \
    --output "$serve_tmp/inproc.json"
for strategy in attr-group hash-object; do
    "$tdc" shard --input crates/td-verify/goldens/ds1.tds --algo majorityvote \
        --shards 4 --strategy "$strategy" --output "$serve_tmp/sharded.json"
    diff "$serve_tmp/inproc.json" "$serve_tmp/sharded.json" \
        || { echo "verify: sharded ($strategy) diverged from the in-process run" >&2; exit 1; }
    echo "sharded ($strategy, 4 workers) == in-process (byte-identical)"
done

echo "== shard retry: supervisor oracle suite (chaos kills/hangs, fallback) =="
cargo test --offline -q -p td-verify --test retry

echo "== shard retry: chaos-killed worker retries to byte-identical output =="
# Shard 1 dies once ("1:F") and succeeds on the re-spawn: the retried
# run must emit exactly the bytes the in-process run emits. The chaos
# env rides on the coordinator's environment here — workers inherit it,
# and the in-process fallback path is pinned chaos-free by design.
TD_SHARD_CHAOS_PLAN="1:F" "$tdc" shard --input crates/td-verify/goldens/ds1.tds \
    --algo majorityvote --shards 2 --retry-attempts 2 --retry-backoff-ms 0 \
    --output "$serve_tmp/retried.json"
diff "$serve_tmp/inproc.json" "$serve_tmp/retried.json" \
    || { echo "verify: retried shard run diverged from the in-process run" >&2; exit 1; }
echo "retried (1 chaos kill, 2 attempts) == in-process (byte-identical)"

echo "== shard retry: exhausted attempts fall back in-process, byte-identical =="
# Shard 1 dies on every attempt: both attempts burn, the coordinator
# runs shard 1's jobs itself, and the predictions still byte-match.
TD_SHARD_CHAOS_EXIT=1 "$tdc" shard --input crates/td-verify/goldens/ds1.tds \
    --algo majorityvote --shards 2 --retry-attempts 2 --retry-backoff-ms 0 \
    --output "$serve_tmp/fellback.json"
diff "$serve_tmp/inproc.json" "$serve_tmp/fellback.json" \
    || { echo "verify: fallback shard run diverged from the in-process run" >&2; exit 1; }
echo "fallback (all attempts killed) == in-process (byte-identical)"

echo "== expensive oracles: Bell(7)/Bell(8) brute-force differentials =="
cargo test --offline -q -p td-verify --features expensive-oracles

echo "verify: all green"
