#!/usr/bin/env bash
# Full verification sweep: tier-1 gate, the whole workspace test set,
# and the td-verify harness including the Bell(7)/Bell(8) oracles that
# the default feature set skips. See docs/VERIFICATION.md for what each
# layer proves.
#
# Usage: scripts/verify.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: default tests (includes the DS1 golden gate) =="
cargo test --offline -q

echo "== workspace suites (differential / determinism / metamorphic) =="
cargo test --offline -q --workspace

echo "== observer determinism: profiles on vs off, all thread counts =="
cargo test --offline -q -p td-verify --test observer

echo "== kernel parity: packed vs dense distance kernels, DS1 golden =="
cargo test --offline -q -p td-verify --test kernels

echo "== chaos oracles: injected panics/stalls/cancels + budget invariants =="
cargo test --offline -q -p td-verify --test chaos
cargo test --offline -q -p td-verify --test limits_props

echo "== incremental oracle: session ingest vs batch recompute, bit-identical =="
cargo test --offline -q -p td-verify --test incremental

echo "== store: .tds corruption matrix, fuzzing, round-trip bit-identity =="
cargo test --offline -q -p td-verify --test store
cargo run --offline --release -q -p td-verify

echo "== expensive oracles: Bell(7)/Bell(8) brute-force differentials =="
cargo test --offline -q -p td-verify --features expensive-oracles

echo "verify: all green"
