#!/usr/bin/env bash
# Runs the TD-AC criterion benches (tdac_pipeline, clustering,
# partitioning) and aggregates their per-bench medians into
# BENCH_tdac.json at the repo root.
#
# The vendored criterion shim emits one JSON line per benchmark when
# TDAC_BENCH_JSON is set; this script collects those lines into a single
# JSON object keyed by "group/name" with the median ns per iteration.
#
# Usage: scripts/bench.sh [extra cargo bench args...]
#   TDAC_BENCH_SAMPLES=<n>   override sample count (default: per-group)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tmp="$repo_root/.bench_lines.bench.tmp.json"
out="$repo_root/BENCH_tdac.json"
rm -f "$tmp"

for bench in tdac_pipeline clustering partitioning; do
    echo "== cargo bench --bench $bench =="
    TDAC_BENCH_JSON="$tmp" cargo bench --offline -p tdac-bench --bench "$bench" "$@"
done

# Fold the JSON lines into one object: {"id": median_ns, ...}
python3 - "$tmp" "$out" <<'PY'
import json, sys

lines_path, out_path = sys.argv[1], sys.argv[2]
benches = {}
with open(lines_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        benches[rec["id"]] = {
            "median_ns": rec["median_ns"],
            "samples": rec["samples"],
        }
with open(out_path, "w") as f:
    json.dump({"benches": benches}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(benches)} benches)")
PY
rm -f "$tmp"
