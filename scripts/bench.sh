#!/usr/bin/env bash
# Runs the TD-AC criterion benches (tdac_pipeline, clustering,
# partitioning, store, serve) and aggregates their per-bench medians
# into BENCH_tdac.json at the repo root.
#
# The vendored criterion shim emits one JSON line per benchmark when
# TDAC_BENCH_JSON is set; this script collects those lines into a single
# JSON object keyed by "group/name" with the median ns per iteration.
#
# Usage: scripts/bench.sh [--profile] [--no-shard] [extra cargo bench args...]
#   --profile                also run the observer-instrumented DS1
#                            pipeline (crates/bench/src/bin/tdac_profile)
#                            and fold its per-phase wall times + counter
#                            deltas into BENCH_tdac.json under "profile"
#   --no-shard               skip the multi-process shard-scaling sweep
#                            (crates/bench/src/bin/shard_scaling; folded
#                            under "shard_scaling" with the host's core
#                            count, plus "retry_overhead" — the clean-path
#                            cost of arming the fault supervisor — see
#                            docs/SHARDING.md)
#   TDAC_BENCH_SAMPLES=<n>   override sample count (default: per-group)
#   TDAC_SHARD_OBJECTS=<n>   shard-sweep dataset size in objects
#                            (default 166667 ≈ 10M observations)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

profile=0
shard=1
while [[ "${1:-}" == "--profile" || "${1:-}" == "--no-shard" ]]; do
    if [[ "$1" == "--profile" ]]; then profile=1; else shard=0; fi
    shift
done

tmp="$repo_root/.bench_lines.bench.tmp.json"
profile_tmp="$repo_root/.bench_profile.bench.tmp.json"
shard_tmp="$repo_root/.bench_shard.bench.tmp.json"
out="$repo_root/BENCH_tdac.json"
rm -f "$tmp" "$profile_tmp" "$shard_tmp"

for bench in tdac_pipeline clustering partitioning store serve; do
    echo "== cargo bench --bench $bench =="
    TDAC_BENCH_JSON="$tmp" cargo bench --offline -p tdac-bench --bench "$bench" "$@"
done

if [[ "$profile" == 1 ]]; then
    echo "== cargo run --bin tdac_profile (observer-instrumented DS1) =="
    cargo run --offline --release -q -p tdac-bench --bin tdac_profile > "$profile_tmp"
fi

if [[ "$shard" == 1 ]]; then
    echo "== cargo run --bin shard_scaling (multi-process sweep, 1/2/4/8 workers) =="
    cargo run --offline --release -q -p tdac-bench --bin shard_scaling > "$shard_tmp"
fi

# Fold the JSON lines into one object: {"id": median_ns, ...}; with
# --profile, attach the tdac_profile document under "profile"; the
# shard sweep document lands under "shard_scaling".
python3 - "$tmp" "$out" "$profile_tmp" "$shard_tmp" <<'PY'
import json, os, sys

lines_path, out_path, profile_path, shard_path = sys.argv[1:5]
benches = {}
with open(lines_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        benches[rec["id"]] = {
            "median_ns": rec["median_ns"],
            "samples": rec["samples"],
        }
doc = {"benches": benches}

# Any "<prefix>/dense" + "<prefix>/packed" pair is a kernel comparison:
# record the dense/packed throughput ratio under "kernel_speedups".
speedups = {}
for bench_id, rec in benches.items():
    if not bench_id.endswith("/dense"):
        continue
    prefix = bench_id[: -len("/dense")]
    packed = benches.get(prefix + "/packed")
    if packed and packed["median_ns"] > 0:
        speedups[prefix] = round(rec["median_ns"] / packed["median_ns"], 2)
if speedups:
    doc["kernel_speedups"] = speedups

# Any "<prefix>/limits_off" + "<prefix>/limits_on" pair measures the
# cost of arming the execution-limits machinery with budgets that never
# fire: record the on/off median ratio under "limits_overhead" (the
# docs/ROBUSTNESS.md claim is < 1.02, i.e. under 2% overhead).
overheads = {}
for bench_id, rec in benches.items():
    if not bench_id.endswith("/limits_off"):
        continue
    prefix = bench_id[: -len("/limits_off")]
    on = benches.get(prefix + "/limits_on")
    if on and rec["median_ns"] > 0:
        overheads[prefix] = round(on["median_ns"] / rec["median_ns"], 4)
if overheads:
    doc["limits_overhead"] = overheads

# Any "<prefix>/full_recompute" + "<prefix>/incremental_append" pair
# compares a from-scratch pipeline run on the accumulated claims with a
# session ingest of the same delta batch: record the full/incremental
# throughput ratio under "streaming_speedups" (docs/STREAMING.md).
streaming = {}
for bench_id, rec in benches.items():
    if not bench_id.endswith("/full_recompute"):
        continue
    prefix = bench_id[: -len("/full_recompute")]
    inc = benches.get(prefix + "/incremental_append")
    if inc and inc["median_ns"] > 0:
        streaming[prefix] = round(rec["median_ns"] / inc["median_ns"], 2)
if streaming:
    doc["streaming_speedups"] = streaming

# Any "<prefix>/rebuild" + "<prefix>/cold_load" pair compares a full
# from-scratch TD-AC run with decoding a packed `.tds` store and running
# from its truth page (build phase skipped): record the rebuild/cold_load
# throughput ratio under "store_speedups" (docs/STORAGE.md).
store = {}
for bench_id, rec in benches.items():
    if not bench_id.endswith("/rebuild"):
        continue
    prefix = bench_id[: -len("/rebuild")]
    cold = benches.get(prefix + "/cold_load")
    if cold and cold["median_ns"] > 0:
        store[prefix] = round(rec["median_ns"] / cold["median_ns"], 2)
if store:
    doc["store_speedups"] = store

# Any "serve/*" bench measures one query round-trip over loopback TCP:
# record requests/sec (1e9 / median_ns) under "serve_throughput". The
# chaos-injected variant serves a degraded-but-flagged generation, so
# clean vs chaos shows the graceful-degradation cost (docs/SERVING.md).
serve = {}
for bench_id, rec in benches.items():
    if bench_id.startswith("serve/") and rec["median_ns"] > 0:
        serve[bench_id] = round(1e9 / rec["median_ns"], 1)
if serve:
    doc["serve_throughput"] = serve

if os.path.exists(profile_path):
    with open(profile_path) as f:
        doc["profile"] = json.load(f)

# The shard_scaling bin emits one self-describing document: observation
# count, host core count, per-worker-count wall ms and speedup vs the
# single-process run. Speedup is bounded by physical cores — the
# "cores" field is the honest context for reading "speedup".
shard = None
if os.path.exists(shard_path):
    with open(shard_path) as f:
        shard = json.load(f)
    # The retry-supervisor overhead (clean path, supervisor armed vs
    # fail-fast) is its own top-level entry.
    retry = shard.pop("retry_overhead", None)
    if retry is not None:
        doc["retry_overhead"] = retry
    doc["shard_scaling"] = shard

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
extra = " + profile" if "profile" in doc else ""
if speedups:
    extra += "; packed-kernel speedups: " + ", ".join(
        f"{k} {v}x" for k, v in sorted(speedups.items())
    )
if overheads:
    extra += "; limits overhead: " + ", ".join(
        f"{k} {(v - 1) * 100:+.2f}%" for k, v in sorted(overheads.items())
    )
if streaming:
    extra += "; streaming speedups: " + ", ".join(
        f"{k} {v}x" for k, v in sorted(streaming.items())
    )
if store:
    extra += "; store speedups: " + ", ".join(
        f"{k} {v}x" for k, v in sorted(store.items())
    )
if serve:
    extra += "; serve throughput: " + ", ".join(
        f"{k} {v} req/s" for k, v in sorted(serve.items())
    )
if shard:
    best = max(shard["speedup"].items(), key=lambda kv: kv[1])
    extra += (
        f"; shard scaling: {best[1]}x at {best[0]} worker(s) "
        f"on {shard['cores']} core(s)"
    )
print(f"wrote {out_path} ({len(benches)} benches{extra})")
PY
rm -f "$tmp" "$profile_tmp" "$shard_tmp"
