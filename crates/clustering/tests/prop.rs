//! Property tests for the clustering stack.

use proptest::prelude::*;

use tdac_clustering::{
    pairwise_distances, silhouette_paper, silhouette_paper_dist, silhouette_samples,
    silhouette_samples_dist, Agglomerative, BitMatrix, DistanceOptions, Euclidean, Hamming,
    KMeans, KMeansConfig, KernelPolicy, Linkage, Matrix, Pam, PamConfig, SqEuclidean, Metric,
};

fn disabled() -> td_obs::Observer {
    td_obs::Observer::disabled()
}

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..10, 1usize..5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, cols..=cols),
            rows..=rows,
        )
        .prop_map(move |data| Matrix::from_rows(&data))
    })
}

/// Column widths biased toward the u64 word boundary (63/64/65) where
/// packing bugs live, plus a general range.
fn arb_bit_width() -> impl Strategy<Value = usize> {
    prop_oneof![Just(63usize), Just(64), Just(65), 1usize..130]
}

/// Random 0/1 matrices for packed-vs-dense kernel parity.
fn arb_binary_matrix() -> impl Strategy<Value = (Matrix, usize)> {
    (2usize..10, arb_bit_width()).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(0.0f64), Just(1.0)], cols..=cols),
            rows..=rows,
        )
        .prop_map(move |data| (Matrix::from_rows(&data), cols))
    })
}

/// Random 0/1 value matrices with a 0/1 observation mask; rows can be
/// entirely unobserved (all-missing), and values ⊆ mask as in the
/// missing-aware truth-vector build.
fn arb_masked_binary_matrix() -> impl Strategy<Value = (Matrix, Matrix)> {
    (2usize..8, arb_bit_width()).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            (
                proptest::collection::vec(prop_oneof![Just(0.0f64), Just(1.0)], cols..=cols),
                // Half the rows draw a random mask, half observed
                // nothing at all (the all-missing case).
                prop_oneof![
                    proptest::collection::vec(prop_oneof![Just(0.0f64), Just(1.0)], cols..=cols),
                    Just(vec![0.0f64; cols]),
                ],
            ),
            rows..=rows,
        )
        .prop_map(|rows| {
            let masks: Vec<Vec<f64>> = rows.iter().map(|(_, m)| m.clone()).collect();
            let values: Vec<Vec<f64>> = rows
                .iter()
                .map(|(v, m)| v.iter().zip(m).map(|(&x, &ob)| x * ob).collect())
                .collect();
            (Matrix::from_rows(&values), Matrix::from_rows(&masks))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_invariants(data in arb_matrix(), k in 1usize..5) {
        let k = k.min(data.n_rows());
        let fit = KMeans::new(KMeansConfig::with_k(k)).fit(&data).expect("fit");
        // Every observation assigned a valid cluster.
        prop_assert_eq!(fit.assignments.len(), data.n_rows());
        prop_assert!(fit.assignments.iter().all(|&c| c < k));
        // No cluster is empty (empty-cluster repair guarantee).
        let groups = fit.clusters(k);
        prop_assert!(groups.iter().all(|g| !g.is_empty()));
        // Reported inertia equals the recomputed objective.
        let recomputed: f64 = (0..data.n_rows())
            .map(|i| SqEuclidean.distance(data.row(i), fit.centroids.row(fit.assignments[i])))
            .sum();
        prop_assert!((fit.inertia - recomputed).abs() < 1e-6 * (1.0 + recomputed));
    }

    #[test]
    fn kmeans_inertia_never_increases_with_k(data in arb_matrix()) {
        let n = data.n_rows();
        let mut prev = f64::INFINITY;
        for k in 1..=n.min(4) {
            let fit = KMeans::new(KMeansConfig::with_k(k)).fit(&data).expect("fit");
            // Randomized restarts make strict monotonicity almost sure but
            // not guaranteed; allow a small slack.
            prop_assert!(fit.inertia <= prev * 1.05 + 1e-9,
                "k={k}: {} vs prev {prev}", fit.inertia);
            prev = fit.inertia.min(prev);
        }
    }

    #[test]
    fn pam_medoids_are_members_of_their_cluster(data in arb_matrix(), k in 1usize..4) {
        let k = k.min(data.n_rows());
        let fit = Pam::new(PamConfig::with_k(k)).fit(&data, &Euclidean).expect("fit");
        prop_assert_eq!(fit.medoids.len(), k);
        for (ci, &m) in fit.medoids.iter().enumerate() {
            prop_assert!(m < data.n_rows());
            prop_assert_eq!(fit.assignments[m], ci);
        }
        // Cost equals the recomputed sum of nearest-medoid distances.
        let recomputed: f64 = (0..data.n_rows())
            .map(|i| {
                fit.medoids
                    .iter()
                    .map(|&m| Euclidean.distance(data.row(i), data.row(m)))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        prop_assert!((fit.cost - recomputed).abs() < 1e-6 * (1.0 + recomputed));
    }

    #[test]
    fn hierarchical_produces_exactly_k_dense_clusters(
        data in arb_matrix(),
        k in 1usize..5,
        linkage_pick in 0usize..3,
    ) {
        let k = k.min(data.n_rows());
        let linkage = [Linkage::Single, Linkage::Complete, Linkage::Average][linkage_pick];
        let asg = Agglomerative::new(linkage).fit(&data, k, &Hamming).expect("fit");
        prop_assert_eq!(asg.len(), data.n_rows());
        let mut ids: Vec<usize> = asg.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), k);
        prop_assert_eq!(*ids.last().expect("non-empty"), k - 1, "dense ids");
    }

    #[test]
    fn silhouette_bounds_hold_for_any_clusterer(data in arb_matrix(), k in 2usize..4) {
        let k = k.min(data.n_rows());
        let fit = KMeans::new(KMeansConfig::with_k(k)).fit(&data).expect("fit");
        for c in silhouette_samples(&data, &fit.assignments, &Euclidean) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
        let s = silhouette_paper(&data, &fit.assignments, &Euclidean);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn silhouette_is_invariant_under_label_relabeling(
        data in arb_matrix(),
        k in 2usize..4,
        shift in 1usize..4,
    ) {
        // Cluster *names* carry no information: applying a permutation to
        // the label ids must leave every per-sample coefficient — and
        // hence the paper's mean — bitwise unchanged.
        let k = k.min(data.n_rows());
        let fit = KMeans::new(KMeansConfig::with_k(k)).fit(&data).expect("fit");
        let relabeled: Vec<usize> =
            fit.assignments.iter().map(|&c| (c + shift) % k).collect();
        let original = silhouette_samples(&data, &fit.assignments, &Euclidean);
        let renamed = silhouette_samples(&data, &relabeled, &Euclidean);
        for (i, (a, b)) in original.iter().zip(&renamed).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "sample {} moved", i);
        }
        // The macro-average sums per-cluster means in label order, so
        // relabeling reorders one float summation: equal up to roundoff,
        // not bitwise.
        let sp = silhouette_paper(&data, &fit.assignments, &Euclidean);
        let sr = silhouette_paper(&data, &relabeled, &Euclidean);
        prop_assert!((sp - sr).abs() <= 1e-12, "{sp} vs {sr}");
    }

    #[test]
    fn cached_distance_silhouette_matches_feature_space(
        data in arb_matrix(),
        k in 2usize..4,
    ) {
        // The TD-AC k-sweep evaluates every k from one shared pairwise
        // distance matrix; the cached path must agree with direct
        // feature-space evaluation bit-for-bit, per sample.
        let k = k.min(data.n_rows());
        let fit = KMeans::new(KMeansConfig::with_k(k)).fit(&data).expect("fit");
        let n = data.n_rows();
        for metric in [&Euclidean as &dyn Metric, &Hamming] {
            let dist = pairwise_distances(&data, metric, &disabled());
            let direct = silhouette_samples(&data, &fit.assignments, metric);
            let cached = silhouette_samples_dist(&dist, n, &fit.assignments);
            for (i, (a, b)) in direct.iter().zip(&cached).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} sample {}", metric.name(), i);
            }
            prop_assert_eq!(
                silhouette_paper(&data, &fit.assignments, metric).to_bits(),
                silhouette_paper_dist(&dist, n, &fit.assignments).to_bits()
            );
        }
    }

    #[test]
    fn packed_and_dense_hamming_are_bit_identical(
        (data, _cols) in arb_binary_matrix(),
    ) {
        // The packed XOR+popcount kernel must agree with the dense f64
        // loop exactly — integer disagreement counts are exactly
        // representable, so the contract is `==` on bits, no epsilon.
        let dense = DistanceOptions::builder()
            .kernel(KernelPolicy::Dense)
            .build()
            .pairwise(&data, &Hamming);
        let packed = DistanceOptions::builder()
            .kernel(KernelPolicy::Packed)
            .build()
            .pairwise(&data, &Hamming);
        let auto = pairwise_distances(&data, &Hamming, &disabled());
        prop_assert_eq!(dense.len(), packed.len());
        for (i, (d, p)) in dense.iter().zip(&packed).enumerate() {
            prop_assert_eq!(d.to_bits(), p.to_bits(), "entry {}", i);
        }
        for (d, a) in dense.iter().zip(&auto) {
            prop_assert_eq!(d.to_bits(), a.to_bits());
        }
        // Manhattan is the same count on 0/1 data and also dispatches.
        let manhattan = pairwise_distances(&data, &tdac_clustering::Manhattan, &disabled());
        for (d, m) in dense.iter().zip(&manhattan) {
            prop_assert_eq!(d.to_bits(), m.to_bits());
        }
    }

    #[test]
    fn masked_packed_counts_match_dense_reference(
        (values, mask) in arb_masked_binary_matrix(),
    ) {
        // Masked kernel parity, including rows that observed nothing at
        // all (their co-observation count with anyone is 0).
        let bits = BitMatrix::pack_masked(&values, &mask).expect("binary inputs pack");
        let n = values.n_rows();
        for i in 0..n {
            for j in 0..n {
                let (mut co_ref, mut diff_ref) = (0u64, 0u64);
                for c in 0..values.n_cols() {
                    if mask.get(i, c) > 0.0 && mask.get(j, c) > 0.0 {
                        co_ref += 1;
                        diff_ref += u64::from(values.get(i, c) != values.get(j, c));
                    }
                }
                let (diff, co) = bits.masked_counts(i, j);
                prop_assert_eq!((diff, co), (diff_ref, co_ref), "pair ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn bitmatrix_append_preserves_bits_and_tail_zero_invariant(
        (data, cols) in arb_binary_matrix(),
        extra_cols in prop_oneof![Just(0usize), Just(1), Just(63), Just(64), Just(65), 1usize..130],
        extra_rows in 0usize..4,
    ) {
        // Growth path of the incremental engine: appending columns and
        // all-zero (all-missing) rows must keep every existing bit in
        // place and the new region zero — at word boundaries above all.
        let mut packed = BitMatrix::pack(&data).expect("binary input packs");
        let before = packed.clone();
        packed.append_cols(extra_cols);
        packed.append_zero_rows(extra_rows);
        prop_assert_eq!(packed.n_cols(), cols + extra_cols);
        prop_assert_eq!(packed.n_rows(), data.n_rows() + extra_rows);
        prop_assert_eq!(packed.words_per_row(), (cols + extra_cols).div_ceil(64));
        for i in 0..data.n_rows() {
            for j in 0..cols {
                prop_assert_eq!(packed.get_bit(i, j), before.get_bit(i, j), "bit ({}, {})", i, j);
            }
            for j in cols..packed.n_cols() {
                prop_assert!(!packed.get_bit(i, j), "appended column ({}, {}) not zero", i, j);
            }
        }
        for i in data.n_rows()..packed.n_rows() {
            prop_assert!(packed.row_words(i).iter().all(|&w| w == 0), "appended row {} not zero", i);
        }
        // The tail-zero invariant is what the unmasked XOR kernel relies
        // on: grown matrices must produce the same Hamming distances as
        // packing the grown dense data from scratch.
        let mut grown_dense: Vec<Vec<f64>> = data
            .iter_rows()
            .map(|r| [r.to_vec(), vec![0.0; extra_cols]].concat())
            .collect();
        grown_dense.extend(std::iter::repeat_n(vec![0.0; cols + extra_cols], extra_rows));
        let reference = BitMatrix::pack(&Matrix::from_rows(&grown_dense)).expect("packs");
        prop_assert_eq!(&packed, &reference, "grown ≠ packed-from-scratch");
        for i in 0..packed.n_rows() {
            for j in 0..packed.n_rows() {
                prop_assert_eq!(packed.hamming(i, j), reference.hamming(i, j));
            }
        }
    }

    #[test]
    fn update_pairwise_equals_fresh_build_after_growth(
        (data, cols) in arb_binary_matrix(),
        extra_cols in prop_oneof![Just(0usize), Just(1), Just(64), 1usize..70],
        dirty_seed in 0usize..64,
        flip_col in 0usize..200,
    ) {
        // Metamorphic pin for the incremental distance path: mutate one
        // row, append zero columns and one new row, then check the
        // updated matrix equals a fresh rebuild bit-for-bit under every
        // kernel policy.
        let n = data.n_rows();
        let dirty_row = dirty_seed % n;
        let mut grown: Vec<Vec<f64>> = data
            .iter_rows()
            .map(|r| [r.to_vec(), vec![0.0; extra_cols]].concat())
            .collect();
        let w = cols + extra_cols;
        grown[dirty_row][flip_col % w] = 1.0 - grown[dirty_row][flip_col % w];
        grown.push((0..w).map(|c| f64::from(u8::from(c % 3 == 0))).collect());
        let new = Matrix::from_rows(&grown);
        for kernel in [KernelPolicy::Dense, KernelPolicy::Packed, KernelPolicy::Auto] {
            let opts = DistanceOptions::builder().kernel(kernel).build();
            let old = opts.pairwise(&data, &Hamming);
            let updated = opts.update_pairwise(&old, n, &new, &Hamming, &[dirty_row]);
            let fresh = opts.pairwise(&new, &Hamming);
            prop_assert_eq!(updated.len(), fresh.len());
            for (i, (u, f)) in updated.iter().zip(&fresh).enumerate() {
                prop_assert_eq!(u.to_bits(), f.to_bits(), "{:?} entry {}", kernel, i);
            }
        }
    }

    #[test]
    fn metrics_satisfy_identity_and_symmetry(
        a in proptest::collection::vec(-50.0f64..50.0, 1..6),
        b_seed in proptest::collection::vec(-50.0f64..50.0, 1..6),
    ) {
        let n = a.len().min(b_seed.len());
        let (a, b) = (&a[..n], &b_seed[..n]);
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(Euclidean),
            Box::new(SqEuclidean),
            Box::new(Hamming),
        ];
        for m in &metrics {
            prop_assert!(m.distance(a, a).abs() < 1e-9, "{}", m.name());
            prop_assert!((m.distance(a, b) - m.distance(b, a)).abs() < 1e-9);
            prop_assert!(m.distance(a, b) >= 0.0);
        }
    }
}
