//! Distance metrics over dense vectors, plus the shared pairwise
//! distance-matrix kernel every distance-based entry point builds on.
//!
//! The kernel is representation-aware: callers hand it [`Rows`] — a
//! dense [`Matrix`], a packed [`BitMatrix`], or both — and it picks the
//! bit-packed XOR+popcount path whenever the data is binary and the
//! metric counts bit disagreements ([`Metric::counts_bits_on_binary`]),
//! falling back to the dense `f64` loop otherwise. The two paths are
//! bit-identical on their shared envelope (distances are exact integer
//! counts, exactly representable in `f64`); `docs/KERNELS.md` has the
//! full dispatch table.

use rayon::prelude::*;

use crate::bitmatrix::{BitMatrix, KernelPolicy};
use crate::matrix::Matrix;

/// A dissimilarity measure between two equal-length vectors.
///
/// Implementations must be symmetric and return `0` for identical
/// vectors; they need not satisfy the triangle inequality (cosine
/// distance does not). `Sync` is required so distance matrices can be
/// filled from worker threads; metrics are stateless in practice.
pub trait Metric: Sync {
    /// Distance between `a` and `b`.
    ///
    /// Callers guarantee `a.len() == b.len()`.
    fn distance(&self, a: &[f64], b: &[f64]) -> f64;

    /// Short name for reports and ablation tables.
    fn name(&self) -> &'static str;

    /// True when, restricted to 0/1 vectors, this metric equals the
    /// exact count of disagreeing positions — the envelope in which the
    /// packed popcount kernel of [`pairwise_distances`] is bit-identical
    /// to the dense path. Defaults to `false`; [`Hamming`] and
    /// [`Manhattan`] (identical on 0/1 data) opt in.
    fn counts_bits_on_binary(&self) -> bool {
        false
    }
}

/// Euclidean (L2) distance — what k-means centroids minimize.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euclidean;

/// Squared Euclidean distance — the inertia term of the paper's Eq. 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqEuclidean;

/// Manhattan (L1) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Manhattan;

/// Hamming distance, `Σ |a_i - b_i|` — the paper's Eq. 2 similarity
/// between attribute truth vectors. On 0/1 vectors this counts
/// disagreeing positions; on fractional vectors it degrades gracefully to
/// L1 (which is why the paper can use it interchangeably with k-means
/// geometry).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamming;

/// Cosine distance, `1 - cos(a, b)`; two zero vectors are at distance 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cosine;

impl Metric for Euclidean {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        SqEuclidean.distance(a, b).sqrt()
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

impl Metric for SqEuclidean {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "sq-euclidean"
    }
}

impl Metric for Manhattan {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }

    fn counts_bits_on_binary(&self) -> bool {
        // |x − y| on 0/1 entries is the disagreement indicator, and the
        // sequential f64 sum of exact small integers is exact.
        true
    }
}

impl Metric for Hamming {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        // Identical to L1 on arbitrary reals; exact disagreement count on
        // the 0/1 vectors the paper builds.
        Manhattan.distance(a, b)
    }

    fn name(&self) -> &'static str {
        "hamming"
    }

    fn counts_bits_on_binary(&self) -> bool {
        true
    }
}

impl Metric for Cosine {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 && nb == 0.0 {
            return 0.0;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// The observation rows a distance computation runs over, in whichever
/// representations the caller happens to hold.
///
/// `&Matrix` and `&BitMatrix` both convert via `Into`, so existing
/// call sites read unchanged (`pairwise_distances(&matrix, …)`).
/// Carrying `Dual` lets the kernel pick per metric without ever
/// re-packing or densifying: packed popcount for bit-counting metrics,
/// dense floats for everything else.
#[derive(Clone, Copy)]
pub enum Rows<'a> {
    /// Dense `f64` rows only; the kernel may pack them on the fly when
    /// they are binary and the metric counts bits.
    Dense(&'a Matrix),
    /// Packed rows only; densified (via [`BitMatrix::to_dense`]) when a
    /// non-bit-counting metric needs floats.
    Packed(&'a BitMatrix),
    /// Both representations of the same data — the kernel trusts that
    /// they agree and never converts.
    Dual {
        /// The dense representation.
        dense: &'a Matrix,
        /// The packed representation of the same rows.
        packed: &'a BitMatrix,
    },
}

impl Rows<'_> {
    /// Number of observation rows.
    pub fn n_rows(&self) -> usize {
        match self {
            Rows::Dense(m) => m.n_rows(),
            Rows::Packed(b) => b.n_rows(),
            Rows::Dual { dense, .. } => dense.n_rows(),
        }
    }

    /// Number of columns (dimensions).
    pub fn n_cols(&self) -> usize {
        match self {
            Rows::Dense(m) => m.n_cols(),
            Rows::Packed(b) => b.n_cols(),
            Rows::Dual { dense, .. } => dense.n_cols(),
        }
    }
}

impl<'a> From<&'a Matrix> for Rows<'a> {
    fn from(m: &'a Matrix) -> Self {
        Rows::Dense(m)
    }
}

impl<'a> From<&'a BitMatrix> for Rows<'a> {
    fn from(b: &'a BitMatrix) -> Self {
        Rows::Packed(b)
    }
}

/// Options for a pairwise distance-matrix build, mirroring
/// `TdacConfig::builder()` in shape: a plain struct with public fields,
/// a `Default` that matches the bare [`pairwise_distances`] call, and an
/// infallible builder.
///
/// ```
/// use tdac_clustering::{DistanceOptions, Hamming, KernelPolicy, Matrix};
///
/// let data = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 1.0]]);
/// let opts = DistanceOptions::builder()
///     .kernel(KernelPolicy::Packed)
///     .build();
/// let dist = opts.pairwise(&data, &Hamming);
/// assert_eq!(dist, vec![0.0, 1.0, 1.0, 0.0]);
/// ```
#[derive(Clone, Default)]
pub struct DistanceOptions {
    /// Which kernel the build may use (default [`KernelPolicy::Auto`]).
    pub kernel: KernelPolicy,
    /// Instrumentation sink (default disabled).
    pub observer: td_obs::Observer,
}

impl DistanceOptions {
    /// Starts a builder with the defaults of [`DistanceOptions::default`].
    pub fn builder() -> DistanceOptionsBuilder {
        DistanceOptionsBuilder {
            opts: Self::default(),
        }
    }

    /// Builds the pairwise distance matrix under these options; see
    /// [`pairwise_distances`] for the output contract.
    pub fn pairwise<'a>(&self, data: impl Into<Rows<'a>>, metric: &dyn Metric) -> Vec<f64> {
        pairwise_impl(data.into(), metric, self.kernel, &self.observer)
    }

    /// Incrementally updates a pairwise distance matrix after some rows
    /// changed and/or rows were appended.
    ///
    /// `old` is the previous `old_n × old_n` matrix over the first
    /// `old_n` rows of `data`; `dirty` lists the rows among those whose
    /// content changed (rows `old_n..n` are implicitly dirty). Pairs
    /// with both endpoints clean are **copied bit-for-bit** from `old`;
    /// every pair touching a dirty row is re-evaluated with exactly the
    /// per-pair kernel [`DistanceOptions::pairwise`] would use, so the
    /// result is bit-identical to a full rebuild — *provided* clean
    /// rows are unchanged up to appended all-zero columns (trailing
    /// `(0, 0)` coordinate pairs contribute exact `+0.0` terms to every
    /// metric in this crate, which leaves sequentially accumulated
    /// distances bit-identical on the 0/1 truth-vector data TD-AC
    /// feeds it).
    ///
    /// Instrumentation mirrors a fresh build restricted to the work
    /// actually done: `DistanceEvals` counts only re-evaluated pairs,
    /// and the packed counters fire only when the packed kernel ran.
    pub fn update_pairwise<'a>(
        &self,
        old: &[f64],
        old_n: usize,
        data: impl Into<Rows<'a>>,
        metric: &dyn Metric,
        dirty: &[usize],
    ) -> Vec<f64> {
        update_pairwise_impl(
            old,
            old_n,
            data.into(),
            metric,
            self.kernel,
            &self.observer,
            dirty,
        )
    }
}

/// Builder for [`DistanceOptions`]; every field has a default, so
/// `build()` cannot fail.
#[derive(Clone, Default)]
pub struct DistanceOptionsBuilder {
    opts: DistanceOptions,
}

impl DistanceOptionsBuilder {
    /// Sets the kernel policy.
    #[must_use]
    pub fn kernel(mut self, kernel: KernelPolicy) -> Self {
        self.opts.kernel = kernel;
        self
    }

    /// Sets the observer.
    #[must_use]
    pub fn observer(mut self, observer: td_obs::Observer) -> Self {
        self.opts.observer = observer;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DistanceOptions {
        self.opts
    }
}

/// The full pairwise distance matrix over `data`'s rows, row-major
/// `n×n` with a zero diagonal.
///
/// The upper triangle is computed in parallel (one strip of
/// `dist(i, i+1..n)` per row) and mirrored, so every entry is evaluated
/// exactly once and the result is bit-identical at any thread count.
/// This is the shared cache the TD-AC k-sweep, PAM and hierarchical
/// clustering all reuse instead of recomputing `O(n²·d)` distances.
///
/// Under the default [`KernelPolicy::Auto`] the build dispatches to the
/// bit-packed popcount kernel when the rows are (or pack to) binary and
/// `metric.counts_bits_on_binary()`; the result is bit-identical to the
/// dense path either way. Instrumentation: bumps
/// [`td_obs::Counter::DistanceEvals`] by the `n·(n−1)/2` upper-triangle
/// entries, plus [`td_obs::Counter::PackedKernelInvocations`] /
/// [`td_obs::Counter::WordsXored`] when the packed kernel ran — one
/// aggregate increment per build, never in the hot loop. Use
/// [`DistanceOptions`] to pin the kernel explicitly.
pub fn pairwise_distances<'a>(
    data: impl Into<Rows<'a>>,
    metric: &dyn Metric,
    observer: &td_obs::Observer,
) -> Vec<f64> {
    pairwise_impl(data.into(), metric, KernelPolicy::Auto, observer)
}

/// Mirrors parallel upper-triangle strips into a row-major `n×n`
/// symmetric matrix with a zero diagonal.
fn mirror_strips(strips: Vec<Vec<f64>>, n: usize) -> Vec<f64> {
    let mut dist = vec![0.0f64; n * n];
    for (i, strip) in strips.iter().enumerate() {
        for (off, &d) in strip.iter().enumerate() {
            let j = i + 1 + off;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    dist
}

fn pairwise_impl(
    rows: Rows<'_>,
    metric: &dyn Metric,
    kernel: KernelPolicy,
    observer: &td_obs::Observer,
) -> Vec<f64> {
    let n = rows.n_rows();
    if n < 2 {
        // Nothing to evaluate: no counter traffic, no kernel choice.
        return vec![0.0; n * n];
    }
    let pairs = (n as u64) * (n as u64 - 1) / 2;

    if kernel != KernelPolicy::Dense && metric.counts_bits_on_binary() {
        // Packed storage outlives the borrow when a dense-only input
        // packs on the fly.
        let on_the_fly;
        let packed: Option<&BitMatrix> = match rows {
            Rows::Packed(b) | Rows::Dual { packed: b, .. } => Some(b),
            Rows::Dense(m) => {
                on_the_fly = BitMatrix::pack(m);
                on_the_fly.as_ref()
            }
        };
        if let Some(bm) = packed {
            let strips: Vec<Vec<f64>> = (0..n)
                .into_par_iter()
                .map(|i| ((i + 1)..n).map(|j| bm.hamming(i, j) as f64).collect())
                .collect();
            observer.incr(td_obs::Counter::DistanceEvals, pairs);
            observer.incr(td_obs::Counter::PackedKernelInvocations, 1);
            observer.incr(
                td_obs::Counter::WordsXored,
                pairs * bm.words_per_row() as u64,
            );
            return mirror_strips(strips, n);
        }
        // Non-binary data: fall through to the dense path.
    }

    let densified;
    let data: &Matrix = match rows {
        Rows::Dense(m) | Rows::Dual { dense: m, .. } => m,
        Rows::Packed(b) => {
            densified = b.to_dense();
            &densified
        }
    };
    let strips: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            ((i + 1)..n)
                .map(|j| metric.distance(data.row(i), data.row(j)))
                .collect()
        })
        .collect();
    observer.incr(td_obs::Counter::DistanceEvals, pairs);
    mirror_strips(strips, n)
}

fn update_pairwise_impl(
    old: &[f64],
    old_n: usize,
    rows: Rows<'_>,
    metric: &dyn Metric,
    kernel: KernelPolicy,
    observer: &td_obs::Observer,
    dirty: &[usize],
) -> Vec<f64> {
    let n = rows.n_rows();
    assert!(n >= old_n, "rows cannot shrink: {n} < {old_n}");
    assert_eq!(old.len(), old_n * old_n, "old matrix shape mismatch");
    if n < 2 {
        return vec![0.0; n * n];
    }
    let mut is_dirty = vec![false; n];
    for &i in dirty {
        assert!(i < n, "dirty row {i} out of range");
        is_dirty[i] = true;
    }
    for flag in &mut is_dirty[old_n..] {
        *flag = true;
    }

    // Clean-pair entries carry over bit-for-bit; dirty entries in the
    // copied block are overwritten below.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..old_n {
        dist[i * n..i * n + old_n].copy_from_slice(&old[i * old_n..(i + 1) * old_n]);
    }

    // Re-evaluate each dirty pair with the same per-pair kernel a fresh
    // build would pick (see `pairwise_impl`).
    let on_the_fly;
    let packed: Option<&BitMatrix> = if kernel != KernelPolicy::Dense
        && metric.counts_bits_on_binary()
    {
        match rows {
            Rows::Packed(b) | Rows::Dual { packed: b, .. } => Some(b),
            Rows::Dense(m) => {
                on_the_fly = BitMatrix::pack(m);
                on_the_fly.as_ref()
            }
        }
    } else {
        None
    };
    let densified;
    let dense: Option<&Matrix> = if packed.is_some() {
        None
    } else {
        Some(match rows {
            Rows::Dense(m) | Rows::Dual { dense: m, .. } => m,
            Rows::Packed(b) => {
                densified = b.to_dense();
                &densified
            }
        })
    };

    let strips: Vec<Vec<(usize, f64)>> = (0..n)
        .into_par_iter()
        .map(|i| {
            ((i + 1)..n)
                .filter(|&j| is_dirty[i] || is_dirty[j])
                .map(|j| {
                    let d = match (packed, dense) {
                        (Some(bm), _) => bm.hamming(i, j) as f64,
                        (None, Some(m)) => metric.distance(m.row(i), m.row(j)),
                        (None, None) => unreachable!("one representation is always picked"),
                    };
                    (j, d)
                })
                .collect()
        })
        .collect();
    let recomputed: u64 = strips.iter().map(|s| s.len() as u64).sum();
    for (i, strip) in strips.iter().enumerate() {
        for &(j, d) in strip {
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    if recomputed > 0 {
        observer.incr(td_obs::Counter::DistanceEvals, recomputed);
        if let Some(bm) = packed {
            observer.incr(td_obs::Counter::PackedKernelInvocations, 1);
            observer.incr(
                td_obs::Counter::WordsXored,
                recomputed * bm.words_per_row() as u64,
            );
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_obs::Observer;

    const A: [f64; 3] = [1.0, 0.0, 1.0];
    const B: [f64; 3] = [0.0, 0.0, 1.0];

    fn disabled() -> Observer {
        Observer::disabled()
    }

    #[test]
    fn euclidean_cases() {
        assert_eq!(Euclidean.distance(&A, &A), 0.0);
        assert_eq!(Euclidean.distance(&A, &B), 1.0);
        assert_eq!(Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn sq_euclidean_is_square() {
        assert_eq!(SqEuclidean.distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn hamming_counts_disagreements_on_binary() {
        assert_eq!(Hamming.distance(&A, &B), 1.0);
        assert_eq!(Hamming.distance(&[1.0, 1.0, 0.0], &[0.0, 0.0, 1.0]), 3.0);
        assert_eq!(Hamming.distance(&A, &A), 0.0);
    }

    #[test]
    fn manhattan_on_reals() {
        assert_eq!(Manhattan.distance(&[1.5, -1.0], &[0.5, 1.0]), 3.0);
    }

    #[test]
    fn cosine_cases() {
        assert!(Cosine.distance(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-12);
        assert!((Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(Cosine.distance(&[0.0], &[0.0]), 0.0);
        assert_eq!(Cosine.distance(&[0.0], &[1.0]), 1.0);
    }

    #[test]
    fn only_bit_counting_metrics_opt_into_the_packed_kernel() {
        assert!(Hamming.counts_bits_on_binary());
        assert!(Manhattan.counts_bits_on_binary());
        assert!(!Euclidean.counts_bits_on_binary());
        assert!(!SqEuclidean.counts_bits_on_binary());
        assert!(!Cosine.counts_bits_on_binary());
    }

    #[test]
    fn pairwise_distances_matches_direct_evaluation() {
        let data = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![3.0, -2.0],
            vec![0.5, 0.5],
            vec![-1.0, 4.0],
        ]);
        let n = data.n_rows();
        for metric in [&Euclidean as &dyn Metric, &Hamming, &Cosine] {
            let dist = pairwise_distances(&data, metric, &disabled());
            assert_eq!(dist.len(), n * n);
            for i in 0..n {
                // The diagonal is pinned to exactly 0 by construction
                // (cosine's sqrt rounding can make distance(x, x) ≈ 1e-16).
                assert_eq!(dist[i * n + i], 0.0);
                for j in 0..n {
                    if i != j {
                        assert_eq!(
                            dist[i * n + j],
                            metric.distance(data.row(i.min(j)), data.row(i.max(j))),
                            "{} ({i},{j})",
                            metric.name()
                        );
                    }
                    assert_eq!(dist[i * n + j], dist[j * n + i]);
                }
            }
        }
    }

    #[test]
    fn pairwise_distances_of_empty_matrix() {
        assert!(pairwise_distances(&Matrix::from_rows(&[]), &Euclidean, &disabled()).is_empty());
    }

    #[test]
    fn tiny_inputs_skip_counter_traffic() {
        // Regression: the old code bumped DistanceEvals by
        // n·(n−1)/2 even for n ∈ {0, 1}, surviving only thanks to
        // saturating_sub. The early return must leave all counters at 0.
        for rows in [0usize, 1] {
            let observer = Observer::enabled();
            let data = Matrix::zeros(rows, 4);
            let dist = pairwise_distances(&data, &Hamming, &observer);
            assert_eq!(dist.len(), rows * rows);
            let profile = observer.profile().unwrap();
            assert_eq!(profile.counter("distance_evals"), Some(0), "n = {rows}");
            assert_eq!(profile.counter("packed_kernel_invocations"), Some(0));
            assert_eq!(profile.counter("words_xored"), Some(0));
        }
    }

    #[test]
    fn packed_and_dense_kernels_are_bit_identical_on_binary_data() {
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|r| (0..130).map(|c| f64::from(u8::from((r * 7 + c * 3) % 5 < 2))).collect())
            .collect();
        let data = Matrix::from_rows(&rows);
        let dense = DistanceOptions::builder()
            .kernel(KernelPolicy::Dense)
            .build()
            .pairwise(&data, &Hamming);
        let packed = DistanceOptions::builder()
            .kernel(KernelPolicy::Packed)
            .build()
            .pairwise(&data, &Hamming);
        let auto = pairwise_distances(&data, &Hamming, &disabled());
        assert_eq!(dense.len(), packed.len());
        for (i, (d, p)) in dense.iter().zip(&packed).enumerate() {
            assert_eq!(d.to_bits(), p.to_bits(), "entry {i}");
        }
        assert_eq!(packed, auto, "Auto picks the packed kernel on this input");
    }

    #[test]
    fn packed_kernel_counters_fire_only_on_the_packed_path() {
        let data = Matrix::from_rows(&[
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ]);
        let packed_obs = Observer::enabled();
        pairwise_distances(&data, &Hamming, &packed_obs);
        let p = packed_obs.profile().unwrap();
        assert_eq!(p.counter("distance_evals"), Some(6));
        assert_eq!(p.counter("packed_kernel_invocations"), Some(1));
        // 3 columns → 1 word per row, 6 pairs.
        assert_eq!(p.counter("words_xored"), Some(6));

        let dense_obs = Observer::enabled();
        DistanceOptions::builder()
            .kernel(KernelPolicy::Dense)
            .observer(dense_obs.clone())
            .build()
            .pairwise(&data, &Hamming);
        let d = dense_obs.profile().unwrap();
        assert_eq!(d.counter("distance_evals"), Some(6));
        assert_eq!(d.counter("packed_kernel_invocations"), Some(0));
        assert_eq!(d.counter("words_xored"), Some(0));
    }

    #[test]
    fn non_binary_data_falls_back_to_dense_under_any_policy() {
        let data = Matrix::from_rows(&[vec![0.5, 1.0], vec![1.0, 0.0], vec![0.0, 0.25]]);
        let observer = Observer::enabled();
        let dist = DistanceOptions::builder()
            .kernel(KernelPolicy::Packed)
            .observer(observer.clone())
            .build()
            .pairwise(&data, &Hamming);
        let reference = DistanceOptions::builder()
            .kernel(KernelPolicy::Dense)
            .build()
            .pairwise(&data, &Hamming);
        assert_eq!(dist, reference);
        let p = observer.profile().unwrap();
        assert_eq!(p.counter("packed_kernel_invocations"), Some(0), "nothing to pack");
        assert_eq!(p.counter("distance_evals"), Some(3));
    }

    #[test]
    fn packed_rows_densify_for_non_bit_metrics() {
        let data = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]);
        let bits = BitMatrix::pack(&data).unwrap();
        let via_packed = pairwise_distances(&bits, &Euclidean, &disabled());
        let via_dense = pairwise_distances(&data, &Euclidean, &disabled());
        assert_eq!(via_packed, via_dense);
    }

    #[test]
    fn dual_rows_use_the_packed_side_for_hamming() {
        let data = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.0], vec![1.0, 1.0]]);
        let bits = BitMatrix::pack(&data).unwrap();
        let observer = Observer::enabled();
        let dual = pairwise_distances(
            Rows::Dual {
                dense: &data,
                packed: &bits,
            },
            &Hamming,
            &observer,
        );
        assert_eq!(dual, pairwise_distances(&data, &Hamming, &disabled()));
        let p = observer.profile().unwrap();
        assert_eq!(p.counter("packed_kernel_invocations"), Some(1));
    }

    #[test]
    fn update_pairwise_matches_full_rebuild_bitwise() {
        // Start with 5 binary rows, mutate row 1, append two rows and
        // three columns: the updated matrix must equal a fresh build
        // bit-for-bit under both kernels.
        let base: Vec<Vec<f64>> = (0..5)
            .map(|r| (0..66).map(|c| f64::from(u8::from((r * 5 + c) % 3 == 0))).collect())
            .collect();
        let old = Matrix::from_rows(&base);
        for kernel in [KernelPolicy::Dense, KernelPolicy::Packed, KernelPolicy::Auto] {
            let opts = DistanceOptions::builder().kernel(kernel).build();
            let before = opts.pairwise(&old, &Hamming);
            let mut grown: Vec<Vec<f64>> =
                base.iter().map(|r| [r.clone(), vec![0.0; 3]].concat()).collect();
            grown[1][7] = 1.0 - grown[1][7];
            grown[1][65] = 1.0 - grown[1][65];
            grown.push((0..69).map(|c| f64::from(u8::from(c % 4 == 0))).collect());
            grown.push(vec![0.0; 69]);
            let new = Matrix::from_rows(&grown);
            let updated = opts.update_pairwise(&before, 5, &new, &Hamming, &[1]);
            let fresh = opts.pairwise(&new, &Hamming);
            assert_eq!(updated.len(), fresh.len());
            for (i, (u, f)) in updated.iter().zip(&fresh).enumerate() {
                assert_eq!(u.to_bits(), f.to_bits(), "kernel {kernel:?} entry {i}");
            }
        }
    }

    #[test]
    fn update_pairwise_counts_only_dirty_pairs() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|r| (0..10).map(|c| f64::from(u8::from((r + c) % 2 == 0))).collect())
            .collect();
        let data = Matrix::from_rows(&rows);
        let full = pairwise_distances(&data, &Hamming, &disabled());
        let observer = Observer::enabled();
        let opts = DistanceOptions::builder().observer(observer.clone()).build();
        // One dirty row among six: 5 pairs touch it.
        let updated = opts.update_pairwise(&full, 6, &data, &Hamming, &[2]);
        assert_eq!(updated, full);
        let p = observer.profile().unwrap();
        assert_eq!(p.counter("distance_evals"), Some(5));
        assert_eq!(p.counter("packed_kernel_invocations"), Some(1));

        // No dirty rows at all: zero counter traffic.
        let quiet = Observer::enabled();
        let opts = DistanceOptions::builder().observer(quiet.clone()).build();
        let updated = opts.update_pairwise(&full, 6, &data, &Hamming, &[]);
        assert_eq!(updated, full);
        assert_eq!(quiet.profile().unwrap().counter("distance_evals"), Some(0));
    }

    #[test]
    fn all_metrics_are_symmetric_and_reflexive() {
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(Euclidean),
            Box::new(SqEuclidean),
            Box::new(Manhattan),
            Box::new(Hamming),
            Box::new(Cosine),
        ];
        let x = [0.3, 1.7, -2.0];
        let y = [1.0, 0.0, 0.5];
        for m in &metrics {
            assert_eq!(m.distance(&x, &x), 0.0, "{}", m.name());
            assert!(
                (m.distance(&x, &y) - m.distance(&y, &x)).abs() < 1e-12,
                "{}",
                m.name()
            );
            assert!(m.distance(&x, &y) >= 0.0, "{}", m.name());
        }
    }
}
