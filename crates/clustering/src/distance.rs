//! Distance metrics over dense vectors, plus the shared pairwise
//! distance-matrix kernel every distance-based entry point builds on.

use rayon::prelude::*;

use crate::matrix::Matrix;

/// A dissimilarity measure between two equal-length vectors.
///
/// Implementations must be symmetric and return `0` for identical
/// vectors; they need not satisfy the triangle inequality (cosine
/// distance does not). `Sync` is required so distance matrices can be
/// filled from worker threads; metrics are stateless in practice.
pub trait Metric: Sync {
    /// Distance between `a` and `b`.
    ///
    /// Callers guarantee `a.len() == b.len()`.
    fn distance(&self, a: &[f64], b: &[f64]) -> f64;

    /// Short name for reports and ablation tables.
    fn name(&self) -> &'static str;
}

/// Euclidean (L2) distance — what k-means centroids minimize.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euclidean;

/// Squared Euclidean distance — the inertia term of the paper's Eq. 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqEuclidean;

/// Manhattan (L1) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Manhattan;

/// Hamming distance, `Σ |a_i - b_i|` — the paper's Eq. 2 similarity
/// between attribute truth vectors. On 0/1 vectors this counts
/// disagreeing positions; on fractional vectors it degrades gracefully to
/// L1 (which is why the paper can use it interchangeably with k-means
/// geometry).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamming;

/// Cosine distance, `1 - cos(a, b)`; two zero vectors are at distance 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cosine;

impl Metric for Euclidean {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        SqEuclidean.distance(a, b).sqrt()
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

impl Metric for SqEuclidean {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "sq-euclidean"
    }
}

impl Metric for Manhattan {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

impl Metric for Hamming {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        // Identical to L1 on arbitrary reals; exact disagreement count on
        // the 0/1 vectors the paper builds.
        Manhattan.distance(a, b)
    }

    fn name(&self) -> &'static str {
        "hamming"
    }
}

impl Metric for Cosine {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 && nb == 0.0 {
            return 0.0;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// The full pairwise distance matrix over the rows of `data`, row-major
/// `n×n` with a zero diagonal.
///
/// The upper triangle is computed in parallel (one strip of
/// `dist(i, i+1..n)` per row) and mirrored, so every entry is evaluated
/// exactly once and the result is bit-identical at any thread count.
/// This is the shared cache the TD-AC k-sweep, PAM and hierarchical
/// clustering all reuse instead of recomputing `O(n²·d)` distances.
pub fn pairwise_distances(data: &Matrix, metric: &dyn Metric) -> Vec<f64> {
    pairwise_distances_observed(data, metric, &td_obs::Observer::disabled())
}

/// [`pairwise_distances`] with instrumentation: bumps
/// [`td_obs::Counter::DistanceEvals`] by the number of upper-triangle
/// entries actually evaluated (`n·(n−1)/2`). One aggregate increment per
/// call — the hot inner loop is untouched, and a disabled observer costs
/// a single branch.
pub fn pairwise_distances_observed(
    data: &Matrix,
    metric: &dyn Metric,
    observer: &td_obs::Observer,
) -> Vec<f64> {
    let n = data.n_rows();
    let strips: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            ((i + 1)..n)
                .map(|j| metric.distance(data.row(i), data.row(j)))
                .collect()
        })
        .collect();
    observer.incr(
        td_obs::Counter::DistanceEvals,
        (n as u64 * n.saturating_sub(1) as u64) / 2,
    );
    let mut dist = vec![0.0f64; n * n];
    for (i, strip) in strips.iter().enumerate() {
        for (off, &d) in strip.iter().enumerate() {
            let j = i + 1 + off;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 0.0, 1.0];
    const B: [f64; 3] = [0.0, 0.0, 1.0];

    #[test]
    fn euclidean_cases() {
        assert_eq!(Euclidean.distance(&A, &A), 0.0);
        assert_eq!(Euclidean.distance(&A, &B), 1.0);
        assert_eq!(Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn sq_euclidean_is_square() {
        assert_eq!(SqEuclidean.distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn hamming_counts_disagreements_on_binary() {
        assert_eq!(Hamming.distance(&A, &B), 1.0);
        assert_eq!(Hamming.distance(&[1.0, 1.0, 0.0], &[0.0, 0.0, 1.0]), 3.0);
        assert_eq!(Hamming.distance(&A, &A), 0.0);
    }

    #[test]
    fn manhattan_on_reals() {
        assert_eq!(Manhattan.distance(&[1.5, -1.0], &[0.5, 1.0]), 3.0);
    }

    #[test]
    fn cosine_cases() {
        assert!(Cosine.distance(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-12);
        assert!((Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(Cosine.distance(&[0.0], &[0.0]), 0.0);
        assert_eq!(Cosine.distance(&[0.0], &[1.0]), 1.0);
    }

    #[test]
    fn pairwise_distances_matches_direct_evaluation() {
        let data = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![3.0, -2.0],
            vec![0.5, 0.5],
            vec![-1.0, 4.0],
        ]);
        let n = data.n_rows();
        for metric in [&Euclidean as &dyn Metric, &Hamming, &Cosine] {
            let dist = pairwise_distances(&data, metric);
            assert_eq!(dist.len(), n * n);
            for i in 0..n {
                // The diagonal is pinned to exactly 0 by construction
                // (cosine's sqrt rounding can make distance(x, x) ≈ 1e-16).
                assert_eq!(dist[i * n + i], 0.0);
                for j in 0..n {
                    if i != j {
                        assert_eq!(
                            dist[i * n + j],
                            metric.distance(data.row(i.min(j)), data.row(i.max(j))),
                            "{} ({i},{j})",
                            metric.name()
                        );
                    }
                    assert_eq!(dist[i * n + j], dist[j * n + i]);
                }
            }
        }
    }

    #[test]
    fn pairwise_distances_of_empty_matrix() {
        assert!(pairwise_distances(&Matrix::from_rows(&[]), &Euclidean).is_empty());
    }

    #[test]
    fn all_metrics_are_symmetric_and_reflexive() {
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(Euclidean),
            Box::new(SqEuclidean),
            Box::new(Manhattan),
            Box::new(Hamming),
            Box::new(Cosine),
        ];
        let x = [0.3, 1.7, -2.0];
        let y = [1.0, 0.0, 0.5];
        for m in &metrics {
            assert_eq!(m.distance(&x, &x), 0.0, "{}", m.name());
            assert!(
                (m.distance(&x, &y) - m.distance(&y, &x)).abs() < 1e-12,
                "{}",
                m.name()
            );
            assert!(m.distance(&x, &y) >= 0.0, "{}", m.name());
        }
    }
}
