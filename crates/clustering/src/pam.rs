//! k-medoids via PAM (Partitioning Around Medoids; Kaufman & Rousseeuw).
//!
//! The ablation counterpart to k-means: TD-AC defines its attribute
//! similarity with the Hamming distance (Eq. 2) but optimizes Euclidean
//! inertia; PAM optimizes *any* metric directly, so comparing the two
//! quantifies how much that mismatch costs (spoiler from our ablation
//! bench: on binary truth vectors, very little).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::distance::{pairwise_distances, Metric};
use crate::error::ClusterError;
use crate::matrix::Matrix;

/// Configuration of a [`Pam`] run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PamConfig {
    /// Number of clusters.
    pub k: usize,
    /// Swap-phase iteration cap.
    pub max_iterations: u32,
    /// RNG seed for the BUILD fallback shuffle.
    pub seed: u64,
}

impl PamConfig {
    /// Defaults besides `k`: 100 swap rounds, seed 42.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            seed: 42,
        }
    }
}

/// The outcome of a PAM fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PamResult {
    /// Cluster index of every observation.
    pub assignments: Vec<usize>,
    /// Observation index of each cluster's medoid.
    pub medoids: Vec<usize>,
    /// Total distance of observations to their medoid.
    pub cost: f64,
    /// Swap iterations performed.
    pub iterations: u32,
}

/// PAM clusterer (greedy BUILD + steepest-descent SWAP).
#[derive(Debug, Clone, Copy)]
pub struct Pam {
    config: PamConfig,
}

impl Pam {
    /// A PAM instance with the given configuration.
    pub fn new(config: PamConfig) -> Self {
        Self { config }
    }

    /// Fits `k` medoids to the rows of `data` under `metric`.
    pub fn fit(&self, data: &Matrix, metric: &dyn Metric) -> Result<PamResult, ClusterError> {
        // Precompute the full distance matrix (n ≤ a few hundred
        // attributes in every TD-AC workload), upper triangle in parallel.
        let dist = pairwise_distances(data, metric, &td_obs::Observer::disabled());
        self.fit_from_distances(&dist, data.n_rows())
    }

    /// Fits `k` medoids from a precomputed row-major `n×n` distance
    /// matrix (used by the missing-data-aware TD-AC variant, whose masked
    /// distance has no feature-vector form).
    ///
    /// # Panics
    /// Panics if `dist.len() != n * n`.
    pub fn fit_from_distances(&self, dist: &[f64], n: usize) -> Result<PamResult, ClusterError> {
        self.fit_from_distances_observed(dist, n, &td_obs::Observer::disabled())
    }

    /// [`Pam::fit_from_distances`] with instrumentation: bumps
    /// [`td_obs::Counter::PamIterations`] by the SWAP rounds performed.
    /// Observation never alters the fit.
    ///
    /// # Panics
    /// Panics if `dist.len() != n * n`.
    pub fn fit_from_distances_observed(
        &self,
        dist: &[f64],
        n: usize,
        observer: &td_obs::Observer,
    ) -> Result<PamResult, ClusterError> {
        assert_eq!(dist.len(), n * n, "distance matrix must be n×n");
        let k = self.config.k;
        if k == 0 {
            return Err(ClusterError::ZeroK);
        }
        if n == 0 {
            return Err(ClusterError::EmptyInput);
        }
        if k > n {
            return Err(ClusterError::TooFewObservations { k, n });
        }
        if self.config.max_iterations == 0 {
            return Err(ClusterError::ZeroIterationCap);
        }
        let d = |a: usize, b: usize| dist[a * n + b];

        // BUILD: first medoid minimizes total distance; each next medoid
        // maximizes cost reduction.
        let mut medoids: Vec<usize> = Vec::with_capacity(k);
        let first = (0..n)
            .min_by(|&a, &b| {
                let ca: f64 = (0..n).map(|j| d(a, j)).sum();
                let cb: f64 = (0..n).map(|j| d(b, j)).sum();
                ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
            })
            .expect("n > 0");
        medoids.push(first);
        let mut nearest: Vec<f64> = (0..n).map(|j| d(first, j)).collect();
        while medoids.len() < k {
            let mut best_gain = f64::NEG_INFINITY;
            let mut best_i = usize::MAX;
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let gain: f64 = (0..n)
                    .map(|j| (nearest[j] - d(cand, j)).max(0.0))
                    .sum();
                if gain > best_gain {
                    best_gain = gain;
                    best_i = cand;
                }
            }
            if best_i == usize::MAX {
                // All points already medoids (duplicates); pick arbitrary.
                let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
                let mut pool: Vec<usize> =
                    (0..n).filter(|i| !medoids.contains(i)).collect();
                pool.shuffle(&mut rng);
                best_i = pool.first().copied().unwrap_or(0);
            }
            medoids.push(best_i);
            for j in 0..n {
                nearest[j] = nearest[j].min(d(best_i, j));
            }
        }

        // SWAP: steepest descent over (medoid, non-medoid) exchanges.
        let cost_of = |meds: &[usize]| -> f64 {
            (0..n)
                .map(|j| {
                    meds.iter()
                        .map(|&m| d(m, j))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum()
        };
        let mut cost = cost_of(&medoids);
        let mut iterations = 0u32;
        loop {
            iterations += 1;
            // Evaluate every (medoid, candidate) exchange in parallel,
            // then pick the winner with a sequential scan in the same
            // (mi, cand) order the old nested loop used — same strict
            // `<` rule, so the chosen swap is identical at any thread
            // count.
            let swaps: Vec<(usize, usize)> = (0..k)
                .flat_map(|mi| (0..n).map(move |cand| (mi, cand)))
                .filter(|&(_, cand)| !medoids.contains(&cand))
                .collect();
            let medoids_ref = &medoids;
            let costs: Vec<f64> = swaps
                .par_iter()
                .map(|&(mi, cand)| {
                    let mut trial = medoids_ref.clone();
                    trial[mi] = cand;
                    cost_of(&trial)
                })
                .collect();
            let mut best_swap: Option<(usize, usize, f64)> = None;
            for (&(mi, cand), &c) in swaps.iter().zip(&costs) {
                if c + 1e-12 < cost && best_swap.is_none_or(|(_, _, bc)| c < bc) {
                    best_swap = Some((mi, cand, c));
                }
            }
            match best_swap {
                Some((mi, cand, c)) => {
                    medoids[mi] = cand;
                    cost = c;
                }
                None => break,
            }
            if iterations >= self.config.max_iterations {
                break;
            }
        }

        let assignments: Vec<usize> = (0..n)
            .map(|j| {
                medoids
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        d(a, j).partial_cmp(&d(b, j)).unwrap().then(a.cmp(&b))
                    })
                    .map(|(ci, _)| ci)
                    .expect("k > 0")
            })
            .collect();

        observer.incr(td_obs::Counter::PamIterations, iterations as u64);
        Ok(PamResult {
            assignments,
            medoids,
            cost,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Euclidean, Hamming};

    fn blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0],
            vec![0.2],
            vec![0.4],
            vec![10.0],
            vec![10.2],
            vec![10.4],
        ])
    }

    #[test]
    fn separates_blobs() {
        let r = Pam::new(PamConfig::with_k(2)).fit(&blobs(), &Euclidean).unwrap();
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[0], r.assignments[2]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_ne!(r.assignments[0], r.assignments[3]);
        // Medoids are the middle points of each blob.
        let mut meds = r.medoids.clone();
        meds.sort_unstable();
        assert_eq!(meds, vec![1, 4]);
    }

    #[test]
    fn zero_iteration_cap_is_rejected() {
        let cfg = PamConfig {
            max_iterations: 0,
            ..PamConfig::with_k(2)
        };
        assert!(matches!(
            Pam::new(cfg).fit(&blobs(), &Euclidean),
            Err(ClusterError::ZeroIterationCap)
        ));
    }

    #[test]
    fn medoids_are_observations() {
        let data = blobs();
        let r = Pam::new(PamConfig::with_k(3)).fit(&data, &Euclidean).unwrap();
        assert_eq!(r.medoids.len(), 3);
        for &m in &r.medoids {
            assert!(m < data.n_rows());
        }
        // Each medoid is assigned to its own cluster.
        for (ci, &m) in r.medoids.iter().enumerate() {
            assert_eq!(r.assignments[m], ci);
        }
    }

    #[test]
    fn hamming_binary_clustering() {
        let data = Matrix::from_rows(&[
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0, 1.0],
        ]);
        let r = Pam::new(PamConfig::with_k(2)).fit(&data, &Hamming).unwrap();
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[2], r.assignments[3]);
        assert_ne!(r.assignments[0], r.assignments[2]);
    }

    #[test]
    fn errors_mirror_kmeans() {
        let data = blobs();
        assert!(matches!(
            Pam::new(PamConfig::with_k(0)).fit(&data, &Euclidean),
            Err(ClusterError::ZeroK)
        ));
        assert!(matches!(
            Pam::new(PamConfig::with_k(99)).fit(&data, &Euclidean),
            Err(ClusterError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let data = blobs();
        let r1 = Pam::new(PamConfig::with_k(2)).fit(&data, &Euclidean).unwrap();
        let r2 = Pam::new(PamConfig::with_k(2)).fit(&data, &Euclidean).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.medoids, r2.medoids);
    }

    #[test]
    fn duplicates_do_not_break_build() {
        let data = Matrix::from_rows(&vec![vec![1.0]; 4]);
        let r = Pam::new(PamConfig::with_k(2)).fit(&data, &Euclidean).unwrap();
        assert_eq!(r.assignments.len(), 4);
        assert!(r.cost < 1e-12);
    }

    #[test]
    fn distance_matrix_entry_point_matches_feature_fit() {
        let data = blobs();
        let n = data.n_rows();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                dist[i * n + j] = Euclidean.distance(data.row(i), data.row(j));
            }
        }
        let pam = Pam::new(PamConfig::with_k(2));
        let a = pam.fit(&data, &Euclidean).unwrap();
        let b = pam.fit_from_distances(&dist, n).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.medoids, b.medoids);
        assert!((a.cost - b.cost).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn distance_matrix_size_is_checked() {
        let _ = Pam::new(PamConfig::with_k(1)).fit_from_distances(&[0.0; 3], 2);
    }
}
