//! The silhouette index (Rousseeuw 1987), in both the standard global
//! form and the macro-averaged form the TD-AC paper uses (Eqs. 5–7).

use rayon::prelude::*;

use crate::bitmatrix::BitMatrix;
use crate::distance::{Metric, Rows};
use crate::matrix::Matrix;

/// How a silhouette pass reads pairwise distances: the packed popcount
/// kernel when the caller already holds packed rows and the metric
/// counts bits, the dense metric loop otherwise. Both produce exact
/// integer counts on binary data, so the choice never changes a bit of
/// the output.
#[derive(Clone, Copy)]
enum Access<'a> {
    Packed(&'a BitMatrix),
    Dense(&'a Matrix),
}

impl Access<'_> {
    #[inline]
    fn distance(&self, metric: &dyn Metric, i: usize, j: usize) -> f64 {
        match self {
            Access::Packed(b) => b.hamming(i, j) as f64,
            Access::Dense(m) => metric.distance(m.row(i), m.row(j)),
        }
    }
}

/// Per-sample silhouette coefficients.
///
/// For sample `i` in cluster `g`:
/// `α(i)` is its mean distance to the other members of `g` and `β(i)`
/// the smallest mean distance to any other cluster; the coefficient is
/// `(β - α) / max(α, β)` (paper Eq. 5). Samples in singleton clusters
/// get `0` (Rousseeuw's convention — nothing to cohere with), as do
/// samples where `max(α, β) = 0`.
///
/// Accepts any [`Rows`] representation; packed rows use the popcount
/// kernel when the metric counts bits and are densified otherwise.
pub fn silhouette_samples<'a>(
    data: impl Into<Rows<'a>>,
    assignments: &[usize],
    metric: &dyn Metric,
) -> Vec<f64> {
    let rows = data.into();
    let n = rows.n_rows();
    assert_eq!(assignments.len(), n, "one assignment per observation");
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let sizes = {
        let mut s = vec![0usize; k];
        for &c in assignments {
            s[c] += 1;
        }
        s
    };

    let densified;
    let access = match rows {
        Rows::Packed(b) | Rows::Dual { packed: b, .. } if metric.counts_bits_on_binary() => {
            Access::Packed(b)
        }
        Rows::Dense(m) | Rows::Dual { dense: m, .. } => Access::Dense(m),
        Rows::Packed(b) => {
            densified = b.to_dense();
            Access::Dense(&densified)
        }
    };

    // Samples are independent: each one scans all n others, so the work
    // parallelizes over i with a per-worker `mean_to` buffer. The inner j
    // loop keeps its sequential order, so every coefficient is
    // bit-identical at any thread count.
    let sizes = &sizes;
    (0..n)
        .into_par_iter()
        .map(|i| {
            let ci = assignments[i];
            if sizes[ci] <= 1 {
                return 0.0;
            }
            // Mean distance from i to every cluster, in one pass.
            let mut mean_to = vec![0.0f64; k];
            for j in 0..n {
                if i != j {
                    mean_to[assignments[j]] += access.distance(metric, i, j);
                }
            }
            let alpha = mean_to[ci] / (sizes[ci] - 1) as f64;
            let mut beta = f64::INFINITY;
            for (c, &sz) in sizes.iter().enumerate() {
                if c != ci && sz > 0 {
                    beta = beta.min(mean_to[c] / sz as f64);
                }
            }
            if !beta.is_finite() {
                return 0.0; // only one non-empty cluster
            }
            let denom = alpha.max(beta);
            if denom == 0.0 { 0.0 } else { (beta - alpha) / denom }
        })
        .collect()
}

/// Standard silhouette score: the mean of all per-sample coefficients.
pub fn silhouette_score<'a>(
    data: impl Into<Rows<'a>>,
    assignments: &[usize],
    metric: &dyn Metric,
) -> f64 {
    let coeffs = silhouette_samples(data.into(), assignments, metric);
    if coeffs.is_empty() {
        return 0.0;
    }
    coeffs.iter().sum::<f64>() / coeffs.len() as f64
}

/// The paper's partition silhouette (Eqs. 6–7): first average per
/// cluster, then average the cluster coefficients — a macro average that
/// weighs small clusters as much as large ones (this is what makes TD-AC
/// prefer structurally homogeneous partitions over size-dominated ones).
pub fn silhouette_paper<'a>(
    data: impl Into<Rows<'a>>,
    assignments: &[usize],
    metric: &dyn Metric,
) -> f64 {
    let coeffs = silhouette_samples(data.into(), assignments, metric);
    macro_average(&coeffs, assignments)
}

/// Per-sample silhouette coefficients computed from a precomputed
/// row-major `n×n` distance matrix (used by the missing-data-aware TD-AC
/// variant, whose masked distance has no feature-vector form).
pub fn silhouette_samples_dist(dist: &[f64], n: usize, assignments: &[usize]) -> Vec<f64> {
    assert_eq!(dist.len(), n * n, "distance matrix must be n×n");
    assert_eq!(assignments.len(), n, "one assignment per observation");
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let sizes = {
        let mut s = vec![0usize; k];
        for &c in assignments {
            s[c] += 1;
        }
        s
    };
    // Same parallel-over-samples shape as `silhouette_samples`, reading
    // the precomputed matrix instead of re-evaluating the metric.
    let sizes = &sizes;
    (0..n)
        .into_par_iter()
        .map(|i| {
            let ci = assignments[i];
            if sizes[ci] <= 1 {
                return 0.0;
            }
            let mut mean_to = vec![0.0f64; k];
            for j in 0..n {
                if i != j {
                    mean_to[assignments[j]] += dist[i * n + j];
                }
            }
            let alpha = mean_to[ci] / (sizes[ci] - 1) as f64;
            let mut beta = f64::INFINITY;
            for (c, &sz) in sizes.iter().enumerate() {
                if c != ci && sz > 0 {
                    beta = beta.min(mean_to[c] / sz as f64);
                }
            }
            if !beta.is_finite() {
                return 0.0;
            }
            let denom = alpha.max(beta);
            if denom == 0.0 { 0.0 } else { (beta - alpha) / denom }
        })
        .collect()
}

/// The paper's macro-averaged partition silhouette over a precomputed
/// distance matrix.
pub fn silhouette_paper_dist(dist: &[f64], n: usize, assignments: &[usize]) -> f64 {
    let coeffs = silhouette_samples_dist(dist, n, assignments);
    macro_average(&coeffs, assignments)
}

/// Eqs. 6–7: per-cluster means, then the mean of those.
fn macro_average(coeffs: &[f64], assignments: &[usize]) -> f64 {
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    if k == 0 {
        return 0.0;
    }
    let mut sums = vec![0.0f64; k];
    let mut counts = vec![0usize; k];
    for (i, &c) in assignments.iter().enumerate() {
        sums[c] += coeffs[i];
        counts[c] += 1;
    }
    let mut total = 0.0;
    let mut nonempty = 0usize;
    for c in 0..k {
        if counts[c] > 0 {
            total += sums[c] / counts[c] as f64;
            nonempty += 1;
        }
    }
    if nonempty == 0 {
        0.0
    } else {
        total / nonempty as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Euclidean, Hamming};

    fn blobs() -> (Matrix, Vec<usize>) {
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![10.0],
            vec![10.1],
            vec![10.2],
        ]);
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let (data, asg) = blobs();
        let s = silhouette_score(&data, &asg, &Euclidean);
        assert!(s > 0.95, "score {s}");
        let p = silhouette_paper(&data, &asg, &Euclidean);
        assert!(p > 0.95, "paper score {p}");
    }

    #[test]
    fn shuffled_labels_score_low() {
        let (data, _) = blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        let s = silhouette_score(&data, &bad, &Euclidean);
        assert!(s < 0.0, "mixing blobs must be penalized: {s}");
    }

    #[test]
    fn coefficients_are_bounded() {
        let (data, asg) = blobs();
        for c in silhouette_samples(&data, &asg, &Euclidean) {
            assert!((-1.0..=1.0).contains(&c), "coefficient {c}");
        }
    }

    #[test]
    fn singleton_cluster_coefficient_is_zero() {
        let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![99.0]]);
        let asg = vec![0, 0, 1];
        let coeffs = silhouette_samples(&data, &asg, &Euclidean);
        assert_eq!(coeffs[2], 0.0);
        assert!(coeffs[0] > 0.9);
    }

    #[test]
    fn single_cluster_scores_zero() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let asg = vec![0, 0, 0];
        assert_eq!(silhouette_score(&data, &asg, &Euclidean), 0.0);
        assert_eq!(silhouette_paper(&data, &asg, &Euclidean), 0.0);
    }

    #[test]
    fn macro_average_differs_from_micro_on_skewed_sizes() {
        // One tight big cluster, one loose small one: macro weighs them
        // equally, micro weighs by membership.
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![0.01],
            vec![0.02],
            vec![0.03],
            vec![5.0],
            vec![9.0],
        ]);
        let asg = vec![0, 0, 0, 0, 1, 1];
        let micro = silhouette_score(&data, &asg, &Euclidean);
        let macro_ = silhouette_paper(&data, &asg, &Euclidean);
        assert!((micro - macro_).abs() > 1e-3, "micro {micro} vs macro {macro_}");
    }

    #[test]
    fn hamming_on_binary_vectors() {
        let data = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let asg = vec![0, 0, 1, 1];
        let s = silhouette_score(&data, &asg, &Hamming);
        assert!((s - 1.0).abs() < 1e-12, "perfect binary split: {s}");
    }

    #[test]
    fn hand_computed_two_point_clusters() {
        // Points 0,1 in cluster 0 at distance 1; point 2 alone far away —
        // wait, singleton gets 0. Use 2+2.
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
        let asg = vec![0, 0, 1, 1];
        let c = silhouette_samples(&data, &asg, &Euclidean);
        // For point 0: α = 1, β = (10 + 11)/2 = 10.5 → (10.5-1)/10.5.
        assert!((c[0] - (10.5 - 1.0) / 10.5).abs() < 1e-12);
        // For point 1: α = 1, β = (9 + 10)/2 = 9.5 → 8.5/9.5.
        assert!((c[1] - 8.5 / 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one assignment per observation")]
    fn mismatched_assignment_length_panics() {
        let data = Matrix::from_rows(&[vec![0.0]]);
        silhouette_samples(&data, &[0, 1], &Euclidean);
    }

    #[test]
    fn distance_matrix_variant_matches_feature_variant() {
        let (data, asg) = blobs();
        let n = data.n_rows();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                dist[i * n + j] = Euclidean.distance(data.row(i), data.row(j));
            }
        }
        let from_features = silhouette_samples(&data, &asg, &Euclidean);
        let from_dist = silhouette_samples_dist(&dist, n, &asg);
        for (a, b) in from_features.iter().zip(&from_dist) {
            assert!((a - b).abs() < 1e-12);
        }
        let p1 = silhouette_paper(&data, &asg, &Euclidean);
        let p2 = silhouette_paper_dist(&dist, n, &asg);
        assert!((p1 - p2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn dist_variant_checks_matrix_size() {
        silhouette_samples_dist(&[0.0; 3], 2, &[0, 1]);
    }

    #[test]
    fn packed_rows_give_bit_identical_coefficients() {
        let data = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![0.0, 1.0, 1.0, 1.0],
        ]);
        let bits = crate::BitMatrix::pack(&data).unwrap();
        let asg = vec![0, 0, 1, 1];
        let dense = silhouette_samples(&data, &asg, &Hamming);
        let packed = silhouette_samples(&bits, &asg, &Hamming);
        for (a, b) in dense.iter().zip(&packed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A non-bit metric densifies packed rows instead of mis-counting.
        let dense_e = silhouette_samples(&data, &asg, &Euclidean);
        let packed_e = silhouette_samples(&bits, &asg, &Euclidean);
        for (a, b) in dense_e.iter().zip(&packed_e) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
