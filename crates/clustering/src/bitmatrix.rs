//! Bit-packed binary matrices and the popcount Hamming kernels.
//!
//! TD-AC's hot path is the pairwise Hamming distance matrix over 0/1
//! attribute truth vectors (paper Eq. 2). On the dense [`Matrix`] that
//! costs an `O(d)` float loop per pair; packing each row into `u64`
//! words turns it into `⌈d/64⌉` XOR + `count_ones` word operations —
//! and because the distances are exact small-integer counts (every
//! intermediate sum is ≤ 2⁵³ and exactly representable), the packed
//! kernel is **bit-identical** to the dense `f64` path, not merely
//! close. See `docs/KERNELS.md` for the dispatch rules.
//!
//! The inner loops are written over 4-word chunks with independent
//! accumulators so the compiler can autovectorize them; no SIMD
//! intrinsics or non-vendored dependencies are involved.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Bits per packed word.
pub const WORD_BITS: usize = 64;

/// Which distance kernel `pairwise_distances` may use.
///
/// The packed kernel applies only when the data is binary (packable)
/// and the metric counts bit disagreements on 0/1 vectors
/// ([`crate::Metric::counts_bits_on_binary`]); outside that envelope
/// every policy falls back to the dense `f64` path. Results are
/// bit-identical either way — the policy is a performance knob and a
/// pin for parity tests, never a semantics switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelPolicy {
    /// Use the packed kernel whenever it applies (the default).
    #[default]
    Auto,
    /// Never pack; always run the dense `f64` kernel. Exists so parity
    /// gates can pin the reference path.
    Dense,
    /// Use the packed kernel whenever representable (today identical to
    /// `Auto`; `Auto` is free to grow heuristics, `Packed` is not).
    Packed,
}

/// A binary matrix with rows packed LSB-first into `u64` words, plus an
/// optional validity mask of the same shape for masked/ablation runs.
///
/// Column `j` of row `i` lives at bit `j % 64` of word `j / 64` of that
/// row's strip; bits beyond `n_cols` in the last word are always zero
/// (an invariant every constructor and setter maintains, so the XOR
/// kernels never need a tail mask).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    /// Validity words (`1` = coordinate observed), or `None` when every
    /// coordinate counts. Same layout as `bits`.
    mask: Option<Vec<u64>>,
}

impl BitMatrix {
    /// A `rows × cols` all-zero matrix with no validity mask.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS);
        Self {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
            mask: None,
        }
    }

    /// A `rows × cols` all-zero matrix with an all-unobserved validity
    /// mask (use [`BitMatrix::set_observed`] while scattering claims).
    pub fn zeros_masked(rows: usize, cols: usize) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.mask = Some(vec![0; rows * m.words_per_row]);
        m
    }

    /// Packs a dense matrix whose entries are all exactly `0.0` or
    /// `1.0`; returns `None` as soon as any entry is anything else
    /// (the caller then stays on the dense path).
    pub fn pack(dense: &Matrix) -> Option<Self> {
        let mut m = Self::zeros(dense.n_rows(), dense.n_cols());
        for (i, row) in dense.iter_rows().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v == 1.0 {
                    m.set_bit(i, j, true);
                } else if v != 0.0 {
                    return None;
                }
            }
        }
        Some(m)
    }

    /// Packs a dense 0/1 `values` matrix together with its 0/1
    /// observation `mask` (same shape). Returns `None` if either matrix
    /// has a non-binary entry or the shapes differ.
    pub fn pack_masked(values: &Matrix, mask: &Matrix) -> Option<Self> {
        if values.n_rows() != mask.n_rows() || values.n_cols() != mask.n_cols() {
            return None;
        }
        let mut m = Self::zeros_masked(values.n_rows(), values.n_cols());
        for i in 0..values.n_rows() {
            for (j, (&v, &ob)) in values.row(i).iter().zip(mask.row(i)).enumerate() {
                match ob {
                    1.0 => m.set_observed(i, j),
                    0.0 => {}
                    _ => return None,
                }
                match v {
                    1.0 => m.set_bit(i, j, true),
                    0.0 => {}
                    _ => return None,
                }
            }
        }
        Some(m)
    }

    /// Reassembles a matrix from raw word buffers in the exact layout
    /// [`BitMatrix::words`] exposes — the zero-copy load path of the
    /// `td-store` binary format. Returns `None` unless the buffers have
    /// exactly `rows × ⌈cols/64⌉` words **and** every row's tail bits
    /// beyond `cols` are zero (the invariant the XOR kernels rely on);
    /// a corrupt buffer is rejected, never repaired.
    pub fn from_words(
        rows: usize,
        cols: usize,
        bits: Vec<u64>,
        mask: Option<Vec<u64>>,
    ) -> Option<Self> {
        let words_per_row = cols.div_ceil(WORD_BITS);
        let expect = rows.checked_mul(words_per_row)?;
        if bits.len() != expect {
            return None;
        }
        if let Some(m) = &mask {
            if m.len() != expect {
                return None;
            }
        }
        let live = cols % WORD_BITS;
        if live != 0 && words_per_row > 0 {
            let dead = !((1u64 << live) - 1);
            for i in 0..rows {
                let last = i * words_per_row + words_per_row - 1;
                if bits[last] & dead != 0 {
                    return None;
                }
                if let Some(m) = &mask {
                    if m[last] & dead != 0 {
                        return None;
                    }
                }
            }
        }
        Some(Self {
            rows,
            cols,
            words_per_row,
            bits,
            mask,
        })
    }

    /// The whole packed word buffer, rows concatenated
    /// (`rows × words_per_row` words) — the serialization counterpart of
    /// [`BitMatrix::from_words`].
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// The whole validity-mask word buffer (same layout as
    /// [`BitMatrix::words`]), when a mask is attached.
    #[inline]
    pub fn mask_words_all(&self) -> Option<&[u64]> {
        self.mask.as_deref()
    }

    /// Number of rows (observations).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bit dimensions).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// `u64` words per packed row (`⌈n_cols / 64⌉`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Whether a validity mask is attached.
    pub fn has_mask(&self) -> bool {
        self.mask.is_some()
    }

    /// Sets bit `(i, j)`.
    ///
    /// # Panics
    /// Panics if `j >= n_cols` (which would corrupt the zero-tail
    /// invariant) or `i >= n_rows`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, j: usize, on: bool) {
        assert!(i < self.rows && j < self.cols, "bit ({i}, {j}) out of range");
        let w = i * self.words_per_row + j / WORD_BITS;
        let b = 1u64 << (j % WORD_BITS);
        if on {
            self.bits[w] |= b;
        } else {
            self.bits[w] &= !b;
        }
    }

    /// Reads bit `(i, j)`.
    #[inline]
    pub fn get_bit(&self, i: usize, j: usize) -> bool {
        assert!(i < self.rows && j < self.cols, "bit ({i}, {j}) out of range");
        let w = i * self.words_per_row + j / WORD_BITS;
        self.bits[w] >> (j % WORD_BITS) & 1 == 1
    }

    /// Marks coordinate `(i, j)` observed in the validity mask.
    ///
    /// # Panics
    /// Panics if the matrix has no mask (construct with
    /// [`BitMatrix::zeros_masked`] or [`BitMatrix::pack_masked`]) or the
    /// coordinate is out of range.
    #[inline]
    pub fn set_observed(&mut self, i: usize, j: usize) {
        assert!(i < self.rows && j < self.cols, "bit ({i}, {j}) out of range");
        let w = i * self.words_per_row + j / WORD_BITS;
        let mask = self.mask.as_mut().expect("BitMatrix has no validity mask");
        mask[w] |= 1u64 << (j % WORD_BITS);
    }

    /// The packed words of row `i`.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// The validity words of row `i`, when a mask is attached.
    #[inline]
    pub fn mask_words(&self, i: usize) -> Option<&[u64]> {
        let m = self.mask.as_ref()?;
        Some(&m[i * self.words_per_row..(i + 1) * self.words_per_row])
    }

    /// Hamming distance between rows `i` and `j`: the exact number of
    /// disagreeing bit positions (the validity mask, if any, is
    /// ignored — see [`BitMatrix::masked_counts`] for the masked form).
    #[inline]
    pub fn hamming(&self, i: usize, j: usize) -> u64 {
        hamming_words(self.row_words(i), self.row_words(j))
    }

    /// Masked disagreement counts between rows `i` and `j`:
    /// `(disagreements, co_observed)` over the coordinates both rows'
    /// validity masks cover.
    ///
    /// # Panics
    /// Panics if the matrix has no validity mask.
    #[inline]
    pub fn masked_counts(&self, i: usize, j: usize) -> (u64, u64) {
        let (mi, mj) = (
            self.mask_words(i).expect("BitMatrix has no validity mask"),
            self.mask_words(j).expect("BitMatrix has no validity mask"),
        );
        masked_hamming_words(self.row_words(i), self.row_words(j), mi, mj)
    }

    /// Appends `extra` all-zero columns to every row, re-laying-out the
    /// word strips when `words_per_row` grows. Existing bits keep their
    /// positions and the tail-zero invariant holds for the new width
    /// (new columns are zero, and old tail bits were already zero). The
    /// validity mask, if any, is re-laid-out identically (new columns
    /// unobserved).
    pub fn append_cols(&mut self, extra: usize) {
        if extra == 0 {
            return;
        }
        let new_cols = self.cols + extra;
        let new_words = new_cols.div_ceil(WORD_BITS);
        if new_words != self.words_per_row {
            self.bits = relayout(&self.bits, self.rows, self.words_per_row, new_words);
            if let Some(mask) = &self.mask {
                self.mask = Some(relayout(mask, self.rows, self.words_per_row, new_words));
            }
            self.words_per_row = new_words;
        }
        self.cols = new_cols;
    }

    /// Appends `extra` all-zero rows (all-unobserved when a validity
    /// mask is attached).
    pub fn append_zero_rows(&mut self, extra: usize) {
        self.rows += extra;
        self.bits.resize(self.rows * self.words_per_row, 0);
        if let Some(mask) = &mut self.mask {
            mask.resize(self.rows * self.words_per_row, 0);
        }
    }

    /// Clears every bit of row `i` (the validity mask, if any, is left
    /// untouched — callers rescattering a row re-mark observations
    /// themselves).
    pub fn clear_row(&mut self, i: usize) {
        assert!(i < self.rows, "row {i} out of range");
        self.bits[i * self.words_per_row..(i + 1) * self.words_per_row].fill(0);
    }

    /// Unpacks to a dense `f64` matrix (values only; the validity mask
    /// is not representable in a plain [`Matrix`]).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                if self.get_bit(i, j) {
                    m.set(i, j, 1.0);
                }
            }
        }
        m
    }
}

/// Copies row strips from an `old_words`-per-row layout into a wider
/// `new_words`-per-row buffer, zero-filling the new trailing words.
fn relayout(words: &[u64], rows: usize, old_words: usize, new_words: usize) -> Vec<u64> {
    let mut out = vec![0u64; rows * new_words];
    for i in 0..rows {
        out[i * new_words..i * new_words + old_words]
            .copy_from_slice(&words[i * old_words..(i + 1) * old_words]);
    }
    out
}

/// XOR + popcount over two equal-length word strips, chunked by four
/// words with independent accumulators so the loop autovectorizes.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let (ca, ra) = a.split_at(a.len() & !3);
    let (cb, rb) = b.split_at(ca.len());
    let mut acc = [0u64; 4];
    for (wa, wb) in ca.chunks_exact(4).zip(cb.chunks_exact(4)) {
        acc[0] += u64::from((wa[0] ^ wb[0]).count_ones());
        acc[1] += u64::from((wa[1] ^ wb[1]).count_ones());
        acc[2] += u64::from((wa[2] ^ wb[2]).count_ones());
        acc[3] += u64::from((wa[3] ^ wb[3]).count_ones());
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for (wa, wb) in ra.iter().zip(rb) {
        total += u64::from((wa ^ wb).count_ones());
    }
    total
}

/// Masked variant of [`hamming_words`]: returns
/// `(popcount((a ^ b) & ma & mb), popcount(ma & mb))` — disagreements
/// and co-observed coordinates in one pass.
#[inline]
pub fn masked_hamming_words(a: &[u64], b: &[u64], ma: &[u64], mb: &[u64]) -> (u64, u64) {
    debug_assert!(a.len() == b.len() && a.len() == ma.len() && a.len() == mb.len());
    let mut diff = 0u64;
    let mut co = 0u64;
    for i in 0..a.len() {
        let both = ma[i] & mb[i];
        co += u64::from(both.count_ones());
        diff += u64::from(((a[i] ^ b[i]) & both).count_ones());
    }
    (diff, co)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips_through_dense() {
        for cols in [1usize, 7, 63, 64, 65, 130] {
            let rows: Vec<Vec<f64>> = (0..5)
                .map(|r| (0..cols).map(|c| f64::from(u8::from((r * 13 + c * 7) % 3 == 0))).collect())
                .collect();
            let dense = Matrix::from_rows(&rows);
            let packed = BitMatrix::pack(&dense).expect("binary input packs");
            assert_eq!(packed.n_rows(), 5);
            assert_eq!(packed.n_cols(), cols);
            assert_eq!(packed.words_per_row(), cols.div_ceil(64));
            assert_eq!(packed.to_dense(), dense, "cols = {cols}");
        }
    }

    #[test]
    fn pack_rejects_non_binary_values() {
        assert!(BitMatrix::pack(&Matrix::from_rows(&[vec![0.0, 0.5]])).is_none());
        assert!(BitMatrix::pack(&Matrix::from_rows(&[vec![-1.0]])).is_none());
        assert!(BitMatrix::pack(&Matrix::from_rows(&[vec![2.0]])).is_none());
    }

    #[test]
    fn hamming_counts_disagreements_across_word_boundaries() {
        for cols in [63usize, 64, 65, 200] {
            let mut m = BitMatrix::zeros(2, cols);
            // Row 0 has every third bit set, row 1 every fourth.
            let mut expect = 0u64;
            for j in 0..cols {
                let a = j % 3 == 0;
                let b = j % 4 == 0;
                m.set_bit(0, j, a);
                m.set_bit(1, j, b);
                expect += u64::from(a != b);
            }
            assert_eq!(m.hamming(0, 1), expect, "cols = {cols}");
            assert_eq!(m.hamming(1, 0), expect);
            assert_eq!(m.hamming(0, 0), 0);
        }
    }

    #[test]
    fn tail_bits_stay_zero() {
        // 65 columns: the second word has 63 dead bits. Setting and
        // clearing the last live column must not disturb them.
        let mut m = BitMatrix::zeros(1, 65);
        m.set_bit(0, 64, true);
        assert_eq!(m.row_words(0)[1], 1);
        m.set_bit(0, 64, false);
        assert_eq!(m.row_words(0)[1], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        BitMatrix::zeros(1, 10).set_bit(0, 10, true);
    }

    #[test]
    fn masked_counts_cover_only_co_observed_coordinates() {
        let mut m = BitMatrix::zeros_masked(2, 70);
        assert!(m.has_mask());
        // Coordinates 0..40 observed on row 0, 20..70 on row 1 — overlap
        // is 20..40. Disagreements planted at 25 and 66 (outside).
        for j in 0..40 {
            m.set_observed(0, j);
        }
        for j in 20..70 {
            m.set_observed(1, j);
        }
        m.set_bit(0, 25, true);
        m.set_bit(1, 66, true);
        let (diff, co) = m.masked_counts(0, 1);
        assert_eq!(co, 20);
        assert_eq!(diff, 1, "only the disagreement at 25 is co-observed");
    }

    #[test]
    fn all_missing_rows_have_zero_co_observation() {
        let mut m = BitMatrix::zeros_masked(2, 130);
        for j in 0..130 {
            m.set_observed(0, j);
        }
        // Row 1 never observed anything.
        let (diff, co) = m.masked_counts(0, 1);
        assert_eq!((diff, co), (0, 0));
    }

    #[test]
    fn pack_masked_matches_scatter_construction() {
        let values = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 0.0]]);
        let mask = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![1.0, 1.0, 1.0]]);
        let m = BitMatrix::pack_masked(&values, &mask).expect("binary inputs pack");
        let (diff, co) = m.masked_counts(0, 1);
        assert_eq!(co, 2);
        assert_eq!(diff, 2, "columns 0 and 1 disagree; column 2 is not co-observed");
        // Shape mismatch and fractional entries are rejected.
        assert!(BitMatrix::pack_masked(&values, &Matrix::zeros(2, 2)).is_none());
        let frac = Matrix::from_rows(&[vec![0.5, 0.0, 0.0], vec![0.0, 0.0, 0.0]]);
        assert!(BitMatrix::pack_masked(&frac, &mask).is_none());
    }

    #[test]
    fn append_cols_preserves_bits_across_word_growth() {
        for (cols, extra) in [(63usize, 1usize), (63, 2), (64, 1), (65, 64), (10, 0)] {
            let mut m = BitMatrix::zeros(3, cols);
            for j in (0..cols).step_by(3) {
                m.set_bit(1, j, true);
            }
            let before = m.to_dense();
            m.append_cols(extra);
            assert_eq!(m.n_cols(), cols + extra);
            assert_eq!(m.words_per_row(), (cols + extra).div_ceil(64));
            let after = m.to_dense();
            for i in 0..3 {
                assert_eq!(&after.row(i)[..cols], before.row(i), "cols={cols} extra={extra}");
                assert!(after.row(i)[cols..].iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn append_cols_preserves_mask_layout() {
        let mut m = BitMatrix::zeros_masked(2, 64);
        for j in 0..64 {
            m.set_observed(0, j);
        }
        m.set_bit(0, 5, true);
        m.set_bit(1, 5, true);
        m.append_cols(6);
        // Old co-observation untouched; new columns unobserved.
        for j in 0..64 {
            m.set_observed(1, j);
        }
        let (diff, co) = m.masked_counts(0, 1);
        assert_eq!((diff, co), (0, 64));
        // New columns are appendable after growth.
        m.set_observed(0, 69);
        m.set_observed(1, 69);
        m.set_bit(0, 69, true);
        let (diff, co) = m.masked_counts(0, 1);
        assert_eq!((diff, co), (1, 65));
    }

    #[test]
    fn append_zero_rows_and_clear_row() {
        let mut m = BitMatrix::zeros(1, 65);
        m.set_bit(0, 64, true);
        m.append_zero_rows(2);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.hamming(0, 1), 1);
        assert_eq!(m.hamming(1, 2), 0);
        m.clear_row(0);
        assert_eq!(m.hamming(0, 1), 0);
    }

    #[test]
    fn word_kernels_match_scalar_reference() {
        let a: Vec<u64> = (0..9).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)).collect();
        let b: Vec<u64> = (0..9).map(|i| 0xc2b2_ae3d_27d4_eb4fu64.wrapping_mul(i + 3)).collect();
        let scalar: u64 = a.iter().zip(&b).map(|(x, y)| u64::from((x ^ y).count_ones())).sum();
        assert_eq!(hamming_words(&a, &b), scalar);
        let ma = vec![u64::MAX; 9];
        let mb: Vec<u64> = (0..9).map(|i| 0x5555_5555_5555_5555u64.rotate_left(i)).collect();
        let (diff, co) = masked_hamming_words(&a, &b, &ma, &mb);
        let co_ref: u64 = mb.iter().map(|m| u64::from(m.count_ones())).sum();
        let diff_ref: u64 = a
            .iter()
            .zip(&b)
            .zip(&mb)
            .map(|((x, y), m)| u64::from(((x ^ y) & m).count_ones()))
            .sum();
        assert_eq!((diff, co), (diff_ref, co_ref));
    }

    #[test]
    fn kernel_policy_default_is_auto() {
        assert_eq!(KernelPolicy::default(), KernelPolicy::Auto);
    }
}
