//! Silhouette-guided selection of the number of clusters — the
//! `k ∈ [2, |A|-1]` sweep of TD-AC's Algorithm 1 (lines 6–18).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::distance::{pairwise_distances, Metric};
use crate::error::ClusterError;
use crate::kmeans::{KMeans, KMeansConfig, KMeansResult};
use crate::matrix::Matrix;
use crate::silhouette::silhouette_paper_dist;

/// The outcome of a k sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KSelection {
    /// The selected number of clusters.
    pub best_k: usize,
    /// The winning clustering.
    pub best_result: KMeansResult,
    /// The winning partition's silhouette value.
    pub best_silhouette: f64,
    /// Every `(k, silhouette)` evaluated, in sweep order — the raw series
    /// behind elbow/diagnostic plots.
    pub scores: Vec<(usize, f64)>,
}

/// Sweeps `k` over `k_range`, fitting k-means for each and scoring the
/// partition with the paper's macro-averaged silhouette under `metric`;
/// returns the best. Ties keep the *smallest* k (Algorithm 1's strict
/// `<` comparison), which also biases TD-AC toward coarser partitions —
/// coarser partitions give the base algorithm more evidence per group.
///
/// `base` supplies every parameter of the inner k-means except `k`.
pub fn select_k(
    data: &Matrix,
    k_range: std::ops::RangeInclusive<usize>,
    metric: &dyn Metric,
    base: KMeansConfig,
) -> Result<KSelection, ClusterError> {
    select_k_impl(data, k_range, metric, base, None)
}

/// [`select_k`] with cooperative cancellation: once `cancel` fires, the
/// remaining `k` values are skipped and the best among the already
/// evaluated ones is returned (its `scores` cover only the evaluated
/// `k`s). Cancelling before any `k` completes yields
/// [`ClusterError::Cancelled`] — there is no best-so-far to hand back.
pub fn select_k_cancellable(
    data: &Matrix,
    k_range: std::ops::RangeInclusive<usize>,
    metric: &dyn Metric,
    base: KMeansConfig,
    cancel: &td_obs::CancelToken,
) -> Result<KSelection, ClusterError> {
    select_k_impl(data, k_range, metric, base, Some(cancel))
}

fn select_k_impl(
    data: &Matrix,
    k_range: std::ops::RangeInclusive<usize>,
    metric: &dyn Metric,
    base: KMeansConfig,
    cancel: Option<&td_obs::CancelToken>,
) -> Result<KSelection, ClusterError> {
    if data.n_rows() == 0 {
        return Err(ClusterError::EmptyInput);
    }
    let lo = *k_range.start();
    let hi = (*k_range.end()).min(data.n_rows());
    if lo > hi || lo == 0 {
        return Err(ClusterError::EmptyKRange);
    }

    // The pairwise distance matrix is identical for every k, so it is
    // computed exactly once and shared across the sweep; each k then only
    // pays for its own k-means fit plus an O(n²) silhouette read. The
    // per-k evaluations are independent and run in parallel; the winner
    // is picked by a sequential scan in k order with the same strict `>`
    // the sequential sweep used (ties keep the smallest k).
    let n = data.n_rows();
    let dist = pairwise_distances(data, metric, &td_obs::Observer::disabled());
    let ks: Vec<usize> = (lo..=hi).collect();
    let evals: Vec<Result<Option<(KMeansResult, f64)>, ClusterError>> = ks
        .par_iter()
        .map(|&k| {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return Ok(None); // skipped, not failed
            }
            let result = KMeans::new(KMeansConfig { k, ..base }).fit(data)?;
            let sil = silhouette_paper_dist(&dist, n, &result.assignments);
            Ok(Some((result, sil)))
        })
        .collect();

    let mut best: Option<(usize, KMeansResult, f64)> = None;
    let mut scores = Vec::with_capacity(ks.len());
    for (&k, eval) in ks.iter().zip(evals) {
        let Some((result, sil)) = eval? else { continue };
        scores.push((k, sil));
        let better = match &best {
            None => true,
            Some((_, _, best_sil)) => sil > *best_sil,
        };
        if better {
            best = Some((k, result, sil));
        }
    }
    let Some((best_k, best_result, best_silhouette)) = best else {
        return Err(ClusterError::Cancelled);
    };
    Ok(KSelection {
        best_k,
        best_result,
        best_silhouette,
        scores,
    })
}

/// The outcome of an elbow sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElbowSelection {
    /// The k at the inertia curve's elbow.
    pub best_k: usize,
    /// The winning clustering.
    pub best_result: KMeansResult,
    /// Every `(k, inertia)` evaluated, in sweep order.
    pub inertias: Vec<(usize, f64)>,
}

/// Alternative model selection for the ablation study: the **elbow
/// method**. Fits k-means for every `k` in the range and picks the point
/// of maximum curvature of the inertia curve (the "kneedle" distance to
/// the chord between the endpoints). Unlike the silhouette it never
/// inspects cluster shape, only the optimization objective — cheaper but
/// blinder, which is exactly what the ablation quantifies.
pub fn select_k_elbow(
    data: &Matrix,
    k_range: std::ops::RangeInclusive<usize>,
    base: KMeansConfig,
) -> Result<ElbowSelection, ClusterError> {
    if data.n_rows() == 0 {
        return Err(ClusterError::EmptyInput);
    }
    let lo = *k_range.start();
    let hi = (*k_range.end()).min(data.n_rows());
    if lo > hi || lo == 0 {
        return Err(ClusterError::EmptyKRange);
    }

    // Per-k fits are independent; run them in parallel and re-collect in
    // k order (first error in k order wins, as in the sequential loop).
    let ks: Vec<usize> = (lo..=hi).collect();
    let results: Vec<Result<KMeansResult, ClusterError>> = ks
        .par_iter()
        .map(|&k| KMeans::new(KMeansConfig { k, ..base }).fit(data))
        .collect();
    let mut fits = Vec::with_capacity(ks.len());
    for (&k, result) in ks.iter().zip(results) {
        fits.push((k, result?));
    }
    let inertias: Vec<(usize, f64)> = fits.iter().map(|(k, r)| (*k, r.inertia)).collect();

    // Kneedle: distance of each point to the chord from first to last,
    // in (k, inertia) space normalized to the unit square.
    let best_idx = if inertias.len() <= 2 {
        0
    } else {
        let (k0, i0) = inertias[0];
        let (k1, i1) = *inertias.last().expect("non-empty");
        let k_span = (k1 - k0) as f64;
        let i_span = (i0 - i1).abs().max(1e-12);
        let mut best = 0usize;
        let mut best_d = f64::NEG_INFINITY;
        for (idx, &(k, inertia)) in inertias.iter().enumerate() {
            let x = (k - k0) as f64 / k_span;
            let y = (i0 - inertia) / i_span; // 0 at start, ~1 at end
            let d = y - x; // distance above the chord y = x
            if d > best_d {
                best_d = d;
                best = idx;
            }
        }
        best
    };

    let (best_k, best_result) = fits.swap_remove(best_idx);
    Ok(ElbowSelection {
        best_k,
        best_result,
        inertias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Euclidean, Hamming};

    fn three_blobs() -> Matrix {
        let mut rows = Vec::new();
        for center in [0.0, 50.0, 100.0] {
            for off in [0.0, 0.4, 0.8, 1.2] {
                rows.push(vec![center + off, center - off]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn finds_three_blobs() {
        let sel = select_k(&three_blobs(), 2..=8, &Euclidean, KMeansConfig::with_k(0)).unwrap();
        assert_eq!(sel.best_k, 3, "scores: {:?}", sel.scores);
        assert!(sel.best_silhouette > 0.9);
        assert_eq!(sel.scores.len(), 7);
    }

    #[test]
    fn range_is_clamped_to_n() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]);
        let sel = select_k(&data, 2..=50, &Euclidean, KMeansConfig::with_k(0)).unwrap();
        assert!(sel.best_k <= 3);
        assert_eq!(sel.scores.len(), 2); // k = 2, 3
    }

    #[test]
    fn errors_on_degenerate_ranges() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 3..=2;
        assert!(matches!(
            select_k(&data, inverted, &Euclidean, KMeansConfig::with_k(0)),
            Err(ClusterError::EmptyKRange)
        ));
        let empty = Matrix::from_rows(&[]);
        assert!(matches!(
            select_k(&empty, 2..=3, &Euclidean, KMeansConfig::with_k(0)),
            Err(ClusterError::EmptyInput)
        ));
    }

    #[test]
    fn tie_prefers_smaller_k() {
        // Identical points: silhouette 0 for every k; the sweep keeps the
        // first (smallest) k.
        let data = Matrix::from_rows(&vec![vec![1.0]; 6]);
        let sel = select_k(&data, 2..=5, &Euclidean, KMeansConfig::with_k(0)).unwrap();
        assert_eq!(sel.best_k, 2);
    }

    #[test]
    fn cancellable_sweep_matches_plain_when_never_cancelled() {
        let token = td_obs::CancelToken::new();
        let plain = select_k(&three_blobs(), 2..=8, &Euclidean, KMeansConfig::with_k(0)).unwrap();
        let c = select_k_cancellable(
            &three_blobs(),
            2..=8,
            &Euclidean,
            KMeansConfig::with_k(0),
            &token,
        )
        .unwrap();
        assert_eq!(c.best_k, plain.best_k);
        assert_eq!(c.best_silhouette.to_bits(), plain.best_silhouette.to_bits());
        assert_eq!(c.scores, plain.scores);
    }

    #[test]
    fn pre_cancelled_sweep_has_no_best_so_far() {
        let token = td_obs::CancelToken::new();
        token.cancel();
        assert!(matches!(
            select_k_cancellable(
                &three_blobs(),
                2..=8,
                &Euclidean,
                KMeansConfig::with_k(0),
                &token
            ),
            Err(ClusterError::Cancelled)
        ));
    }

    #[test]
    fn zero_iteration_cap_is_rejected() {
        let cfg = KMeansConfig {
            max_iterations: 0,
            ..KMeansConfig::with_k(2)
        };
        assert!(matches!(
            KMeans::new(cfg).fit(&three_blobs()),
            Err(ClusterError::ZeroIterationCap)
        ));
    }

    #[test]
    fn elbow_finds_three_blobs() {
        let sel = select_k_elbow(&three_blobs(), 1..=8, KMeansConfig::with_k(0)).unwrap();
        assert_eq!(sel.best_k, 3, "inertias: {:?}", sel.inertias);
        assert_eq!(sel.inertias.len(), 8);
        // Inertia is non-increasing in k.
        for w in sel.inertias.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    fn elbow_errors_match_silhouette_sweep() {
        let empty = Matrix::from_rows(&[]);
        assert!(matches!(
            select_k_elbow(&empty, 1..=3, KMeansConfig::with_k(0)),
            Err(ClusterError::EmptyInput)
        ));
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 3..=2;
        assert!(matches!(
            select_k_elbow(&data, inverted, KMeansConfig::with_k(0)),
            Err(ClusterError::EmptyKRange)
        ));
    }

    #[test]
    fn elbow_with_tiny_range_picks_first() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![9.0]]);
        let sel = select_k_elbow(&data, 2..=3, KMeansConfig::with_k(0)).unwrap();
        assert_eq!(sel.best_k, 2);
    }

    #[test]
    fn truth_vector_shape_from_paper_running_example() {
        // Table 2 of the paper: rows = attributes Q1..Q3 over 6
        // (object, source) columns; Q1 and Q3 are identical, Q2 differs.
        let data = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0],
            vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0],
        ]);
        let sel = select_k(&data, 2..=2, &Hamming, KMeansConfig::with_k(0)).unwrap();
        let asg = &sel.best_result.assignments;
        assert_eq!(asg[0], asg[2], "Q1 and Q3 are correlated");
        assert_ne!(asg[0], asg[1], "Q2 stands apart");
    }
}
