//! Agglomerative hierarchical clustering (single / complete / average
//! linkage), cut at a requested number of clusters.
//!
//! Second clustering ablation for TD-AC: hierarchical clustering needs no
//! `k` restarts and no centroid geometry, making it a natural alternative
//! for grouping attribute truth vectors. The naive `O(n³)` implementation
//! is more than fast enough for attribute counts in the hundreds.

use serde::{Deserialize, Serialize};

use crate::distance::{pairwise_distances, Metric};
use crate::error::ClusterError;
use crate::matrix::Matrix;

/// Inter-cluster distance definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// Agglomerative clusterer.
#[derive(Debug, Clone, Copy)]
pub struct Agglomerative {
    linkage: Linkage,
}

impl Agglomerative {
    /// A clusterer with the given linkage.
    pub fn new(linkage: Linkage) -> Self {
        Self { linkage }
    }

    /// The configured linkage.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Merges rows of `data` bottom-up under `metric` until exactly `k`
    /// clusters remain; returns one cluster index per observation
    /// (indices `0..k`, renumbered by first appearance).
    pub fn fit(
        &self,
        data: &Matrix,
        k: usize,
        metric: &dyn Metric,
    ) -> Result<Vec<usize>, ClusterError> {
        // Pairwise observation distances, precomputed (upper triangle in
        // parallel); the merge loop itself works off the matrix only.
        let dist = pairwise_distances(data, metric, &td_obs::Observer::disabled());
        self.fit_from_distances(&dist, data.n_rows(), k)
    }

    /// Like [`Agglomerative::fit`], but from a precomputed row-major
    /// `n×n` distance matrix — so the TD-AC k-sweep can reuse one shared
    /// matrix across every `k` instead of recomputing `O(n²·d)` distances
    /// per cut.
    ///
    /// # Panics
    /// Panics if `dist.len() != n * n`.
    pub fn fit_from_distances(
        &self,
        dist: &[f64],
        n: usize,
        k: usize,
    ) -> Result<Vec<usize>, ClusterError> {
        assert_eq!(dist.len(), n * n, "distance matrix must be n×n");
        if k == 0 {
            return Err(ClusterError::ZeroK);
        }
        if n == 0 {
            return Err(ClusterError::EmptyInput);
        }
        if k > n {
            return Err(ClusterError::TooFewObservations { k, n });
        }

        // Active clusters as member lists; start with singletons.
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

        let linkage_dist = |a: &[usize], b: &[usize]| -> f64 {
            let mut acc = match self.linkage {
                Linkage::Single => f64::INFINITY,
                Linkage::Complete => f64::NEG_INFINITY,
                Linkage::Average => 0.0,
            };
            for &i in a {
                for &j in b {
                    let d = dist[i * n + j];
                    match self.linkage {
                        Linkage::Single => acc = acc.min(d),
                        Linkage::Complete => acc = acc.max(d),
                        Linkage::Average => acc += d,
                    }
                }
            }
            if self.linkage == Linkage::Average {
                acc / (a.len() * b.len()) as f64
            } else {
                acc
            }
        };

        while clusters.len() > k {
            let (mut bi, mut bj, mut bd) = (0usize, 1usize, f64::INFINITY);
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    let d = linkage_dist(&clusters[i], &clusters[j]);
                    if d < bd {
                        bd = d;
                        bi = i;
                        bj = j;
                    }
                }
            }
            let merged = clusters.swap_remove(bj);
            clusters[bi].extend(merged);
        }

        // Renumber clusters by their smallest member for determinism.
        let mut order: Vec<usize> = (0..clusters.len()).collect();
        order.sort_by_key(|&c| *clusters[c].iter().min().expect("non-empty cluster"));
        let mut assignments = vec![0usize; n];
        for (new_id, &c) in order.iter().enumerate() {
            for &obs in &clusters[c] {
                assignments[obs] = new_id;
            }
        }
        Ok(assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Euclidean, Hamming};

    fn blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0],
            vec![0.5],
            vec![1.0],
            vec![20.0],
            vec![20.5],
            vec![21.0],
        ])
    }

    #[test]
    fn all_linkages_separate_blobs() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let asg = Agglomerative::new(linkage).fit(&blobs(), 2, &Euclidean).unwrap();
            assert_eq!(asg[0], asg[1]);
            assert_eq!(asg[1], asg[2]);
            assert_eq!(asg[3], asg[4]);
            assert_ne!(asg[0], asg[3], "{linkage:?}");
        }
    }

    #[test]
    fn k_equals_n_keeps_singletons() {
        let asg = Agglomerative::new(Linkage::Average)
            .fit(&blobs(), 6, &Euclidean)
            .unwrap();
        let mut sorted = asg.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn k_one_merges_everything() {
        let asg = Agglomerative::new(Linkage::Complete)
            .fit(&blobs(), 1, &Euclidean)
            .unwrap();
        assert!(asg.iter().all(|&c| c == 0));
    }

    #[test]
    fn errors_on_bad_k() {
        let data = blobs();
        let agg = Agglomerative::new(Linkage::Single);
        assert!(matches!(agg.fit(&data, 0, &Euclidean), Err(ClusterError::ZeroK)));
        assert!(matches!(
            agg.fit(&data, 7, &Euclidean),
            Err(ClusterError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn binary_vectors_with_hamming() {
        let data = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let asg = Agglomerative::new(Linkage::Average)
            .fit(&data, 2, &Hamming)
            .unwrap();
        assert_eq!(asg[0], asg[1]);
        assert_eq!(asg[2], asg[3]);
        assert_ne!(asg[0], asg[2]);
    }

    #[test]
    fn cluster_ids_are_dense_and_ordered_by_first_member() {
        let asg = Agglomerative::new(Linkage::Average)
            .fit(&blobs(), 2, &Euclidean)
            .unwrap();
        assert_eq!(asg[0], 0, "first observation defines cluster 0");
        assert!(asg.iter().all(|&c| c < 2));
    }

    #[test]
    fn distance_matrix_entry_point_matches_feature_fit() {
        let data = blobs();
        let n = data.n_rows();
        let dist =
            crate::distance::pairwise_distances(&data, &Euclidean, &td_obs::Observer::disabled());
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let agg = Agglomerative::new(linkage);
            let from_features = agg.fit(&data, 2, &Euclidean).unwrap();
            let from_dist = agg.fit_from_distances(&dist, n, 2).unwrap();
            assert_eq!(from_features, from_dist, "{linkage:?}");
        }
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn distance_matrix_size_is_checked() {
        let _ = Agglomerative::new(Linkage::Average).fit_from_distances(&[0.0; 3], 2, 1);
    }

    #[test]
    fn single_linkage_chains_where_complete_does_not() {
        // A chain of equidistant points plus one distant pair: single
        // linkage keeps the chain together.
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![100.0],
            vec![101.0],
        ]);
        let single = Agglomerative::new(Linkage::Single)
            .fit(&data, 2, &Euclidean)
            .unwrap();
        assert!(single[..4].iter().all(|&c| c == single[0]));
        assert_eq!(single[4], single[5]);
        assert_ne!(single[0], single[4]);
    }
}
