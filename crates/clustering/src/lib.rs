#![warn(missing_docs)]
// Numeric kernels index several parallel arrays in lockstep; iterator
// rewrites obscure them without gain.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::vec_init_then_push)]

//! # tdac-clustering — hand-written clustering stack
//!
//! The Rust clustering ecosystem is thin, and the TD-AC paper's method is
//! specific enough (k-means over binary attribute truth vectors, model
//! selection by the silhouette index with macro-averaging over clusters,
//! Eqs. 3–7) that everything here is implemented from scratch:
//!
//! * [`matrix::Matrix`] — a dense row-major `f64` matrix (the attribute
//!   truth-vector matrix of the paper's §3.1);
//! * [`bitmatrix::BitMatrix`] — the same rows packed into `u64` words
//!   (plus an optional validity mask), feeding the XOR+popcount Hamming
//!   kernel;
//! * [`distance`] — the metric zoo (Euclidean, squared Euclidean,
//!   Manhattan, Hamming — the paper's Eq. 2 — cosine) and the
//!   representation-aware pairwise kernel ([`distance::Rows`],
//!   [`distance::DistanceOptions`], [`bitmatrix::KernelPolicy`]);
//! * [`kmeans`] — Lloyd's algorithm with k-means++ or random
//!   initialization, multiple seeded restarts and empty-cluster repair;
//! * [`silhouette`] — per-sample, per-cluster and partition-level
//!   silhouette coefficients, in both the standard (global mean) and the
//!   paper's macro-averaged form (Eqs. 5–7);
//! * [`kselect`] — the `k ∈ [2, n-1]` sweep of TD-AC's Algorithm 1;
//! * [`pam`] — k-medoids (PAM), the natural ablation for clustering
//!   binary vectors under a true Hamming metric;
//! * [`hierarchical`] — agglomerative clustering (single / complete /
//!   average linkage), a second ablation.
//!
//! Everything is deterministic given a seed, and all entry points return
//! typed errors instead of panicking on degenerate input.

pub mod bitmatrix;
pub mod distance;
pub mod error;
pub mod hierarchical;
pub mod kmeans;
pub mod kselect;
pub mod matrix;
pub mod pam;
pub mod silhouette;

pub use bitmatrix::{BitMatrix, KernelPolicy};
pub use distance::{
    pairwise_distances, Cosine, DistanceOptions, DistanceOptionsBuilder, Euclidean, Hamming,
    Manhattan, Metric, Rows, SqEuclidean,
};
pub use error::ClusterError;
pub use hierarchical::{Agglomerative, Linkage};
pub use kmeans::{Init, KMeans, KMeansConfig, KMeansResult};
pub use kselect::{select_k, select_k_cancellable, select_k_elbow, ElbowSelection, KSelection};
pub use matrix::Matrix;
pub use pam::{Pam, PamConfig, PamResult};
pub use silhouette::{
    silhouette_paper, silhouette_paper_dist, silhouette_samples, silhouette_samples_dist,
    silhouette_score,
};
