//! Lloyd's k-means with k-means++ initialization, seeded restarts and
//! empty-cluster repair — the optimizer behind TD-AC's Eq. 3.

use rand::distributions::{Distribution, WeightedIndex};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::distance::{Metric, SqEuclidean};
use crate::error::ClusterError;
use crate::matrix::Matrix;

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Init {
    /// D²-weighted seeding (Arthur & Vassilvitskii 2007) — the default.
    KMeansPlusPlus,
    /// Uniformly random distinct observations.
    Random,
}

/// Configuration of a [`KMeans`] run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iteration cap per restart.
    pub max_iterations: u32,
    /// Stop when the inertia improvement falls below this value.
    pub tolerance: f64,
    /// Independent restarts; the lowest-inertia run wins.
    pub n_init: u32,
    /// Initialization strategy.
    pub init: Init,
    /// RNG seed — identical seeds give identical clusterings.
    pub seed: u64,
}

impl KMeansConfig {
    /// Defaults (aside from `k`, which has no sensible default):
    /// 100 iterations, tolerance `1e-9`, 10 restarts, k-means++, seed 42.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            tolerance: 1e-9,
            n_init: 10,
            init: Init::KMeansPlusPlus,
            seed: 42,
        }
    }
}

/// The outcome of a k-means fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index of every observation.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` rows.
    pub centroids: Matrix,
    /// Sum of squared distances of observations to their centroid
    /// (the paper's inertia objective, Eq. 3).
    pub inertia: f64,
    /// Lloyd iterations of the winning restart.
    pub iterations: u32,
}

impl KMeansResult {
    /// Observation indices grouped per cluster, preserving observation
    /// order inside each group.
    pub fn clusters(&self, k: usize) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); k];
        for (i, &c) in self.assignments.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }
}

/// Lloyd's algorithm. See module docs.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// A k-means instance with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// Fits `k` clusters to the rows of `data`.
    pub fn fit(&self, data: &Matrix) -> Result<KMeansResult, ClusterError> {
        self.fit_observed(data, &td_obs::Observer::disabled())
    }

    /// [`KMeans::fit`] with instrumentation: bumps
    /// [`td_obs::Counter::KMeansIterations`] by the Lloyd iterations
    /// summed over *all* restarts (the real work done, not just the
    /// winner's count). Observation never alters the fit.
    pub fn fit_observed(
        &self,
        data: &Matrix,
        observer: &td_obs::Observer,
    ) -> Result<KMeansResult, ClusterError> {
        let n = data.n_rows();
        let k = self.config.k;
        if k == 0 {
            return Err(ClusterError::ZeroK);
        }
        if n == 0 {
            return Err(ClusterError::EmptyInput);
        }
        if k > n {
            return Err(ClusterError::TooFewObservations { k, n });
        }
        if self.config.max_iterations == 0 {
            return Err(ClusterError::ZeroIterationCap);
        }

        // Restarts are independent (each derives its RNG from its restart
        // index alone), so they run in parallel; folding the collected
        // runs in restart order with the strict `<` keeps the earliest
        // lowest-inertia run, exactly as the sequential loop did.
        let runs: Vec<KMeansResult> = (0..self.config.n_init.max(1) as usize)
            .into_par_iter()
            .map(|restart| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    self.config
                        .seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(restart as u64 + 1)),
                );
                self.single_run(data, &mut rng)
            })
            .collect();
        observer.incr(
            td_obs::Counter::KMeansIterations,
            runs.iter().map(|r| r.iterations as u64).sum(),
        );
        let mut best: Option<KMeansResult> = None;
        for run in runs {
            if best.as_ref().is_none_or(|b| run.inertia < b.inertia) {
                best = Some(run);
            }
        }
        Ok(best.expect("n_init >= 1"))
    }

    fn single_run(&self, data: &Matrix, rng: &mut ChaCha8Rng) -> KMeansResult {
        let (n, d, k) = (data.n_rows(), data.n_cols(), self.config.k);
        let metric = SqEuclidean;
        let mut centroids = match self.config.init {
            Init::KMeansPlusPlus => init_plus_plus(data, k, rng),
            Init::Random => init_random(data, k, rng),
        };
        let mut assignments = vec![0usize; n];
        let mut counts = vec![0usize; k];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0u32;

        loop {
            iterations += 1;
            // Assignment step: rows are independent, so label them in
            // parallel; the inertia is summed over the collected labels in
            // row order, keeping the total bit-identical to a sequential
            // pass at any thread count.
            let centroids_ref = &centroids;
            let labeled: Vec<(usize, f64)> = (0..n)
                .into_par_iter()
                .map(|i| {
                    let row = data.row(i);
                    let mut best_c = 0usize;
                    let mut best_d = f64::INFINITY;
                    for c in 0..k {
                        let dist = metric.distance(row, centroids_ref.row(c));
                        if dist < best_d {
                            best_d = dist;
                            best_c = c;
                        }
                    }
                    (best_c, best_d)
                })
                .collect();
            let mut new_inertia = 0.0;
            for (i, (best_c, best_d)) in labeled.into_iter().enumerate() {
                assignments[i] = best_c;
                new_inertia += best_d;
            }

            // Update step.
            let mut next = Matrix::zeros(k, d);
            counts.iter_mut().for_each(|c| *c = 0);
            for i in 0..n {
                let c = assignments[i];
                counts[c] += 1;
                let row = data.row(i);
                let cr = next.row_mut(c);
                for j in 0..d {
                    cr[j] += row[j];
                }
            }
            // Empty-cluster repair: move the observation farthest from its
            // centroid into each empty cluster (a classic, deterministic
            // fix that keeps exactly k non-empty clusters).
            for c in 0..k {
                if counts[c] == 0 {
                    let (mut far_i, mut far_d) = (0usize, -1.0);
                    for i in 0..n {
                        if counts[assignments[i]] > 1 {
                            let dist = metric.distance(data.row(i), centroids.row(assignments[i]));
                            if dist > far_d {
                                far_d = dist;
                                far_i = i;
                            }
                        }
                    }
                    let old = assignments[far_i];
                    counts[old] -= 1;
                    let row = data.row(far_i);
                    let or = next.row_mut(old);
                    for j in 0..d {
                        or[j] -= row[j];
                    }
                    assignments[far_i] = c;
                    counts[c] = 1;
                    let cr = next.row_mut(c);
                    for j in 0..d {
                        cr[j] += row[j];
                    }
                }
            }
            for c in 0..k {
                let cnt = counts[c].max(1) as f64;
                let cr = next.row_mut(c);
                for j in 0..d {
                    cr[j] /= cnt;
                }
            }
            centroids = next;

            let improved = inertia - new_inertia > self.config.tolerance;
            inertia = new_inertia;
            if !improved || iterations >= self.config.max_iterations {
                break;
            }
        }

        // Recompute the final inertia against the final centroids.
        let mut final_inertia = 0.0;
        for i in 0..n {
            final_inertia += metric.distance(data.row(i), centroids.row(assignments[i]));
        }

        KMeansResult {
            assignments,
            centroids,
            inertia: final_inertia,
            iterations,
        }
    }
}

fn init_random(data: &Matrix, k: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let mut idx: Vec<usize> = (0..data.n_rows()).collect();
    idx.shuffle(rng);
    let mut c = Matrix::zeros(k, data.n_cols());
    for (ci, &i) in idx.iter().take(k).enumerate() {
        c.row_mut(ci).copy_from_slice(data.row(i));
    }
    c
}

fn init_plus_plus(data: &Matrix, k: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let n = data.n_rows();
    let metric = SqEuclidean;
    let mut centers: Vec<usize> = Vec::with_capacity(k);
    centers.push(rng.gen_range(0..n));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| metric.distance(data.row(i), data.row(centers[0])))
        .collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a center; pick any
            // non-center deterministically, else repeat a center.
            (0..n).find(|i| !centers.contains(i)).unwrap_or(0)
        } else {
            WeightedIndex::new(d2.iter().map(|&w| w.max(0.0)))
                .map(|w| w.sample(rng))
                .unwrap_or(0)
        };
        centers.push(next);
        for i in 0..n {
            let dist = metric.distance(data.row(i), data.row(next));
            if dist < d2[i] {
                d2[i] = dist;
            }
        }
    }
    let mut c = Matrix::zeros(k, data.n_cols());
    for (ci, &i) in centers.iter().enumerate() {
        c.row_mut(ci).copy_from_slice(data.row(i));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs on a line.
    fn blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.05, 0.05],
            vec![10.0, 10.1],
            vec![10.1, 10.0],
            vec![10.05, 9.95],
        ])
    }

    #[test]
    fn separates_obvious_blobs() {
        let r = KMeans::new(KMeansConfig::with_k(2)).fit(&blobs()).unwrap();
        assert_eq!(r.assignments.len(), 6);
        let a = r.assignments[0];
        assert!(r.assignments[..3].iter().all(|&c| c == a));
        let b = r.assignments[3];
        assert!(r.assignments[3..].iter().all(|&c| c == b));
        assert_ne!(a, b);
        assert!(r.inertia < 0.1, "inertia {}", r.inertia);
    }

    #[test]
    fn every_point_is_assigned_and_every_cluster_nonempty() {
        let r = KMeans::new(KMeansConfig::with_k(3)).fit(&blobs()).unwrap();
        assert!(r.assignments.iter().all(|&c| c < 3));
        let groups = r.clusters(3);
        assert!(groups.iter().all(|g| !g.is_empty()), "{groups:?}");
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 6);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]);
        let r = KMeans::new(KMeansConfig::with_k(3)).fit(&data).unwrap();
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        let r = KMeans::new(KMeansConfig::with_k(1)).fit(&data).unwrap();
        assert_eq!(r.centroids.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn errors_on_degenerate_input() {
        let data = blobs();
        assert_eq!(
            KMeans::new(KMeansConfig::with_k(0)).fit(&data).unwrap_err(),
            ClusterError::ZeroK
        );
        assert_eq!(
            KMeans::new(KMeansConfig::with_k(7)).fit(&data).unwrap_err(),
            ClusterError::TooFewObservations { k: 7, n: 6 }
        );
        let empty = Matrix::from_rows(&[]);
        assert_eq!(
            KMeans::new(KMeansConfig::with_k(1)).fit(&empty).unwrap_err(),
            ClusterError::EmptyInput
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let cfg = KMeansConfig::with_k(2);
        let r1 = KMeans::new(cfg).fit(&data).unwrap();
        let r2 = KMeans::new(cfg).fit(&data).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.inertia, r2.inertia);
    }

    #[test]
    fn random_init_also_works() {
        let mut cfg = KMeansConfig::with_k(2);
        cfg.init = Init::Random;
        let r = KMeans::new(cfg).fit(&blobs()).unwrap();
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let data = Matrix::from_rows(&vec![vec![1.0]; 5]);
        let r = KMeans::new(KMeansConfig::with_k(2)).fit(&data).unwrap();
        assert_eq!(r.assignments.len(), 5);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn thread_count_does_not_change_the_fit() {
        let data = blobs();
        let cfg = KMeansConfig::with_k(2);
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| KMeans::new(cfg).fit(&data).unwrap());
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| KMeans::new(cfg).fit(&data).unwrap());
        assert_eq!(one.assignments, four.assignments);
        assert_eq!(one.inertia.to_bits(), four.inertia.to_bits());
        assert_eq!(one.iterations, four.iterations);
    }

    #[test]
    fn binary_truth_vectors_cluster_by_pattern() {
        // The paper's use case: 0/1 rows, correlated attribute groups.
        let data = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0],
        ]);
        let r = KMeans::new(KMeansConfig::with_k(2)).fit(&data).unwrap();
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[2], r.assignments[3]);
        assert_ne!(r.assignments[0], r.assignments[2]);
    }
}
