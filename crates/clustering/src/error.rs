//! Error type for the clustering entry points.

use std::error::Error;
use std::fmt;

/// Errors raised on degenerate clustering inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// `k == 0` was requested.
    ZeroK,
    /// `k` exceeds the number of observations.
    TooFewObservations {
        /// Requested number of clusters.
        k: usize,
        /// Available observations.
        n: usize,
    },
    /// The observation matrix has no rows.
    EmptyInput,
    /// The requested `k` range is empty or inverted.
    EmptyKRange,
    /// `max_iterations == 0` was configured — the fit could never make
    /// a single improvement pass, so the cap is rejected up front
    /// instead of silently returning the initialization.
    ZeroIterationCap,
    /// A cooperative [`td_obs::CancelToken`] fired before any clustering
    /// completed, so there is no best-so-far selection to return.
    Cancelled,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ZeroK => write!(f, "cannot cluster into k = 0 groups"),
            ClusterError::TooFewObservations { k, n } => {
                write!(f, "k = {k} clusters requested but only {n} observations")
            }
            ClusterError::EmptyInput => write!(f, "empty observation matrix"),
            ClusterError::EmptyKRange => write!(f, "the k range to sweep is empty"),
            ClusterError::ZeroIterationCap => {
                write!(f, "max_iterations = 0 can never fit (use at least 1)")
            }
            ClusterError::Cancelled => {
                write!(f, "cancelled before any clustering completed")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ClusterError::ZeroK.to_string().contains("k = 0"));
        assert!(ClusterError::TooFewObservations { k: 5, n: 3 }
            .to_string()
            .contains("5"));
        assert!(ClusterError::EmptyInput.to_string().contains("empty"));
    }
}
