//! A minimal dense row-major matrix, the observation container for every
//! clusterer in this crate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Dense row-major `f64` matrix. Rows are observations (for TD-AC: one
/// attribute truth vector per row), columns are dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} ≠ {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self {
            rows: n,
            cols,
            data,
        }
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows (observations).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (dimensions).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterates over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Appends `extra` zero-valued columns to every row, re-striding the
    /// backing buffer in place. Existing entries keep their values; the
    /// new trailing columns of every row are `0.0`.
    pub fn append_cols(&mut self, extra: usize) {
        if extra == 0 {
            return;
        }
        let new_cols = self.cols + extra;
        let mut data = vec![0.0; self.rows * new_cols];
        for i in 0..self.rows {
            data[i * new_cols..i * new_cols + self.cols]
                .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
        }
        self.cols = new_cols;
        self.data = data;
    }

    /// Appends `extra` all-zero rows.
    pub fn append_zero_rows(&mut self, extra: usize) {
        self.rows += extra;
        self.data.resize(self.rows * self.cols, 0.0);
    }

    /// The flat backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            let cells: Vec<String> = self.row(i).iter().map(|v| format!("{v:.3}")).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn row_mut_modifies_in_place() {
        let mut m = Matrix::zeros(1, 2);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::from_rows(&[]);
        assert!(m.is_empty());
        assert_eq!(m.n_cols(), 0);
        assert_eq!(m.iter_rows().count(), 0);
    }

    #[test]
    fn append_cols_preserves_and_zero_fills() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.append_cols(3);
        assert_eq!(m.n_cols(), 5);
        assert_eq!(m.row(0), &[1.0, 2.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[3.0, 4.0, 0.0, 0.0, 0.0]);
        m.append_cols(0);
        assert_eq!(m.n_cols(), 5);
    }

    #[test]
    fn append_zero_rows_extends() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        m.append_zero_rows(2);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn display_formats_rows() {
        let m = Matrix::from_rows(&[vec![1.0]]);
        let s = m.to_string();
        assert!(s.contains("1×1"));
        assert!(s.contains("1.000"));
    }
}
