//! Dataset corruption operators — failure injection for robustness
//! tests and coverage/copier sweeps.
//!
//! Each operator takes a dataset (plus truth where relevant) and returns
//! a corrupted copy; compositions express workloads like "the Stocks
//! simulator, but with 30 % of claims dropped and a 5-source copier
//! clique injected". Used by the robustness integration tests and the
//! scalability benches.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use td_model::{Dataset, DatasetBuilder, GroundTruth, Value};

use crate::util::coin;

/// Removes each claim independently with probability `drop_rate` —
/// the coverage degradation knob behind the paper's DCR analysis.
///
/// Returns the thinned dataset plus the ground truth re-interned into
/// its (fresh) value table — corrupted datasets have their own id
/// spaces, so the original truth's `ValueId`s must not be reused.
pub fn drop_claims(
    dataset: &Dataset,
    truth: &GroundTruth,
    drop_rate: f64,
    seed: u64,
) -> (Dataset, GroundTruth) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new();
    copy_roster(dataset, &mut b);
    for claim in dataset.claims() {
        if coin(&mut rng, drop_rate) {
            continue;
        }
        copy_claim(dataset, claim, &mut b);
    }
    copy_truth(dataset, truth, &mut b);
    b.build_with_truth()
}

/// Adds `n_copiers` new sources that replicate a randomly chosen
/// existing source's claims verbatim (with probability `fidelity` per
/// claim) — the adversarial structure Depen/Accu's dependence detection
/// exists for.
pub fn inject_copiers(
    dataset: &Dataset,
    truth: &GroundTruth,
    n_copiers: usize,
    fidelity: f64,
    seed: u64,
) -> (Dataset, GroundTruth) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new();
    copy_roster(dataset, &mut b);
    for claim in dataset.claims() {
        copy_claim(dataset, claim, &mut b);
    }
    copy_truth(dataset, truth, &mut b);
    let n_sources = dataset.n_sources();
    if n_sources == 0 {
        return b.build_with_truth();
    }
    for c in 0..n_copiers {
        let victim = td_model::SourceId::new(rng.gen_range(0..n_sources) as u32);
        let copier = format!("copier-{c:02}");
        for claim in dataset.claims_of_source(victim) {
            if !coin(&mut rng, fidelity) {
                continue;
            }
            b.claim(
                &copier,
                dataset.object_name(claim.object),
                dataset.attribute_name(claim.attribute),
                dataset.value(claim.value).clone(),
            )
            .expect("copier writes each cell once");
        }
    }
    b.build_with_truth()
}

/// Flips each claim that currently matches the truth to a uniformly
/// random wrong integer with probability `noise_rate` (integer-valued
/// datasets only; non-int claims are left alone).
pub fn add_noise(
    dataset: &Dataset,
    truth: &GroundTruth,
    noise_rate: f64,
    seed: u64,
) -> (Dataset, GroundTruth) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new();
    copy_roster(dataset, &mut b);
    copy_truth(dataset, truth, &mut b);
    for claim in dataset.claims() {
        let mut value = dataset.value(claim.value).clone();
        let is_true = truth.get(claim.object, claim.attribute) == Some(claim.value);
        if is_true && coin(&mut rng, noise_rate) {
            if let Value::Int(x) = value {
                value = Value::Int(x + rng.gen_range(1..=1000));
            }
        }
        b.claim(
            dataset.source_name(claim.source),
            dataset.object_name(claim.object),
            dataset.attribute_name(claim.attribute),
            value,
        )
        .expect("one claim per cell per source");
    }
    b.build_with_truth()
}

fn copy_truth(dataset: &Dataset, truth: &GroundTruth, b: &mut DatasetBuilder) {
    for (o, a, v) in truth.iter() {
        b.truth(
            dataset.object_name(o),
            dataset.attribute_name(a),
            dataset.value(v).clone(),
        );
    }
}

fn copy_roster(dataset: &Dataset, b: &mut DatasetBuilder) {
    for s in dataset.source_ids() {
        b.source(dataset.source_name(s));
    }
    for o in dataset.object_ids() {
        b.object(dataset.object_name(o));
    }
    for a in dataset.attribute_ids() {
        b.attribute(dataset.attribute_name(a));
    }
}

fn copy_claim(dataset: &Dataset, claim: &td_model::Claim, b: &mut DatasetBuilder) {
    b.claim(
        dataset.source_name(claim.source),
        dataset.object_name(claim.object),
        dataset.attribute_name(claim.attribute),
        dataset.value(claim.value).clone(),
    )
    .expect("copy of a valid dataset cannot conflict");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_synthetic, SyntheticConfig};
    use td_model::stats::data_coverage_rate;

    fn base() -> (Dataset, GroundTruth) {
        let d = generate_synthetic(&SyntheticConfig::ds1().scaled(20));
        (d.dataset, d.truth)
    }

    #[test]
    fn drop_claims_reduces_coverage() {
        let (d, t) = base();
        let (dropped, _) = drop_claims(&d, &t, 0.4, 1);
        assert!(dropped.n_claims() < d.n_claims());
        assert!(dropped.n_claims() > d.n_claims() / 3);
        assert!(data_coverage_rate(&dropped) < data_coverage_rate(&d));
        // Roster is preserved even if a source lost all claims.
        assert_eq!(dropped.n_sources(), d.n_sources());
        assert_eq!(dropped.n_attributes(), d.n_attributes());
    }

    #[test]
    fn drop_zero_is_identity_in_counts() {
        let (d, t) = base();
        let (same, _) = drop_claims(&d, &t, 0.0, 1);
        assert_eq!(same.n_claims(), d.n_claims());
        assert_eq!(same.n_cells(), d.n_cells());
    }

    #[test]
    fn injected_copiers_replicate_their_victim() {
        let (d, t) = base();
        let (with_copiers, _) = inject_copiers(&d, &t, 3, 1.0, 7);
        assert_eq!(with_copiers.n_sources(), d.n_sources() + 3);
        // Every copier claim matches some original source's claim value.
        for c in 0..3 {
            let copier = with_copiers.source_id(&format!("copier-{c:02}")).unwrap();
            let n = with_copiers.claims_of_source(copier).count();
            assert!(n > 0, "copier-{c:02} copied nothing");
            for claim in with_copiers.claims_of_source(copier) {
                let cell_claims: Vec<_> = with_copiers
                    .cells()
                    .iter()
                    .find(|cell| (cell.object, cell.attribute) == claim.cell())
                    .map(|cell| with_copiers.cell_claims(cell))
                    .unwrap()
                    .to_vec();
                assert!(
                    cell_claims
                        .iter()
                        .any(|c2| c2.source != claim.source && c2.value == claim.value),
                    "copier claim must duplicate an existing value"
                );
            }
        }
    }

    #[test]
    fn partial_fidelity_copies_fewer_claims() {
        let (d, t) = base();
        let (full, _) = inject_copiers(&d, &t, 1, 1.0, 3);
        let (partial, _) = inject_copiers(&d, &t, 1, 0.3, 3);
        let count = |ds: &Dataset| {
            let id = ds.source_id("copier-00").unwrap();
            ds.claims_of_source(id).count()
        };
        assert!(count(&partial) < count(&full));
    }

    #[test]
    fn truth_is_reinterned_into_the_new_value_table() {
        let (d, t) = base();
        let (dropped, nt) = drop_claims(&d, &t, 0.5, 1);
        assert_eq!(nt.len(), t.len());
        for (o, a, v) in nt.iter() {
            // The re-interned id must resolve in the NEW dataset and
            // denote the same payload as the original truth.
            let new_val = dropped.value(v);
            let old_o = d.object_id(dropped.object_name(o)).unwrap();
            let old_a = d.attribute_id(dropped.attribute_name(a)).unwrap();
            let old_val = d.value(t.get(old_o, old_a).unwrap());
            assert_eq!(new_val, old_val);
        }
    }

    #[test]
    fn noise_flips_true_claims_only() {
        let (d, t) = base();
        let (noisy, nt) = add_noise(&d, &t, 1.0, 9);
        assert_eq!(noisy.n_claims(), d.n_claims());
        // Every previously-true integer claim is now false.
        for cell in noisy.cells() {
            let truth = nt.get(cell.object, cell.attribute).unwrap();
            let truth_val = noisy.value(truth);
            for claim in noisy.cell_claims(cell) {
                assert_ne!(
                    noisy.value(claim.value),
                    truth_val,
                    "full-rate noise leaves no true claims"
                );
            }
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let (d, t) = base();
        let (same, nt) = add_noise(&d, &t, 0.0, 9);
        assert_eq!(same.n_claims(), d.n_claims());
        assert_eq!(nt.len(), t.len());
    }

    #[test]
    fn operators_are_deterministic() {
        let (d, t) = base();
        assert_eq!(
            drop_claims(&d, &t, 0.3, 5).0.n_claims(),
            drop_claims(&d, &t, 0.3, 5).0.n_claims()
        );
        assert_ne!(
            drop_claims(&d, &t, 0.3, 5).0.n_claims(),
            drop_claims(&d, &t, 0.3, 6).0.n_claims(),
            "different seeds should (almost surely) differ"
        );
    }
}
