//! Simulator shaped to the **Flights** deep-web dataset of Li et al.
//! (VLDB 2013), per the paper's Table 8: 38 sources × 100 flights × 6
//! attributes, ≈ 8 600 observations, DCR ≈ 66 %.
//!
//! Structure that matters for TD-AC: flight-status sites split into a
//! few *primary* feeds and many aggregators that **copy** one of the
//! primaries (the original study's headline finding), and the six
//! attributes group into *scheduled* times (accurately published
//! everywhere), *actual* times (where the copying hurts) and *gates*.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use td_model::{Dataset, DatasetBuilder, GroundTruth, Value};

use crate::util::coin;

/// The 6 flight attributes, grouped (0 = scheduled, 1 = actual, 2 = gate).
const ATTRIBUTES: [(&str, usize); 6] = [
    ("sched_dep", 0),
    ("sched_arr", 0),
    ("actual_dep", 1),
    ("actual_arr", 1),
    ("dep_gate", 2),
    ("arr_gate", 2),
];

/// Parameters of the Flights simulator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlightsConfig {
    /// Number of sources (paper: 38).
    pub n_sources: usize,
    /// Number of primary (non-copying) feeds among them.
    pub n_primaries: usize,
    /// Number of flights (paper: 100).
    pub n_objects: usize,
    /// Probability a source tracks a flight at all.
    pub p_covers_object: f64,
    /// Probability a tracking source fills a given attribute.
    pub p_covers_attribute: f64,
    /// Reliability of primaries per attribute group
    /// (scheduled / actual / gate).
    pub primary_reliability: [f64; 3],
    /// Probability a copier reproduces its primary verbatim (else it
    /// reports independently at aggregator quality).
    pub p_copy: f64,
    /// Aggregators' own per-group reliability when not copying.
    pub aggregator_reliability: [f64; 3],
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlightsConfig {
    fn default() -> Self {
        Self {
            n_sources: 38,
            n_primaries: 6,
            n_objects: 100,
            p_covers_object: 0.55,
            p_covers_attribute: 0.69,
            primary_reliability: [0.98, 0.85, 0.80],
            p_copy: 0.8,
            aggregator_reliability: [0.95, 0.55, 0.50],
            seed: 0xF11_687,
        }
    }
}

/// Runs the simulator.
pub fn generate_flights(config: &FlightsConfig) -> (Dataset, GroundTruth) {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut b = DatasetBuilder::new();

    let sources: Vec<_> = (0..config.n_sources)
        .map(|s| b.source(&format!("flight-site-{s:02}")))
        .collect();
    let objects: Vec<_> = (0..config.n_objects)
        .map(|o| b.object(&format!("FL{o:04}")))
        .collect();
    let attributes: Vec<_> = ATTRIBUTES
        .iter()
        .map(|(name, _)| b.attribute(name))
        .collect();

    // Copier wiring: every non-primary copies a fixed primary.
    let primary_of: Vec<Option<usize>> = (0..config.n_sources)
        .map(|s| {
            if s < config.n_primaries {
                None
            } else {
                Some(rng.gen_range(0..config.n_primaries))
            }
        })
        .collect();

    for (oi, &obj) in objects.iter().enumerate() {
        let covering: Vec<usize> = (0..config.n_sources)
            .filter(|_| coin(&mut rng, config.p_covers_object))
            .collect();
        for (ai, &attr) in attributes.iter().enumerate() {
            let group = ATTRIBUTES[ai].1;
            // Truth: minutes-since-midnight style integers / gate numbers.
            let truth = 100 + ((oi * 37 + ai * 11) % 1_300) as i64;
            let truth_id = b.value(Value::int(truth));
            b.truth_ids(obj, attr, truth_id);

            // What each primary publishes for this cell (computed first,
            // because copiers reproduce it).
            let primary_claims: Vec<i64> = (0..config.n_primaries)
                .map(|p| {
                    if coin(&mut rng, config.primary_reliability[group]) {
                        truth
                    } else {
                        // Off-by-some-minutes mistakes, deterministic-ish
                        // per primary so copies are visibly identical.
                        truth + 5 + (p as i64 * 7 + ai as i64) % 45
                    }
                })
                .collect();

            for &si in &covering {
                if !coin(&mut rng, config.p_covers_attribute) {
                    continue;
                }
                let value = match primary_of[si] {
                    None => primary_claims[si],
                    Some(p) => {
                        if coin(&mut rng, config.p_copy) {
                            primary_claims[p]
                        } else if coin(&mut rng, config.aggregator_reliability[group]) {
                            truth
                        } else {
                            truth + 3 + (si as i64 * 13) % 60
                        }
                    }
                };
                let v = b.value(Value::int(value));
                b.claim_ids(sources[si], obj, attr, v).expect("fresh cell");
            }
        }
    }

    b.build_with_truth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::stats::DatasetStats;

    #[test]
    fn shape_matches_paper_table8() {
        let (d, t) = generate_flights(&FlightsConfig::default());
        let st = DatasetStats::of(&d);
        assert_eq!(st.n_sources, 38);
        assert_eq!(st.n_objects, 100);
        assert_eq!(st.n_attributes, 6);
        assert!(
            (7_000..=10_500).contains(&st.n_observations),
            "≈ 8.6k observations, got {}",
            st.n_observations
        );
        assert!(
            (60.0..=76.0).contains(&st.dcr),
            "DCR ≈ 66, got {:.1}",
            st.dcr
        );
        assert_eq!(t.len(), 600);
    }

    #[test]
    fn copiers_echo_their_primary() {
        let cfg = FlightsConfig {
            p_copy: 1.0,
            ..Default::default()
        };
        let (d, _) = generate_flights(&cfg);
        // With p_copy = 1, every aggregator claim equals some primary's
        // claim for the same cell whenever that primary covers it; at
        // minimum, identical wrong values must appear across sources.
        let mut echoed = 0usize;
        let mut total = 0usize;
        for cell in d.cells() {
            let claims = d.cell_claims(cell);
            for c in claims {
                if c.source.index() >= cfg.n_primaries {
                    total += 1;
                    if claims
                        .iter()
                        .any(|p| p.source.index() < cfg.n_primaries && p.value == c.value)
                    {
                        echoed += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            echoed as f64 / total as f64 > 0.5,
            "copier claims should frequently match a visible primary: {echoed}/{total}"
        );
    }

    #[test]
    fn scheduled_attributes_are_cleaner_than_actuals() {
        let (d, t) = generate_flights(&FlightsConfig::default());
        let accuracy_of = |prefix: &str| -> f64 {
            let (mut right, mut total) = (0usize, 0usize);
            for cell in d.cells() {
                if !d.attribute_name(cell.attribute).starts_with(prefix) {
                    continue;
                }
                let truth = t.get(cell.object, cell.attribute).unwrap();
                for c in d.cell_claims(cell) {
                    total += 1;
                    right += usize::from(c.value == truth);
                }
            }
            right as f64 / total as f64
        };
        assert!(
            accuracy_of("sched") > accuracy_of("actual"),
            "scheduled times are easier than actuals"
        );
    }

    #[test]
    fn deterministic() {
        let (a, _) = generate_flights(&FlightsConfig::default());
        let (b, _) = generate_flights(&FlightsConfig::default());
        assert_eq!(a.n_claims(), b.n_claims());
    }
}
