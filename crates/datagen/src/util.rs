//! Small shared helpers for the generators.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Draws a false answer: an integer in `1..=range` different from
/// `truth`. Requires `range >= 2` so a false value exists.
pub fn false_int(rng: &mut ChaCha8Rng, range: i64, truth: i64) -> i64 {
    debug_assert!(range >= 2, "need at least one false value");
    loop {
        let v = rng.gen_range(1..=range);
        if v != truth {
            return v;
        }
    }
}

/// Bernoulli draw.
pub fn coin(rng: &mut ChaCha8Rng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn false_int_avoids_truth_and_stays_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let v = false_int(&mut rng, 5, 3);
            assert!((1..=5).contains(&v));
            assert_ne!(v, 3);
        }
    }

    #[test]
    fn false_int_works_with_binary_domain() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(false_int(&mut rng, 2, 1), 2);
            assert_eq!(false_int(&mut rng, 2, 2), 1);
        }
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| coin(&mut rng, 0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
        assert!((0..1_000).all(|_| !coin(&mut rng, 0.0)));
        assert!((0..1_000).all(|_| coin(&mut rng, 1.0)));
    }
}
