//! Structural simulator of the private **Exam** dataset (§4.3 of the
//! paper): 248 students answering up to 124 admission-exam questions
//! across 9 domains.
//!
//! The original data cannot be redistributed; what TD-AC's behaviour
//! depends on is reproduced structurally:
//!
//! * **participation rules** — Math 1A and Physics were mandatory, one of
//!   Chemistry 1 / Math 1B had to be chosen, the remaining five domains
//!   were optional with penalties for wrong answers (so participation was
//!   low). Taking attribute prefixes of this layout yields the paper's
//!   coverage gradient: ~81 % at 32 attributes, ~55 % at 62, ~36 % at 124
//!   (Table 8);
//! * **correlated skills** — each student has three latent aptitudes
//!   (math, quantitative, science); a domain's questions draw on one
//!   aptitude, so attributes of same-aptitude domains are structurally
//!   correlated across sources — the signal TD-AC clusters on;
//! * **synthetic false answers** — as in the paper, every wrong answer is
//!   drawn uniformly from a range of size 25 / 50 / 100 / 1000
//!   (configurable), which controls how often wrong answers collide;
//! * **question difficulty and misconceptions** — each question has a
//!   latent difficulty, and a share of wrong answers lands on one common
//!   *distractor* value. Hard mandatory questions where the majority is
//!   wrong are what keeps the mandatory (Exam 32) slice's accuracy low,
//!   matching the paper's Table 9a (accuracy ≈ 0.56–0.68), while
//!   self-selection on the penalized optional domains (students only opt
//!   in where they are strong) makes the wider slices *more* accurate
//!   despite being sparser — the paper's Tables 9b–c.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use td_model::{Dataset, DatasetBuilder, GroundTruth, Value};

use crate::util::{coin, false_int};

/// How a domain is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Participation {
    Mandatory,
    /// Index of the either-or pairing (students take exactly one of each
    /// pair).
    EitherOr(usize),
    Optional,
}

/// Which latent aptitude a domain draws on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aptitude {
    Math,
    Quantitative,
    Science,
}

/// One exam domain.
struct Domain {
    name: &'static str,
    n_questions: usize,
    participation: Participation,
    aptitude: Aptitude,
}

/// The 9 domains of the paper, ordered so attribute prefixes reproduce
/// the 32 / 62 / 124 slices.
fn domains() -> Vec<Domain> {
    vec![
        Domain { name: "math1a", n_questions: 16, participation: Participation::Mandatory, aptitude: Aptitude::Math },
        Domain { name: "physics", n_questions: 16, participation: Participation::Mandatory, aptitude: Aptitude::Quantitative },
        Domain { name: "chemistry1", n_questions: 15, participation: Participation::EitherOr(0), aptitude: Aptitude::Science },
        Domain { name: "math1b", n_questions: 15, participation: Participation::EitherOr(0), aptitude: Aptitude::Math },
        Domain { name: "compsci", n_questions: 12, participation: Participation::Optional, aptitude: Aptitude::Quantitative },
        Domain { name: "elec_eng", n_questions: 12, participation: Participation::Optional, aptitude: Aptitude::Quantitative },
        Domain { name: "chemistry2", n_questions: 12, participation: Participation::Optional, aptitude: Aptitude::Science },
        Domain { name: "science_of_life", n_questions: 13, participation: Participation::Optional, aptitude: Aptitude::Science },
        Domain { name: "math2", n_questions: 13, participation: Participation::Optional, aptitude: Aptitude::Math },
    ]
}

/// Parameters of the Exam simulator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExamConfig {
    /// Attribute-prefix size: 32, 62 or 124 in the paper (any value up
    /// to 124 works).
    pub n_attributes: usize,
    /// Number of students (paper: 248).
    pub n_students: usize,
    /// Size of the false-answer range (paper: 25 / 50 / 100 / 1000).
    pub false_range: i64,
    /// Probability of answering a mandatory question.
    pub p_mandatory: f64,
    /// Probability of answering a question of the chosen either-or
    /// domain.
    pub p_chosen: f64,
    /// Probability of participating in an optional domain at all
    /// (conditional on being confident enough — wrong answers were
    /// penalized, so only students with domain skill above
    /// `opt_in_skill_floor` even consider it).
    pub p_opt_in: f64,
    /// Probability of answering a question of an opted-in domain.
    pub p_opt_answer: f64,
    /// Minimum domain skill to consider a penalized optional domain.
    pub opt_in_skill_floor: f64,
    /// Difficulty range questions draw from (uniform).
    pub difficulty: (f64, f64),
    /// Share of wrong answers that land on the question's common
    /// distractor (misconception) rather than a uniform false value.
    pub distractor_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ExamConfig {
    /// The paper's configuration at a given attribute-prefix size and
    /// false range. Participation probabilities are tuned so the 32 / 62
    /// / 124 slices land near the published DCR of 81 / 55 / 36 %.
    pub fn new(n_attributes: usize, false_range: i64) -> Self {
        Self {
            n_attributes,
            n_students: 248,
            false_range,
            p_mandatory: 0.81,
            p_chosen: 0.62,
            p_opt_in: 0.52,
            p_opt_answer: 0.62,
            opt_in_skill_floor: 0.60,
            difficulty: (0.15, 0.95),
            distractor_share: 0.45,
            seed: 0xE8A,
        }
    }
}

/// Runs the simulator.
///
/// # Panics
/// Panics if `n_attributes` exceeds the 124 questions of the layout or
/// `false_range < 2`.
pub fn generate_exam(config: &ExamConfig) -> (Dataset, GroundTruth) {
    let layout = domains();
    let total: usize = layout.iter().map(|d| d.n_questions).sum();
    assert_eq!(total, 124, "domain layout must total 124 questions");
    assert!(config.n_attributes <= total, "at most {total} questions");
    assert!(config.false_range >= 2, "false range too small");

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut b = DatasetBuilder::new();

    let exam_obj = b.object("exam");

    // Question list (attribute prefix), each tagged with its domain index.
    let mut questions: Vec<(usize, td_model::AttributeId)> = Vec::new();
    'outer: for (di, d) in layout.iter().enumerate() {
        for q in 0..d.n_questions {
            if questions.len() >= config.n_attributes {
                break 'outer;
            }
            let attr = b.attribute(&format!("{}_{q:02}", d.name));
            questions.push((di, attr));
        }
    }

    // Ground truth, difficulty and distractor per question.
    let truths: Vec<i64> = (0..questions.len())
        .map(|_| rng.gen_range(1..=config.false_range))
        .collect();
    let (dlo, dhi) = config.difficulty;
    let difficulties: Vec<f64> = (0..questions.len())
        .map(|_| rng.gen_range(dlo..dhi))
        .collect();
    let distractors: Vec<i64> = truths
        .iter()
        .map(|&t| false_int(&mut rng, config.false_range.max(2), t))
        .collect();
    for (qi, &(_, attr)) in questions.iter().enumerate() {
        let v = b.value(Value::int(truths[qi]));
        b.truth_ids(exam_obj, attr, v);
    }

    for s in 0..config.n_students {
        let student = b.source(&format!("student{s:03}"));
        // Latent aptitudes.
        let apt_math = rng.gen_range(0.35..0.95);
        let apt_quant = rng.gen_range(0.35..0.95);
        let apt_sci = rng.gen_range(0.35..0.95);
        let ability = |a: Aptitude, noise: f64| -> f64 {
            let base = match a {
                Aptitude::Math => apt_math,
                Aptitude::Quantitative => apt_quant,
                Aptitude::Science => apt_sci,
            };
            (base + noise).clamp(0.05, 0.98)
        };
        // Small per-(student, domain) skill noise.
        let domain_noise: Vec<f64> = layout.iter().map(|_| rng.gen_range(-0.08..0.08)).collect();
        // Either-or choice: students pick the pair member they are
        // stronger at (chemistry1 = science, math1b = math).
        let picks_first_of_pair = ability(Aptitude::Science, domain_noise[2])
            >= ability(Aptitude::Math, domain_noise[3]);
        // Optional domain opt-ins: penalized, so gated on skill.
        let opted: Vec<bool> = layout
            .iter()
            .enumerate()
            .map(|(di, d)| {
                d.participation == Participation::Optional
                    && ability(d.aptitude, domain_noise[di]) >= config.opt_in_skill_floor
                    && coin(&mut rng, config.p_opt_in)
            })
            .collect();

        for (qi, &(di, attr)) in questions.iter().enumerate() {
            let d = &layout[di];
            let answers = match d.participation {
                Participation::Mandatory => coin(&mut rng, config.p_mandatory),
                Participation::EitherOr(_) => {
                    // chemistry1 is the first of its pair (domain 2),
                    // math1b the second (domain 3).
                    let takes = if di == 2 { picks_first_of_pair } else { !picks_first_of_pair };
                    takes && coin(&mut rng, config.p_chosen)
                }
                Participation::Optional => opted[di] && coin(&mut rng, config.p_opt_answer),
            };
            if !answers {
                continue;
            }
            let skill = ability(d.aptitude, domain_noise[di]);
            // Confidence bonus on penalized domains: the students present
            // are exactly the strong self-selected ones.
            let bonus = if d.participation == Participation::Optional {
                0.58
            } else {
                0.45
            };
            let p_correct = (bonus + skill - difficulties[qi]).clamp(0.05, 0.97);
            let answer = if coin(&mut rng, p_correct) {
                truths[qi]
            } else if coin(&mut rng, config.distractor_share) {
                distractors[qi]
            } else {
                false_int(&mut rng, config.false_range, truths[qi])
            };
            let v = b.value(Value::int(answer));
            b.claim_ids(student, exam_obj, attr, v).expect("fresh cell");
        }
    }

    b.build_with_truth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::stats::data_coverage_rate;

    #[test]
    fn shape_matches_paper_table8() {
        let (d, t) = generate_exam(&ExamConfig::new(124, 100));
        assert_eq!(d.n_sources(), 248);
        assert_eq!(d.n_objects(), 1);
        assert_eq!(d.n_attributes(), 124);
        assert_eq!(t.len(), 124);
    }

    #[test]
    fn coverage_gradient_reproduces_table8() {
        let (d32, _) = generate_exam(&ExamConfig::new(32, 100));
        let (d62, _) = generate_exam(&ExamConfig::new(62, 100));
        let (d124, _) = generate_exam(&ExamConfig::new(124, 100));
        let (c32, c62, c124) = (
            data_coverage_rate(&d32),
            data_coverage_rate(&d62),
            data_coverage_rate(&d124),
        );
        assert!(c32 > c62 && c62 > c124, "gradient: {c32:.1} {c62:.1} {c124:.1}");
        assert!((73.0..=89.0).contains(&c32), "Exam32 DCR ≈ 81, got {c32:.1}");
        assert!((47.0..=63.0).contains(&c62), "Exam62 DCR ≈ 55, got {c62:.1}");
        assert!((28.0..=44.0).contains(&c124), "Exam124 DCR ≈ 36, got {c124:.1}");
    }

    #[test]
    fn answers_stay_in_false_range() {
        let (d, _) = generate_exam(&ExamConfig::new(62, 25));
        for claim in d.claims() {
            match d.value(claim.value) {
                Value::Int(x) => assert!((1..=25).contains(x)),
                other => panic!("unexpected value {other:?}"),
            }
        }
    }

    #[test]
    fn either_or_students_take_exactly_one_pair_member() {
        let (d, _) = generate_exam(&ExamConfig::new(124, 100));
        // No student answers both a chemistry1 and a math1b question.
        for s in d.source_ids() {
            let mut chem = false;
            let mut m1b = false;
            for c in d.claims_of_source(s) {
                let name = d.attribute_name(c.attribute);
                chem |= name.starts_with("chemistry1");
                m1b |= name.starts_with("math1b");
            }
            assert!(!(chem && m1b), "{} took both either-or domains", d.source_name(s));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = generate_exam(&ExamConfig::new(62, 50));
        let (b, _) = generate_exam(&ExamConfig::new(62, 50));
        assert_eq!(a.n_claims(), b.n_claims());
    }

    #[test]
    fn smaller_false_range_collides_more() {
        // With range 25 wrong answers coincide far more often than with
        // range 1000, so the number of distinct values per cell is lower.
        let (d25, _) = generate_exam(&ExamConfig::new(32, 25));
        let (d1000, _) = generate_exam(&ExamConfig::new(32, 1000));
        let distinct = |d: &Dataset| -> f64 {
            let mut total = 0usize;
            for cell in d.cells() {
                let mut vals: Vec<_> = d.cell_claims(cell).iter().map(|c| c.value).collect();
                vals.sort_unstable();
                vals.dedup();
                total += vals.len();
            }
            total as f64 / d.n_cells() as f64
        };
        assert!(distinct(&d25) < distinct(&d1000));
    }
}
