//! Simulator shaped to the **Stocks** deep-web dataset of Li et al.
//! (VLDB 2013), per the paper's Table 8: 55 sources × 100 objects × 15
//! attributes, ≈ 57 000 observations, DCR ≈ 75 %.
//!
//! Structure that matters for TD-AC: the 15 attributes fall into three
//! natural groups — *prices* (open/close/high/low/last), *volumes*
//! (volume, average volume, shares outstanding) and *fundamentals*
//! (EPS, P/E, yield, dividend, market cap, 52-week high/low) — and
//! financial sources are known to differ in quality per group (real-time
//! feeds get prices right but copy stale fundamentals, and vice versa).
//! Each source draws one reliability level per group; wrong values are
//! drawn from a small per-cell pool of plausible mistakes so that errors
//! collide across sources the way stale quotes really do.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use td_model::{Dataset, DatasetBuilder, GroundTruth, Value};

use crate::util::coin;

/// The 15 stock attributes, grouped.
const ATTRIBUTES: [(&str, usize); 15] = [
    ("open", 0),
    ("close", 0),
    ("high", 0),
    ("low", 0),
    ("last", 0),
    ("volume", 1),
    ("avg_volume", 1),
    ("shares", 1),
    ("eps", 2),
    ("pe_ratio", 2),
    ("yield", 2),
    ("dividend", 2),
    ("market_cap", 2),
    ("wk52_high", 2),
    ("wk52_low", 2),
];

/// Parameters of the Stocks simulator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StocksConfig {
    /// Number of sources (paper: 55).
    pub n_sources: usize,
    /// Number of stock symbols (paper: 100).
    pub n_objects: usize,
    /// Probability a source lists a symbol at all.
    pub p_covers_object: f64,
    /// Probability a covering source fills a given attribute.
    pub p_covers_attribute: f64,
    /// Reliability levels drawn per `(source, attribute group)`.
    pub levels: [f64; 3],
    /// Distinct wrong variants circulating per cell (stale quotes).
    pub n_error_variants: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StocksConfig {
    fn default() -> Self {
        Self {
            n_sources: 55,
            n_objects: 100,
            p_covers_object: 0.92,
            p_covers_attribute: 0.75,
            levels: [0.95, 0.75, 0.55],
            n_error_variants: 3,
            seed: 0x57_0C_C5,
        }
    }
}

/// Runs the simulator.
pub fn generate_stocks(config: &StocksConfig) -> (Dataset, GroundTruth) {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut b = DatasetBuilder::new();

    let sources: Vec<_> = (0..config.n_sources)
        .map(|s| b.source(&format!("finance-site-{s:02}")))
        .collect();
    let objects: Vec<_> = (0..config.n_objects)
        .map(|o| b.object(&format!("TICK{o:03}")))
        .collect();
    let attributes: Vec<_> = ATTRIBUTES
        .iter()
        .map(|(name, _)| b.attribute(name))
        .collect();

    // Per-(source, group) reliability.
    let reliability: Vec<[f64; 3]> = (0..config.n_sources)
        .map(|_| {
            [
                config.levels[rng.gen_range(0..3)],
                config.levels[rng.gen_range(0..3)],
                config.levels[rng.gen_range(0..3)],
            ]
        })
        .collect();

    for (oi, &obj) in objects.iter().enumerate() {
        // Which sources list this symbol.
        let covering: Vec<usize> = (0..config.n_sources)
            .filter(|_| coin(&mut rng, config.p_covers_object))
            .collect();
        for (ai, &attr) in attributes.iter().enumerate() {
            let group = ATTRIBUTES[ai].1;
            // Truth in integer cents / shares, deterministic per cell.
            let truth = 1_000 + ((oi * 131 + ai * 17) % 90_000) as i64;
            let truth_id = b.value(Value::int(truth));
            b.truth_ids(obj, attr, truth_id);
            // Plausible circulating mistakes for this cell (stale or
            // misparsed values shared by several bad sources).
            let variants: Vec<i64> = (0..config.n_error_variants)
                .map(|_| {
                    let bump = rng.gen_range(1..=50) * if coin(&mut rng, 0.5) { 1 } else { -1 };
                    (truth + bump).max(1)
                })
                .collect();
            for &si in &covering {
                if !coin(&mut rng, config.p_covers_attribute) {
                    continue;
                }
                let value = if coin(&mut rng, reliability[si][group]) {
                    truth
                } else {
                    variants[rng.gen_range(0..variants.len())]
                };
                let v = b.value(Value::int(value));
                b.claim_ids(sources[si], obj, attr, v).expect("fresh cell");
            }
        }
    }

    b.build_with_truth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::stats::DatasetStats;

    #[test]
    fn shape_matches_paper_table8() {
        let (d, t) = generate_stocks(&StocksConfig::default());
        let st = DatasetStats::of(&d);
        assert_eq!(st.n_sources, 55);
        assert_eq!(st.n_objects, 100);
        assert_eq!(st.n_attributes, 15);
        assert!(
            (50_000..=64_000).contains(&st.n_observations),
            "≈ 57k observations, got {}",
            st.n_observations
        );
        assert!(
            (69.0..=81.0).contains(&st.dcr),
            "DCR ≈ 75, got {:.1}",
            st.dcr
        );
        assert_eq!(t.len(), 1_500);
    }

    #[test]
    fn deterministic() {
        let (a, _) = generate_stocks(&StocksConfig::default());
        let (b, _) = generate_stocks(&StocksConfig::default());
        assert_eq!(a.n_claims(), b.n_claims());
    }

    #[test]
    fn errors_collide_across_sources() {
        // Error pooling means some wrong value should be claimed by at
        // least two sources somewhere.
        let (d, t) = generate_stocks(&StocksConfig::default());
        let mut shared_error = false;
        for cell in d.cells() {
            let truth = t.get(cell.object, cell.attribute).unwrap();
            let mut wrong_counts = std::collections::HashMap::new();
            for c in d.cell_claims(cell) {
                if c.value != truth {
                    *wrong_counts.entry(c.value).or_insert(0u32) += 1;
                }
            }
            if wrong_counts.values().any(|&n| n >= 2) {
                shared_error = true;
                break;
            }
        }
        assert!(shared_error, "stale-quote errors must collide");
    }

    #[test]
    fn truth_is_claimed_by_a_majority_of_good_sources_somewhere() {
        let (d, t) = generate_stocks(&StocksConfig::default());
        let mut truth_claimed = 0usize;
        for cell in d.cells() {
            let truth = t.get(cell.object, cell.attribute).unwrap();
            if d.cell_claims(cell).iter().any(|c| c.value == truth) {
                truth_claimed += 1;
            }
        }
        assert!(
            truth_claimed as f64 / d.n_cells() as f64 > 0.95,
            "truth should be claimable nearly everywhere"
        );
    }
}
