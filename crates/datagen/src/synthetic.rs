//! The WebDB 2015 synthetic generator, re-derived.
//!
//! The generator plants an attribute partition and gives every source one
//! reliability level *per attribute group*, drawn from the
//! configuration's level profile (the `{m1, m2, m3}` of the paper's
//! Table 3). A source is then consistently good or bad on all attributes
//! of a group — the *structural correlation* TD-AC is designed to
//! exploit. DS1's `{1.0, 0.0, 1.0}` makes sources deterministic per
//! group; DS3's `{1.0, 0.2, 0.8}` relaxes the assumption with noisy
//! reliabilities.
//!
//! Erring sources mostly agree on one *canonical* false value per cell
//! ([`SyntheticConfig::false_unification`]). This is what makes the
//! workload adversarial, matching the paper's Table 4 where the
//! un-partitioned algorithms lose badly: the bad camp of a group forms a
//! unified voting bloc (and a copy-detection target), so global trust
//! estimation gets misled while partition-local estimation — and Accu's
//! dependence analysis — can recover the truth.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use td_model::{Dataset, DatasetBuilder, GroundTruth, Value};

use crate::util::{coin, false_int};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of attributes (paper: 6).
    pub n_attributes: usize,
    /// Number of objects (paper: 1000).
    pub n_objects: usize,
    /// Number of sources (paper: 10).
    pub n_sources: usize,
    /// Planted partition of `0..n_attributes` (groups must be disjoint
    /// and exhaustive).
    pub partition: Vec<Vec<usize>>,
    /// Reliability levels; each `(source, group)` pair draws one
    /// uniformly (Table 3's `m1, m2, m3`).
    pub levels: Vec<f64>,
    /// Size of each attribute's value domain (truth plus `domain - 1`
    /// false candidates).
    pub domain: i64,
    /// Probability a source covers a given cell (1.0 reproduces the
    /// paper's 60 000 observations).
    pub coverage: f64,
    /// Probability an erring source claims the cell's canonical false
    /// value instead of a uniform one — unified wrong camps (see the
    /// module docs).
    pub false_unification: f64,
    /// Half-width of the uniform jitter applied to each drawn
    /// reliability level (clamped to `[0.02, 0.98]`). Real sources are
    /// never exactly deterministic; without jitter the sharp DS1 levels
    /// make every algorithm trivially perfect, which contradicts the
    /// paper's own Table 4a.
    pub level_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// DS1 (paper Tables 3 & 5): planted partition
    /// `[(1,2),(4,6),(3),(5)]`, levels `{1.0, 0.0, 1.0}` — the paper's
    /// exact working setting (sharp per-group reliabilities).
    pub fn ds1() -> Self {
        Self {
            n_attributes: 6,
            n_objects: 1000,
            n_sources: 10,
            partition: vec![vec![0, 1], vec![3, 5], vec![2], vec![4]],
            levels: vec![1.0, 0.0, 1.0],
            domain: 20,
            coverage: 1.0,
            false_unification: 0.8,
            level_jitter: 0.15,
            seed: 17,
        }
    }

    /// DS2: planted partition `[(2,5),(1,4),(3,6)]`, levels
    /// `{1.0, 0.0, 0.8}`.
    pub fn ds2() -> Self {
        Self {
            partition: vec![vec![1, 4], vec![0, 3], vec![2, 5]],
            levels: vec![1.0, 0.0, 0.8],
            seed: 18,
            ..Self::ds1()
        }
    }

    /// DS3: planted partition `[(1,6,3),(2,4,5)]`, levels
    /// `{1.0, 0.2, 0.8}` — the robustness configuration that relaxes the
    /// working assumptions.
    pub fn ds3() -> Self {
        Self {
            partition: vec![vec![0, 5, 2], vec![1, 3, 4]],
            levels: vec![1.0, 0.2, 0.8],
            seed: 8,
            ..Self::ds1()
        }
    }

    /// A scaled-down variant for fast tests and CI: same structure,
    /// fewer objects.
    pub fn scaled(mut self, n_objects: usize) -> Self {
        self.n_objects = n_objects;
        self
    }
}

/// A generated synthetic dataset with its provenance.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The claims.
    pub dataset: Dataset,
    /// Full ground truth (every cell).
    pub truth: GroundTruth,
    /// The planted partition as dataset attribute ids (the paper's
    /// Table 5 "Synthetic data generator" row).
    pub planted: tdac_partition::Planted,
    /// The reliability each source drew for each planted group
    /// (`reliability[source][group]`), for diagnostics and oracle
    /// analyses.
    pub reliability: Vec<Vec<f64>>,
}

/// Minimal partition mirror so `datagen` does not depend on `tdac-core`
/// (which depends back on nothing here, but keeping the dependency
/// one-way lets the core crate consume generated data in its tests).
pub mod tdac_partition {
    use serde::{Deserialize, Serialize};
    use td_model::AttributeId;

    /// The planted grouping, as groups of attribute ids.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    pub struct Planted {
        /// Groups of attribute ids (disjoint, exhaustive).
        pub groups: Vec<Vec<AttributeId>>,
    }
}

/// Runs the generator.
///
/// # Panics
/// Panics if the planted partition does not cover `0..n_attributes`
/// exactly, if `levels` is empty, or if `domain < 2`.
pub fn generate_synthetic(config: &SyntheticConfig) -> SyntheticDataset {
    let n_attrs = config.n_attributes;
    let mut seen = vec![false; n_attrs];
    for g in &config.partition {
        for &a in g {
            assert!(a < n_attrs, "attribute {a} out of range");
            assert!(!seen[a], "attribute {a} in two groups");
            seen[a] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "partition must cover all attributes");
    assert!(!config.levels.is_empty(), "need at least one reliability level");
    assert!(config.domain >= 2, "domain must offer a false value");

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut b = DatasetBuilder::new();

    // Pre-register entities so ids are dense and in canonical order.
    let sources: Vec<_> = (0..config.n_sources)
        .map(|s| b.source(&format!("s{s}")))
        .collect();
    let objects: Vec<_> = (0..config.n_objects)
        .map(|o| b.object(&format!("o{o}")))
        .collect();
    let attributes: Vec<_> = (0..n_attrs)
        .map(|a| b.attribute(&format!("a{a}")))
        .collect();

    // Group index per attribute.
    let mut group_of = vec![0usize; n_attrs];
    for (gi, g) in config.partition.iter().enumerate() {
        for &a in g {
            group_of[a] = gi;
        }
    }

    // Per-(source, group) reliability drawn from the level profile.
    let n_groups = config.partition.len();
    let j = config.level_jitter;
    let draw_level = |rng: &mut ChaCha8Rng| {
        let level = config.levels[rng.gen_range(0..config.levels.len())];
        if j <= 0.0 {
            return level;
        }
        (level + rng.gen_range(-j..=j)).clamp(0.02, 0.98)
    };
    let reliability: Vec<Vec<f64>> = (0..config.n_sources)
        .map(|_| (0..n_groups).map(|_| draw_level(&mut rng)).collect())
        .collect();

    // Ground truth: a fixed value per cell inside the domain.
    // Claims: covered cells answer truthfully with the source's group
    // reliability, otherwise a uniform false value.
    for (oi, &obj) in objects.iter().enumerate() {
        for (ai, &attr) in attributes.iter().enumerate() {
            let truth = ((oi + ai * 7) % config.domain as usize) as i64 + 1;
            let truth_id = b.value(Value::int(truth));
            b.truth_ids(obj, attr, truth_id);
            for (si, &src) in sources.iter().enumerate() {
                if !coin(&mut rng, config.coverage) {
                    continue;
                }
                let r = reliability[si][group_of[ai]];
                let value = if coin(&mut rng, r) {
                    truth
                } else if r < 0.5 && coin(&mut rng, config.false_unification) {
                    // Systematically-bad sources propagate the same rumor:
                    // the canonical lie for this cell (shared bloc). Good
                    // sources' occasional errors stay idiosyncratic.
                    (truth % config.domain) + 1
                } else {
                    false_int(&mut rng, config.domain, truth)
                };
                let v = b.value(Value::int(value));
                b.claim_ids(src, obj, attr, v).expect("fresh cell");
            }
        }
    }

    let planted = tdac_partition::Planted {
        groups: config
            .partition
            .iter()
            .map(|g| {
                let mut ids: Vec<_> = g.iter().map(|&a| attributes[a]).collect();
                ids.sort_unstable();
                ids
            })
            .collect(),
    };

    let (dataset, truth) = b.build_with_truth();
    SyntheticDataset {
        dataset,
        truth,
        planted,
        reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig::ds1().scaled(30)
    }

    #[test]
    fn shape_matches_config() {
        let d = generate_synthetic(&small());
        assert_eq!(d.dataset.n_sources(), 10);
        assert_eq!(d.dataset.n_objects(), 30);
        assert_eq!(d.dataset.n_attributes(), 6);
        // Full coverage: every (source, object, attribute) claimed.
        assert_eq!(d.dataset.n_claims(), 10 * 30 * 6);
        assert_eq!(d.truth.len(), 30 * 6);
    }

    #[test]
    fn full_scale_ds1_has_sixty_thousand_observations() {
        let d = generate_synthetic(&SyntheticConfig::ds1());
        assert_eq!(d.dataset.n_claims(), 60_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_synthetic(&small());
        let b = generate_synthetic(&small());
        assert_eq!(a.dataset.n_claims(), b.dataset.n_claims());
        assert_eq!(a.reliability, b.reliability);
        let mut cfg = small();
        cfg.seed ^= 1;
        let c = generate_synthetic(&cfg);
        assert_ne!(a.reliability, c.reliability, "different seed, different draw");
    }

    #[test]
    fn perfect_sources_are_always_right() {
        let mut cfg = small();
        cfg.level_jitter = 0.0; // keep the 1.0 level exactly (clamped to 0.98 otherwise)
        let d = generate_synthetic(&cfg);
        // Any (source, group) with reliability 1.0 must match truth on
        // every claim of that group's attributes.
        for (si, rels) in d.reliability.iter().enumerate() {
            for (gi, &r) in rels.iter().enumerate() {
                if r < 1.0 {
                    continue;
                }
                let group = &d.planted.groups[gi];
                let src = d.dataset.source_id(&format!("s{si}")).unwrap();
                for claim in d.dataset.claims_of_source(src) {
                    if group.contains(&claim.attribute) {
                        let t = d.truth.get(claim.object, claim.attribute).unwrap();
                        assert_eq!(claim.value, t, "reliability-1.0 source was wrong");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_reliability_sources_are_never_right() {
        let mut cfg = small();
        cfg.levels = vec![0.0];
        cfg.level_jitter = 0.0;
        let d = generate_synthetic(&cfg);
        for claim in d.dataset.claims() {
            let t = d.truth.get(claim.object, claim.attribute).unwrap();
            assert_ne!(claim.value, t);
        }
    }

    #[test]
    fn coverage_thins_claims() {
        let mut cfg = small();
        cfg.coverage = 0.5;
        let d = generate_synthetic(&cfg);
        let full = 10 * 30 * 6;
        assert!(d.dataset.n_claims() < full);
        assert!(d.dataset.n_claims() > full / 4, "not catastrophically thin");
    }

    #[test]
    fn planted_partition_covers_all_attributes() {
        let d = generate_synthetic(&small());
        let total: usize = d.planted.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert_eq!(d.planted.groups.len(), 4, "DS1 has four planted groups");
    }

    #[test]
    #[should_panic(expected = "cover all attributes")]
    fn rejects_non_covering_partition() {
        let mut cfg = small();
        cfg.partition = vec![vec![0, 1]];
        generate_synthetic(&cfg);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn rejects_overlapping_partition() {
        let mut cfg = small();
        cfg.partition = vec![vec![0, 1, 2], vec![2, 3, 4, 5]];
        generate_synthetic(&cfg);
    }

    #[test]
    fn truth_values_live_in_domain() {
        let d = generate_synthetic(&small());
        for (_, _, v) in d.truth.iter() {
            match d.dataset.value(v) {
                Value::Int(x) => assert!((1..=20).contains(x)),
                other => panic!("unexpected truth value {other:?}"),
            }
        }
    }
}
