#![warn(missing_docs)]

//! # tdac-datagen — workload generators for the TD-AC experiments
//!
//! The paper evaluates on three families of data; none of the non-trivial
//! ones are redistributable, so this crate rebuilds each as a seeded,
//! parameterized simulator (see DESIGN.md §2 for the substitution
//! arguments):
//!
//! * [`synthetic`] — a re-derivation of the synthetic generator of
//!   Ba et al. (WebDB 2015): attributes carry a *planted partition*, each
//!   source draws one reliability level per attribute group from the
//!   configuration's `{m1, m2, m3}` profile, and claims are true with
//!   that probability. Presets [`synthetic::SyntheticConfig::ds1`],
//!   [`synthetic::SyntheticConfig::ds2`] and
//!   [`synthetic::SyntheticConfig::ds3`] reproduce the paper's DS1–DS3
//!   (6 attributes × 1000 objects × 10 sources = 60 000 observations).
//! * [`exam`] — the private 248-student × 124-question admission-exam
//!   dataset, rebuilt structurally: 9 domains with the paper's
//!   mandatory / either-or / optional participation rules (which is what
//!   produces the 81 % / 55 % / 36 % coverage of the 32/62/124-attribute
//!   slices), per-student per-domain skill, and synthetic false answers
//!   drawn from ranges of size 25/50/100/1000.
//! * [`stocks`] / [`flights`] — simulators shaped to the Li et al.
//!   (VLDB 2013) deep-web datasets' published statistics (paper Table 8),
//!   with heterogeneous per-source quality (Stocks) and copier cliques
//!   (Flights).
//!
//! All generators take an explicit seed and are bit-for-bit reproducible.

pub mod corrupt;
pub mod exam;
pub mod flights;
pub mod stocks;
pub mod synthetic;
pub(crate) mod util;

pub use corrupt::{add_noise, drop_claims, inject_copiers};
pub use exam::{generate_exam, ExamConfig};
pub use flights::{generate_flights, FlightsConfig};
pub use stocks::{generate_stocks, StocksConfig};
pub use synthetic::{generate_synthetic, SyntheticConfig, SyntheticDataset};
