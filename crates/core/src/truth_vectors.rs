//! Attribute truth vectors — the paper's abstract representation of the
//! truth in the data (§3.1, Eq. 1).
//!
//! For a reference truth `v_F(a, o)` produced by a base algorithm, the
//! truth vector of attribute `a` has one coordinate per `(object,
//! source)` pair:
//!
//! ```text
//! x(a, o, s) = 1  if v(a, o, s) exists and equals v_F(a, o)
//!              0  otherwise
//! ```
//!
//! Two attributes end up with nearby truth vectors exactly when sources
//! perform equally well on them — i.e. when they are structurally
//! correlated — which is what lets plain k-means recover the hidden
//! attribute grouping.

use clustering::{BitMatrix, Matrix, Rows};
use td_algorithms::{TruthDiscovery, TruthResult};
use td_model::DatasetView;

/// The attribute truth vectors of Eq. 1 in both representations the
/// distance layer can consume: the dense `f64` matrix k-means needs and
/// the same rows bit-packed for the popcount Hamming kernel.
///
/// Both are built in one scatter pass over the view's claims, so they
/// agree by construction; [`TruthVectors::rows`] hands them to
/// `clustering` as [`Rows::Dual`], letting the kernel choose per metric
/// without converting.
#[derive(Debug, Clone)]
pub struct TruthVectors {
    /// Dense Eq. 1 matrix (attributes × object-source pairs).
    pub dense: Matrix,
    /// The same 0/1 rows packed into `u64` words.
    pub packed: BitMatrix,
}

impl TruthVectors {
    /// Rebuilds the dual representation from an already-packed matrix —
    /// the `td-store` load path. The dense side is unpacked from the
    /// words; since truth vectors are exactly 0/1, the result is
    /// bit-identical to the matrix the scatter pass would have built
    /// against the same reference.
    pub fn from_packed(packed: BitMatrix) -> Self {
        Self {
            dense: packed.to_dense(),
            packed,
        }
    }

    /// Both representations, for representation-aware distance kernels.
    pub fn rows(&self) -> Rows<'_> {
        Rows::Dual {
            dense: &self.dense,
            packed: &self.packed,
        }
    }

    /// Appends `extra` all-zero attribute rows to both representations,
    /// keeping them in lockstep. New attributes always arrive with
    /// claims, so the incremental engine rescatters the appended rows
    /// right after via [`rescatter_rows`].
    pub fn append_attribute_rows(&mut self, extra: usize) {
        self.dense.append_zero_rows(extra);
        self.packed.append_zero_rows(extra);
    }

    /// Appends `extra` all-zero `(object, source)` columns to both
    /// representations. Because the column index is
    /// `object.index() * n_sources + source.index()`, **new objects**
    /// extend the column space purely at the tail (their block of
    /// `n_sources` columns comes after every existing one), so existing
    /// entries keep their coordinates bit-for-bit. New *sources* shift
    /// every object's block and need a full rebuild instead — the
    /// session enforces that distinction.
    pub fn append_pair_cols(&mut self, extra: usize) {
        self.dense.append_cols(extra);
        self.packed.append_cols(extra);
    }
}

/// Rescatters the truth-vector rows of the `dirty` attributes against
/// `reference`, leaving every other row untouched bit-for-bit.
///
/// A dirty row is first cleared to all-zero, then rebuilt by the same
/// claim scatter as [`truth_vector_set_from_result`] — so a rescattered
/// row is *identical* to the row a from-scratch build would produce,
/// which is what lets the incremental session maintain the matrix
/// instead of rebuilding it. Dirty attributes outside the view are
/// ignored.
pub fn rescatter_rows(
    vectors: &mut TruthVectors,
    view: &DatasetView<'_>,
    reference: &TruthResult,
    dirty: &[td_model::AttributeId],
) {
    let dataset = view.dataset();
    let n_sources = dataset.n_sources();
    let n_cols = vectors.dense.n_cols();
    let mut row_of = vec![usize::MAX; dataset.n_attributes()];
    for (r, a) in view.attributes().iter().enumerate() {
        row_of[a.index()] = r;
    }
    let mut dirty_row = vec![false; view.attributes().len()];
    for a in dirty {
        let row = row_of[a.index()];
        if row == usize::MAX {
            continue;
        }
        dirty_row[row] = true;
        for c in 0..n_cols {
            vectors.dense.set(row, c, 0.0);
        }
        vectors.packed.clear_row(row);
    }
    for cell in view.cells() {
        let row = row_of[cell.attribute.index()];
        if row == usize::MAX || !dirty_row[row] {
            continue;
        }
        let Some(truth) = reference.prediction(cell.object, cell.attribute) else {
            continue;
        };
        for claim in view.cell_claims(cell) {
            if claim.value == truth {
                let col = cell.object.index() * n_sources + claim.source.index();
                vectors.dense.set(row, col, 1.0);
                vectors.packed.set_bit(row, col, true);
            }
        }
    }
}

/// Runs `base` on `view` and builds the truth-vector matrix: one row per
/// attribute of the view (in `view.attributes()` order), one column per
/// `(object, source)` pair (objects × sources of the parent dataset,
/// lexicographic).
///
/// Returns the matrix and the base run's result (so TD-AC can reuse the
/// reference truth instead of re-running `F`). The reference base run is
/// recorded against `observer` (fixpoint iterations, per-algorithm
/// label); observation never changes the matrix or the reference. Use
/// [`truth_vector_set`] when the packed representation is wanted too.
pub fn truth_vector_matrix(
    base: &dyn TruthDiscovery,
    view: &DatasetView<'_>,
    observer: &td_obs::Observer,
) -> (Matrix, TruthResult) {
    let reference = base.discover_observed(view, observer);
    let matrix = truth_vectors_from_result(view, &reference);
    (matrix, reference)
}

/// Like [`truth_vector_matrix`] but returns the dual-representation
/// [`TruthVectors`] (dense + bit-packed, built in one pass) — what the
/// TD-AC pipeline feeds the representation-aware distance kernel.
pub fn truth_vector_set(
    base: &dyn TruthDiscovery,
    view: &DatasetView<'_>,
    observer: &td_obs::Observer,
) -> (TruthVectors, TruthResult) {
    let reference = base.discover_observed(view, observer);
    let vectors = truth_vector_set_from_result(view, &reference);
    (vectors, reference)
}

/// Builds the truth-vector matrix against an already-computed reference
/// truth (Eq. 1 verbatim; useful for testing and for oracle variants
/// where the reference is the ground truth).
pub fn truth_vectors_from_result(view: &DatasetView<'_>, reference: &TruthResult) -> Matrix {
    truth_vector_set_from_result(view, reference).dense
}

/// Builds both representations of the truth vectors against an
/// already-computed reference truth, scattering each matching claim into
/// the dense matrix and the packed words in the same pass.
pub fn truth_vector_set_from_result(
    view: &DatasetView<'_>,
    reference: &TruthResult,
) -> TruthVectors {
    let dataset = view.dataset();
    let n_objects = dataset.n_objects();
    let n_sources = dataset.n_sources();
    let attrs = view.attributes();
    let n_attrs = attrs.len();

    // Row index per attribute id for O(1) scatter.
    let mut row_of = vec![usize::MAX; dataset.n_attributes()];
    for (r, a) in attrs.iter().enumerate() {
        row_of[a.index()] = r;
    }

    let n_cols = n_objects * n_sources;
    let mut m = Matrix::zeros(n_attrs, n_cols);
    let mut bits = BitMatrix::zeros(n_attrs, n_cols);
    for cell in view.cells() {
        let Some(truth) = reference.prediction(cell.object, cell.attribute) else {
            continue;
        };
        let row = row_of[cell.attribute.index()];
        for claim in view.cell_claims(cell) {
            if claim.value == truth {
                let col = cell.object.index() * n_sources + claim.source.index();
                m.set(row, col, 1.0);
                bits.set_bit(row, col, true);
            }
        }
    }
    TruthVectors {
        dense: m,
        packed: bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::MajorityVote;
    use td_model::{Dataset, DatasetBuilder, Value};

    /// The paper's running example (Table 1): objects FB and CS, three
    /// questions, three sources.
    fn running_example() -> Dataset {
        let mut b = DatasetBuilder::new();
        let rows: &[(&str, &str, &str, Value)] = &[
            ("s1", "FB", "Q1", Value::text("Algeria")),
            ("s2", "FB", "Q1", Value::text("Senegal")),
            ("s3", "FB", "Q1", Value::text("Algeria")),
            ("s1", "FB", "Q2", Value::int(2000)),
            ("s2", "FB", "Q2", Value::int(2019)),
            ("s3", "FB", "Q2", Value::int(1994)),
            ("s1", "FB", "Q3", Value::int(12)),
            ("s2", "FB", "Q3", Value::int(11)),
            ("s3", "FB", "Q3", Value::int(12)),
            ("s1", "CS", "Q1", Value::text("Linus Torvalds")),
            ("s2", "CS", "Q1", Value::text("Bill Gates")),
            ("s3", "CS", "Q1", Value::text("Steve Jobs")),
            ("s1", "CS", "Q2", Value::int(1830)),
            ("s2", "CS", "Q2", Value::int(1991)),
            ("s3", "CS", "Q2", Value::int(1991)),
            ("s1", "CS", "Q3", Value::int(7)),
            ("s2", "CS", "Q3", Value::int(8)),
            ("s3", "CS", "Q3", Value::int(10)),
        ];
        for (s, o, a, v) in rows {
            b.claim(s, o, a, v.clone()).unwrap();
        }
        b.build()
    }

    #[test]
    fn matrix_shape_is_attrs_by_object_source_pairs() {
        let d = running_example();
        let (m, _) = truth_vector_matrix(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        assert_eq!(m.n_rows(), 3); // Q1..Q3
        assert_eq!(m.n_cols(), 2 * 3); // 2 objects × 3 sources
    }

    #[test]
    fn entries_match_equation_one_with_majority_reference() {
        let d = running_example();
        let (m, reference) = truth_vector_matrix(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        // Majority on FB-Q1: Algeria (2 votes). s1 and s3 match.
        let fb = d.object_id("FB").unwrap();
        let q1 = d.attribute_id("Q1").unwrap();
        assert_eq!(
            reference.prediction(fb, q1),
            Some(d.value_id(&Value::text("Algeria")).unwrap())
        );
        let n_sources = d.n_sources();
        let s = |name: &str| d.source_id(name).unwrap().index();
        let row_q1 = m.row(q1.index());
        let col = |o: usize, src: usize| o * n_sources + src;
        assert_eq!(row_q1[col(fb.index(), s("s1"))], 1.0);
        assert_eq!(row_q1[col(fb.index(), s("s2"))], 0.0);
        assert_eq!(row_q1[col(fb.index(), s("s3"))], 1.0);
    }

    #[test]
    fn missing_claims_are_zero() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(1)).unwrap();
        b.claim("s2", "o", "a", Value::int(1)).unwrap();
        b.source("absent");
        let d = b.build();
        let (m, _) = truth_vector_matrix(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let absent = d.source_id("absent").unwrap();
        assert_eq!(m.get(0, absent.index()), 0.0, "no claim ⇒ 0 (Eq. 1)");
    }

    #[test]
    fn correlated_attributes_have_identical_rows() {
        // Two attributes answered identically by every source must yield
        // identical truth vectors.
        let mut b = DatasetBuilder::new();
        for o in ["o1", "o2"] {
            for (s, v) in [("s1", 1), ("s2", 1), ("s3", 9)] {
                b.claim(s, o, "a1", Value::int(v)).unwrap();
                b.claim(s, o, "a2", Value::int(v)).unwrap();
            }
        }
        let d = b.build();
        let (m, _) = truth_vector_matrix(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        assert_eq!(m.row(0), m.row(1));
    }

    #[test]
    fn view_restriction_shrinks_rows_not_columns() {
        let d = running_example();
        let q2 = d.attribute_id("Q2").unwrap();
        let (m, _) = truth_vector_matrix(&MajorityVote, &d.view_of(&[q2]), &td_obs::Observer::disabled());
        assert_eq!(m.n_rows(), 1);
        assert_eq!(m.n_cols(), 6);
    }

    #[test]
    fn dual_representations_agree_bit_for_bit() {
        let d = running_example();
        let (tv, reference) =
            truth_vector_set(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        assert_eq!(tv.packed.to_dense(), tv.dense);
        assert_eq!(tv.dense, truth_vectors_from_result(&d.view_all(), &reference));
        assert_eq!(tv.rows().n_rows(), tv.dense.n_rows());
        assert_eq!(tv.rows().n_cols(), tv.dense.n_cols());
    }

    #[test]
    fn rescatter_matches_from_scratch_build() {
        // Rebuild one attribute's row against a *different* reference
        // (the ground-truth-free MajorityVote of a grown dataset) and
        // check the maintained matrix equals the from-scratch scatter.
        let d = running_example();
        let view = d.view_all();
        let (mut tv, reference) =
            truth_vector_set(&MajorityVote, &view, &td_obs::Observer::disabled());

        // Rescattering every attribute against the same reference is a
        // no-op bit-for-bit.
        let all: Vec<_> = d.attribute_ids().collect();
        let before = tv.clone();
        rescatter_rows(&mut tv, &view, &reference, &all);
        assert_eq!(tv.dense, before.dense);
        assert_eq!(tv.packed.to_dense(), before.packed.to_dense());

        // Corrupt one row, then rescatter only that attribute: the row
        // comes back, the others were never touched.
        let q2 = d.attribute_id("Q2").unwrap();
        tv.dense.set(q2.index(), 0, 0.5);
        tv.packed.set_bit(q2.index(), 0, true);
        rescatter_rows(&mut tv, &view, &reference, &[q2]);
        assert_eq!(tv.dense, before.dense);
        assert_eq!(tv.packed.to_dense(), before.packed.to_dense());
    }

    #[test]
    fn append_keeps_representations_in_lockstep() {
        let d = running_example();
        let (mut tv, _) =
            truth_vector_set(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let (rows, cols) = (tv.dense.n_rows(), tv.dense.n_cols());
        tv.append_attribute_rows(2);
        tv.append_pair_cols(67); // crosses a word boundary in the packed side
        assert_eq!(tv.dense.n_rows(), rows + 2);
        assert_eq!(tv.dense.n_cols(), cols + 67);
        assert_eq!(tv.packed.to_dense(), tv.dense);
    }

    #[test]
    fn values_are_binary() {
        let d = running_example();
        let (m, _) = truth_vector_matrix(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        for v in m.as_slice() {
            assert!(*v == 0.0 || *v == 1.0);
        }
    }
}
