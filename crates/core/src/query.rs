//! The first-class query surface over truth-discovery outcomes.
//!
//! Everything that *consumes* a run — the `tdc` CLI, the td-serve
//! network front end, examples — used to hand-roll lookups over
//! [`TruthResult`]/[`TdacOutcome`] and re-resolve ids to names ad hoc.
//! [`TruthQuery`] and [`QueryResponse`] replace that with one typed,
//! serializable vocabulary: a query names entities by their *string*
//! names, and the response carries name-resolved predictions, source
//! trust scores, the run's degradation flag and its profile deltas.
//!
//! The response is deliberately byte-stable: predictions are sorted by
//! `(ObjectId, AttributeId)` and trust scores by `SourceId`, so two
//! answers computed from bit-identical results serialize identically —
//! the property the serving layer's bit-identity oracle leans on.
//!
//! ```
//! use td_model::{DatasetBuilder, Value};
//! use td_algorithms::{MajorityVote, TruthDiscovery};
//! use tdac_core::TruthQuery;
//!
//! let mut b = DatasetBuilder::new();
//! b.claim("s1", "o", "a", Value::text("x")).unwrap();
//! b.claim("s2", "o", "a", Value::text("x")).unwrap();
//! b.claim("s3", "o", "a", Value::text("y")).unwrap();
//! let dataset = b.build();
//! let result = MajorityVote.discover(&dataset.view_all());
//!
//! let resp = TruthQuery::Attribute("o".into(), "a".into())
//!     .answer_result(&dataset, &result)
//!     .unwrap();
//! assert_eq!(resp.predictions.len(), 1);
//! assert_eq!(resp.predictions[0].value, Value::text("x"));
//! ```

use serde::{Deserialize, Serialize};

use td_algorithms::TruthResult;
use td_model::{Dataset, ModelError, Value};
use td_obs::{Degradation, RunProfile};

use crate::tdac::TdacOutcome;

/// A truth query, naming entities by their dataset names.
///
/// Variants are tuple-shaped (not struct-shaped) so the vendored serde
/// derive can handle them; on the wire they serialize externally
/// tagged, e.g. `"All"`, `{"Object":"o1"}`, `{"Attribute":["o1","a"]}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TruthQuery {
    /// Every prediction and every source trust score.
    All,
    /// All predicted attributes of one object (by object name).
    Object(String),
    /// One cell: `(object name, attribute name)`.
    Attribute(String, String),
    /// One source's trust score (by source name).
    Source(String),
}

/// One name-resolved prediction: the selected value for a cell and the
/// confidence the base algorithm assigned it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Object name.
    pub object: String,
    /// Attribute name.
    pub attribute: String,
    /// The selected value.
    pub value: Value,
    /// Confidence of the selected value.
    pub confidence: f64,
}

/// One source's final trust score, name-resolved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceTrust {
    /// Source name.
    pub source: String,
    /// Final trust / accuracy score.
    pub trust: f64,
}

/// The answer to a [`TruthQuery`].
///
/// `predictions` is sorted by `(ObjectId, AttributeId)` and `sources`
/// by `SourceId` — dataset interning order, which is deterministic —
/// so equal results produce byte-equal serializations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Name-resolved predictions matching the query.
    pub predictions: Vec<Prediction>,
    /// Name-resolved source trust scores matching the query.
    pub sources: Vec<SourceTrust>,
    /// `Some` when the run that produced the underlying result was
    /// degraded (budget exhausted / cancelled) — the answer is
    /// best-so-far, not complete. Consumers must surface this flag.
    #[serde(default)]
    pub degradation: Option<Degradation>,
    /// Per-run (or, in td-serve, per-request) profile counter deltas,
    /// when observation was enabled.
    #[serde(default)]
    pub profile: Option<RunProfile>,
}

impl TruthQuery {
    /// Answers the query against a TD-AC outcome, forwarding the
    /// outcome's degradation flag and profile deltas into the
    /// response.
    pub fn answer(
        &self,
        dataset: &Dataset,
        outcome: &TdacOutcome,
    ) -> Result<QueryResponse, ModelError> {
        let mut resp = self.answer_result(dataset, &outcome.result)?;
        resp.degradation = outcome.degradation.clone();
        resp.profile = outcome.profile.clone();
        Ok(resp)
    }

    /// Answers the query against a bare [`TruthResult`] (a plain base
    /// run with no degradation/profile channel).
    ///
    /// Unknown names yield [`ModelError::UnknownEntity`] carrying the
    /// entity kind and the offending name; a resolvable cell with no
    /// prediction yields an empty `predictions` list, not an error.
    pub fn answer_result(
        &self,
        dataset: &Dataset,
        result: &TruthResult,
    ) -> Result<QueryResponse, ModelError> {
        let mut resp = QueryResponse::default();
        match self {
            TruthQuery::All => {
                resp.predictions = sorted_predictions(dataset, result, None);
                resp.sources = all_sources(dataset, result);
            }
            TruthQuery::Object(object) => {
                let oid = dataset.object_id(object).ok_or_else(|| {
                    ModelError::UnknownEntity {
                        kind: "object",
                        name: object.clone(),
                    }
                })?;
                resp.predictions = sorted_predictions(dataset, result, Some(oid));
            }
            TruthQuery::Attribute(object, attribute) => {
                let oid = dataset.object_id(object).ok_or_else(|| {
                    ModelError::UnknownEntity {
                        kind: "object",
                        name: object.clone(),
                    }
                })?;
                let aid = dataset.attribute_id(attribute).ok_or_else(|| {
                    ModelError::UnknownEntity {
                        kind: "attribute",
                        name: attribute.clone(),
                    }
                })?;
                if let (Some(v), Some(c)) =
                    (result.prediction(oid, aid), result.confidence(oid, aid))
                {
                    resp.predictions.push(Prediction {
                        object: object.clone(),
                        attribute: attribute.clone(),
                        value: dataset.value(v).clone(),
                        confidence: c,
                    });
                }
            }
            TruthQuery::Source(source) => {
                let sid = dataset.source_id(source).ok_or_else(|| {
                    ModelError::UnknownEntity {
                        kind: "source",
                        name: source.clone(),
                    }
                })?;
                let trust =
                    result.source_trust.get(sid.index()).copied().unwrap_or(0.0);
                resp.sources.push(SourceTrust {
                    source: source.clone(),
                    trust,
                });
            }
        }
        Ok(resp)
    }
}

/// All predictions (optionally restricted to one object), sorted by
/// `(ObjectId, AttributeId)` for byte-stable output.
fn sorted_predictions(
    dataset: &Dataset,
    result: &TruthResult,
    object: Option<td_model::ObjectId>,
) -> Vec<Prediction> {
    let mut rows: Vec<_> = result
        .iter()
        .filter(|&(o, _, _, _)| object.map_or(true, |want| o == want))
        .collect();
    rows.sort_by_key(|&(o, a, _, _)| (o, a));
    rows.into_iter()
        .map(|(o, a, v, c)| Prediction {
            object: dataset.object_name(o).to_string(),
            attribute: dataset.attribute_name(a).to_string(),
            value: dataset.value(v).clone(),
            confidence: c,
        })
        .collect()
}

/// Every source's trust score, in `SourceId` order.
fn all_sources(dataset: &Dataset, result: &TruthResult) -> Vec<SourceTrust> {
    dataset
        .source_ids()
        .map(|sid| SourceTrust {
            source: dataset.source_name(sid).to_string(),
            trust: result.source_trust.get(sid.index()).copied().unwrap_or(0.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::{MajorityVote, TruthDiscovery};
    use td_model::DatasetBuilder;

    fn fixture() -> (Dataset, TruthResult) {
        let mut b = DatasetBuilder::new();
        for o in ["o1", "o2"] {
            for a in ["a1", "a2"] {
                b.claim("s1", o, a, Value::text("x")).unwrap();
                b.claim("s2", o, a, Value::text("x")).unwrap();
                b.claim("s3", o, a, Value::text("y")).unwrap();
            }
        }
        let dataset = b.build();
        let result = MajorityVote.discover(&dataset.view_all());
        (dataset, result)
    }

    #[test]
    fn all_returns_every_cell_sorted() {
        let (dataset, result) = fixture();
        let resp = TruthQuery::All.answer_result(&dataset, &result).unwrap();
        assert_eq!(resp.predictions.len(), 4);
        let cells: Vec<_> = resp
            .predictions
            .iter()
            .map(|p| (p.object.as_str(), p.attribute.as_str()))
            .collect();
        assert_eq!(
            cells,
            vec![("o1", "a1"), ("o1", "a2"), ("o2", "a1"), ("o2", "a2")]
        );
        assert_eq!(resp.sources.len(), 3);
        assert_eq!(resp.sources[0].source, "s1");
        assert!(resp.degradation.is_none());
        assert!(resp.profile.is_none());
    }

    #[test]
    fn object_query_restricts_and_attribute_query_pinpoints() {
        let (dataset, result) = fixture();
        let resp = TruthQuery::Object("o2".into())
            .answer_result(&dataset, &result)
            .unwrap();
        assert_eq!(resp.predictions.len(), 2);
        assert!(resp.predictions.iter().all(|p| p.object == "o2"));
        assert!(resp.sources.is_empty());

        let resp = TruthQuery::Attribute("o1".into(), "a2".into())
            .answer_result(&dataset, &result)
            .unwrap();
        assert_eq!(resp.predictions.len(), 1);
        assert_eq!(resp.predictions[0].value, Value::text("x"));
        assert!(resp.predictions[0].confidence > 0.5);
    }

    #[test]
    fn source_query_resolves_trust() {
        let (dataset, result) = fixture();
        let resp = TruthQuery::Source("s3".into())
            .answer_result(&dataset, &result)
            .unwrap();
        assert_eq!(resp.sources.len(), 1);
        assert_eq!(resp.sources[0].source, "s3");
        let all = TruthQuery::All.answer_result(&dataset, &result).unwrap();
        assert_eq!(
            resp.sources[0].trust.to_bits(),
            all.sources[2].trust.to_bits()
        );
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let (dataset, result) = fixture();
        for (q, kind, name) in [
            (TruthQuery::Object("ghost".into()), "object", "ghost"),
            (
                TruthQuery::Attribute("o1".into(), "zz".into()),
                "attribute",
                "zz",
            ),
            (TruthQuery::Source("nobody".into()), "source", "nobody"),
        ] {
            let err = q.answer_result(&dataset, &result).unwrap_err();
            assert_eq!(
                err,
                ModelError::UnknownEntity {
                    kind,
                    name: name.into()
                }
            );
        }
    }

    #[test]
    fn answer_forwards_degradation_and_profile() {
        use crate::{Tdac, TdacConfig};
        let (dataset, _) = fixture();
        let cfg = TdacConfig::builder()
            .observer(td_obs::Observer::enabled())
            .build()
            .unwrap();
        let outcome = Tdac::new(cfg).run(&MajorityVote, &dataset).unwrap();
        let resp = TruthQuery::All.answer(&dataset, &outcome).unwrap();
        assert!(resp.profile.is_some(), "enabled observer must surface deltas");
        assert_eq!(resp.degradation.is_some(), outcome.degradation.is_some());
    }

    #[test]
    fn query_round_trips_through_json() {
        for q in [
            TruthQuery::All,
            TruthQuery::Object("o1".into()),
            TruthQuery::Attribute("o1".into(), "a2".into()),
            TruthQuery::Source("s3".into()),
        ] {
            let json = serde_json::to_string(&q).unwrap();
            let back: TruthQuery = serde_json::from_str(&json).unwrap();
            assert_eq!(back, q);
        }
    }

    #[test]
    fn response_serialization_is_byte_stable() {
        let (dataset, result) = fixture();
        let a = TruthQuery::All.answer_result(&dataset, &result).unwrap();
        let b = TruthQuery::All.answer_result(&dataset, &result).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let back: QueryResponse =
            serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        assert_eq!(back.predictions, a.predictions);
        assert_eq!(back.sources, a.sources);
    }
}
