//! Where a TD-AC run executes: the unified `ExecutionBackend` knob.
//!
//! Before this module the config carried two loose parallelism knobs
//! (`parallelism`, `kernel`) and no way to express multi-process
//! execution at all. [`ExecutionBackend`] collapses them into one typed
//! choice: run everything inside this process under a rayon pool
//! ([`ExecutionBackend::InProcess`]), or distribute the per-group base
//! runs across worker *processes* according to a [`ShardPlan`]
//! ([`ExecutionBackend::Sharded`]). The legacy fields remain as
//! doc-deprecated shims for one release — see
//! [`crate::TdacConfig::effective_parallelism`].
//!
//! The sharded backend is *planned* here (the types live in the core
//! crate so [`crate::TdacConfig`] can carry and validate them) but
//! *executed* by the `td-shard` crate's coordinator, which spawns the
//! workers and merges their partials. [`crate::Tdac::run`] itself
//! rejects a sharded config with a typed error rather than silently
//! running in-process — picking the executor is the caller's decision,
//! not a fallback.

use serde::{Deserialize, Serialize};

use crate::config::Parallelism;
use clustering::KernelPolicy;

/// How claims are partitioned across worker processes.
///
/// Both strategies are *exact*: the coordinator performs model
/// selection (reference run, truth vectors, silhouette sweep) globally
/// and distributes only step 4's per-group base runs, so the merged
/// outcome is bit-identical to a single-process run. They differ in
/// what each worker's store slice contains and which base algorithms
/// they support — see `docs/SHARDING.md` for the trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// Slice by object: claims whose object name FNV-1a-hashes into a
    /// shard's bucket go to that shard, and every shard runs every
    /// attribute group restricted to its bucket. Balances load even
    /// when one attribute group dominates, but requires a base
    /// algorithm whose per-cell predictions are cell-local and whose
    /// trust is reconstructible from predictions (e.g. `MajorityVote`);
    /// others are rejected with a typed error.
    HashByObject,
    /// Slice by attribute group: group `i` of the selected partition is
    /// assigned to shard `i mod shards`, and each shard's slice holds
    /// its groups' claims in full. Exact for *any* base algorithm (a
    /// group run sees exactly the claims it would see in-process), but
    /// load balance is only as good as the group-size distribution.
    ByAttributeGroup,
}

/// How the coordinator responds when a shard's worker process dies,
/// stalls, or garbles the wire protocol.
///
/// The default (`max_attempts: 1`) is fail-fast: the first fault aborts
/// the run with the same typed `ShardError` earlier releases produced,
/// so existing configs behave identically. Raising `max_attempts` opts
/// into the supervisor's retry ladder: each faulted shard is killed
/// alone, its buffered partials discarded, and a fresh worker re-spawned
/// from the shard's already-persisted `.tds` slice after a capped
/// exponential backoff. When attempts exhaust, the coordinator runs the
/// shard's jobs *in-process* and flags the outcome with
/// [`td_obs::DegradationReason::ShardFallback`] — the merge is complete
/// either way, never thinned.
///
/// Backoff is fully deterministic: the per-attempt jitter is derived
/// from `(shard, attempt)`, not a wall-clock or RNG source, so retry
/// schedules are reproducible in tests. See
/// [`RetryPolicy::backoff_delay_ms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total worker-process attempts per shard, counting the first
    /// spawn (must be at least 1). `1` = fail-fast, no supervisor.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds; doubles per
    /// further attempt until `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    /// Ceiling on any single backoff delay, jitter included (must be at
    /// least `backoff_base_ms`).
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
        }
    }
}

impl Serialize for RetryPolicy {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("max_attempts".to_string(), self.max_attempts.to_value());
        m.insert(
            "backoff_base_ms".to_string(),
            self.backoff_base_ms.to_value(),
        );
        m.insert("backoff_cap_ms".to_string(), self.backoff_cap_ms.to_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for RetryPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for RetryPolicy"))?;
        let d = RetryPolicy::default();
        Ok(RetryPolicy {
            max_attempts: match obj.get("max_attempts") {
                Some(fv) => Deserialize::from_value(fv)
                    .map_err(|e| e.context("RetryPolicy.max_attempts"))?,
                None => d.max_attempts,
            },
            backoff_base_ms: match obj.get("backoff_base_ms") {
                Some(fv) => Deserialize::from_value(fv)
                    .map_err(|e| e.context("RetryPolicy.backoff_base_ms"))?,
                None => d.backoff_base_ms,
            },
            backoff_cap_ms: match obj.get("backoff_cap_ms") {
                Some(fv) => Deserialize::from_value(fv)
                    .map_err(|e| e.context("RetryPolicy.backoff_cap_ms"))?,
                None => d.backoff_cap_ms,
            },
        })
    }
}

impl RetryPolicy {
    /// A policy that retries up to `max_attempts` total spawns with the
    /// default backoff curve.
    pub fn with_attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            ..Self::default()
        }
    }

    /// Whether a fault on a shard aborts the run immediately (today's
    /// pre-supervisor behavior, and the default).
    pub fn is_fail_fast(&self) -> bool {
        self.max_attempts <= 1
    }

    /// Validates the policy; the message names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err(
                "backend.retry.max_attempts must be at least 1 (the first spawn counts)"
                    .to_string(),
            );
        }
        if self.backoff_cap_ms < self.backoff_base_ms {
            return Err(
                "backend.retry.backoff_cap_ms must be at least backoff_base_ms".to_string(),
            );
        }
        Ok(())
    }

    /// Milliseconds to wait before spawning `attempt` (1-based) of
    /// `shard`. The first attempt is immediate; attempt *n* ≥ 2 waits
    /// `base · 2^(n-2)` capped at `backoff_cap_ms`, plus a deterministic
    /// jitter in `[0, base/2]` derived by hashing `(shard, attempt)` —
    /// no wall clock, no RNG, so the schedule is a pure function and
    /// reproducible in tests. The jittered total is clamped to the cap.
    pub fn backoff_delay_ms(&self, shard: usize, attempt: u32) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let exp = (attempt - 2).min(32);
        let raw = self
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.backoff_cap_ms);
        let spread = self.backoff_base_ms / 2 + 1;
        let jitter = jitter_hash(shard, attempt) % spread;
        raw.saturating_add(jitter).min(self.backoff_cap_ms)
    }
}

/// FNV-1a over the little-endian bytes of `(shard, attempt)` — the
/// deterministic jitter source for [`RetryPolicy::backoff_delay_ms`].
fn jitter_hash(shard: usize, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in (shard as u64)
        .to_le_bytes()
        .into_iter()
        .chain(attempt.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A coordinator's plan for one sharded run: the partitioning strategy,
/// the worker-process count, and per-worker execution settings.
///
/// Carried by [`ExecutionBackend::Sharded`] and validated by
/// [`crate::TdacConfigBuilder::build`] (zero shards are rejected).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// How claims are split across workers.
    pub strategy: ShardStrategy,
    /// Number of worker processes (must be at least 1).
    pub shards: usize,
    /// Thread budget *inside each worker process*; defaults to one
    /// thread per worker, the honest setting for measuring process
    /// scaling.
    pub worker_parallelism: Parallelism,
    /// Per-shard wall-clock deadline in milliseconds, mapped onto each
    /// worker's [`td_obs::ExecutionLimits`] exactly like a td-serve
    /// request deadline. A worker that blows it reports a flagged
    /// degradation — the coordinator then returns a *degraded* outcome,
    /// never a partial merge. `None` leaves workers unlimited.
    pub worker_deadline_ms: Option<u64>,
    /// Extra patience the coordinator grants a worker beyond
    /// `worker_deadline_ms` before declaring it stalled. `None` keeps
    /// the legacy formula (4× the deadline, min deadline + 5 s); tests
    /// set a small grace so hang detection fires fast.
    pub worker_grace_ms: Option<u64>,
    /// What the coordinator does when a worker faults — see
    /// [`RetryPolicy`]. Defaults to fail-fast.
    pub retry: RetryPolicy,
}

// The vendored serde derive shim supports neither struct enum variants
// nor `#[serde(default = "fn")]`, so the plan and backend carry
// hand-written value-tree impls. The wire shapes match what upstream
// serde would emit for the same derives (externally tagged enum, named
// fields, defaulted absences), so configs are portable either way.

impl Serialize for ShardPlan {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("strategy".to_string(), self.strategy.to_value());
        m.insert("shards".to_string(), self.shards.to_value());
        m.insert(
            "worker_parallelism".to_string(),
            self.worker_parallelism.to_value(),
        );
        m.insert(
            "worker_deadline_ms".to_string(),
            self.worker_deadline_ms.to_value(),
        );
        m.insert(
            "worker_grace_ms".to_string(),
            self.worker_grace_ms.to_value(),
        );
        m.insert("retry".to_string(), self.retry.to_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for ShardPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for ShardPlan"))?;
        let field = |name: &str| obj.get(name).unwrap_or(&serde::Value::Null);
        Ok(ShardPlan {
            strategy: Deserialize::from_value(field("strategy"))
                .map_err(|e| e.context("ShardPlan.strategy"))?,
            shards: Deserialize::from_value(field("shards"))
                .map_err(|e| e.context("ShardPlan.shards"))?,
            worker_parallelism: match obj.get("worker_parallelism") {
                Some(fv) => Deserialize::from_value(fv)
                    .map_err(|e| e.context("ShardPlan.worker_parallelism"))?,
                None => single_thread(),
            },
            worker_deadline_ms: match obj.get("worker_deadline_ms") {
                Some(fv) => Deserialize::from_value(fv)
                    .map_err(|e| e.context("ShardPlan.worker_deadline_ms"))?,
                None => None,
            },
            worker_grace_ms: match obj.get("worker_grace_ms") {
                Some(fv) => Deserialize::from_value(fv)
                    .map_err(|e| e.context("ShardPlan.worker_grace_ms"))?,
                None => None,
            },
            retry: match obj.get("retry") {
                Some(fv) => {
                    Deserialize::from_value(fv).map_err(|e| e.context("ShardPlan.retry"))?
                }
                None => RetryPolicy::default(),
            },
        })
    }
}

fn single_thread() -> Parallelism {
    Parallelism::Threads(1)
}

impl ShardPlan {
    /// A plan with `shards` workers under the given strategy,
    /// single-threaded workers, and no deadline.
    pub fn new(strategy: ShardStrategy, shards: usize) -> Self {
        Self {
            strategy,
            shards,
            worker_parallelism: single_thread(),
            worker_deadline_ms: None,
            worker_grace_ms: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Validates the plan; the message names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("backend.shards must be at least 1".to_string());
        }
        if self.worker_deadline_ms == Some(0) {
            return Err(
                "backend.worker_deadline_ms must be positive when set (zero would degrade \
                 every shard instantly); use None for unlimited"
                    .to_string(),
            );
        }
        if self.worker_grace_ms == Some(0) {
            return Err(
                "backend.worker_grace_ms must be positive when set (zero would declare \
                 every worker stalled instantly); use None for the default patience"
                    .to_string(),
            );
        }
        self.retry.validate()
    }
}

/// The unified execution knob on [`crate::TdacConfig`].
///
/// Serialized configs from before this knob existed deserialize to
/// [`ExecutionBackend::default`] (in-process, auto parallelism), and
/// the legacy `parallelism` / `kernel` fields still win whenever the
/// backend carries the corresponding default — so every pre-existing
/// config keeps its exact meaning. See
/// [`crate::TdacConfig::effective_parallelism`] /
/// [`crate::TdacConfig::effective_kernel`] for the resolution rule.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionBackend {
    /// Everything runs inside this process under a rayon pool — the
    /// classic path, bit-identical at any thread count.
    InProcess {
        /// Thread budget for every parallel kernel (distance matrices,
        /// the k-sweep, per-group runs).
        parallelism: Parallelism,
        /// Distance-kernel policy for the shared pairwise matrix.
        kernels: KernelPolicy,
    },
    /// The per-group base runs are distributed across worker processes
    /// by the `td-shard` coordinator according to the plan.
    /// [`crate::Tdac::run`] rejects this backend with
    /// [`crate::TdacError::InvalidConfig`]; hand the config to
    /// `td_shard::ShardRunner` (or `tdc shard`) instead.
    Sharded(ShardPlan),
}

impl Serialize for ExecutionBackend {
    fn to_value(&self) -> serde::Value {
        let mut outer = serde::Map::new();
        match self {
            ExecutionBackend::InProcess { parallelism, kernels } => {
                let mut m = serde::Map::new();
                m.insert("parallelism".to_string(), parallelism.to_value());
                m.insert("kernels".to_string(), kernels.to_value());
                outer.insert("InProcess".to_string(), serde::Value::Object(m));
            }
            ExecutionBackend::Sharded(plan) => {
                outer.insert("Sharded".to_string(), plan.to_value());
            }
        }
        serde::Value::Object(outer)
    }
}

impl Deserialize for ExecutionBackend {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_object().ok_or_else(|| {
            serde::Error::custom("expected single-key object for ExecutionBackend")
        })?;
        if let Some(inner) = obj.get("InProcess") {
            let m = inner.as_object().ok_or_else(|| {
                serde::Error::custom("expected object payload for ExecutionBackend::InProcess")
            })?;
            return Ok(ExecutionBackend::InProcess {
                parallelism: match m.get("parallelism") {
                    Some(fv) => Deserialize::from_value(fv)
                        .map_err(|e| e.context("InProcess.parallelism"))?,
                    None => Parallelism::default(),
                },
                kernels: match m.get("kernels") {
                    Some(fv) => Deserialize::from_value(fv)
                        .map_err(|e| e.context("InProcess.kernels"))?,
                    None => KernelPolicy::default(),
                },
            });
        }
        if let Some(inner) = obj.get("Sharded") {
            return Ok(ExecutionBackend::Sharded(
                Deserialize::from_value(inner).map_err(|e| e.context("Sharded"))?,
            ));
        }
        Err(serde::Error::custom(
            "unknown ExecutionBackend variant (expected `InProcess` or `Sharded`)",
        ))
    }
}

impl Default for ExecutionBackend {
    fn default() -> Self {
        ExecutionBackend::InProcess {
            parallelism: Parallelism::default(),
            kernels: KernelPolicy::default(),
        }
    }
}

impl ExecutionBackend {
    /// An in-process backend with the given thread budget and the
    /// default kernel policy — the terse spelling for call sites that
    /// only care about parallelism.
    pub fn in_process(parallelism: Parallelism) -> Self {
        ExecutionBackend::InProcess {
            parallelism,
            kernels: KernelPolicy::default(),
        }
    }

    /// Whether this backend distributes work across processes.
    pub fn is_sharded(&self) -> bool {
        matches!(self, ExecutionBackend::Sharded(_))
    }

    /// The plan of a sharded backend, if any.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        match self {
            ExecutionBackend::Sharded(plan) => Some(plan),
            ExecutionBackend::InProcess { .. } => None,
        }
    }

    /// Validates the backend; the message names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ExecutionBackend::InProcess { .. } => Ok(()),
            ExecutionBackend::Sharded(plan) => plan.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_in_process_auto() {
        let b = ExecutionBackend::default();
        assert_eq!(
            b,
            ExecutionBackend::InProcess {
                parallelism: Parallelism::Auto,
                kernels: KernelPolicy::Auto,
            }
        );
        assert!(!b.is_sharded());
        assert!(b.shard_plan().is_none());
        assert!(b.validate().is_ok());
    }

    #[test]
    fn plan_new_defaults_are_single_threaded_and_unlimited() {
        let p = ShardPlan::new(ShardStrategy::HashByObject, 4);
        assert_eq!(p.shards, 4);
        assert_eq!(p.worker_parallelism, Parallelism::Threads(1));
        assert_eq!(p.worker_deadline_ms, None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn zero_shards_and_zero_deadlines_are_rejected() {
        let p = ShardPlan::new(ShardStrategy::ByAttributeGroup, 0);
        assert!(p.validate().unwrap_err().contains("backend.shards"));
        let p = ShardPlan {
            worker_deadline_ms: Some(0),
            ..ShardPlan::new(ShardStrategy::ByAttributeGroup, 2)
        };
        assert!(p.validate().unwrap_err().contains("worker_deadline_ms"));
        assert!(ExecutionBackend::Sharded(p).validate().is_err());
    }

    #[test]
    fn backend_serde_round_trips() {
        let b = ExecutionBackend::Sharded(ShardPlan {
            worker_deadline_ms: Some(5_000),
            ..ShardPlan::new(ShardStrategy::HashByObject, 8)
        });
        let json = serde_json::to_string(&b).unwrap();
        let back: ExecutionBackend = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert!(back.is_sharded());
        assert_eq!(back.shard_plan().unwrap().shards, 8);
    }

    #[test]
    fn plan_deserializes_with_defaulted_worker_fields() {
        // Plans written before worker_parallelism / worker_deadline_ms /
        // worker_grace_ms / retry existed (or hand-written minimal ones)
        // still load, and land on fail-fast.
        let json = r#"{"strategy":"ByAttributeGroup","shards":2}"#;
        let p: ShardPlan = serde_json::from_str(json).unwrap();
        assert_eq!(p.worker_parallelism, Parallelism::Threads(1));
        assert_eq!(p.worker_deadline_ms, None);
        assert_eq!(p.worker_grace_ms, None);
        assert_eq!(p.retry, RetryPolicy::default());
        assert!(p.retry.is_fail_fast());
    }

    #[test]
    fn retry_policy_round_trips_and_validates() {
        let r = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 400,
        };
        assert!(r.validate().is_ok());
        assert!(!r.is_fail_fast());
        let plan = ShardPlan {
            retry: r,
            worker_grace_ms: Some(250),
            ..ShardPlan::new(ShardStrategy::HashByObject, 4)
        };
        let json = serde_json::to_string(&ExecutionBackend::Sharded(plan.clone())).unwrap();
        let back: ExecutionBackend = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard_plan().unwrap(), &plan);
    }

    #[test]
    fn retry_policy_rejects_zero_attempts_and_inverted_caps() {
        let r = RetryPolicy::with_attempts(0);
        assert!(r.validate().unwrap_err().contains("max_attempts"));
        let r = RetryPolicy {
            max_attempts: 2,
            backoff_base_ms: 1_000,
            backoff_cap_ms: 10,
        };
        assert!(r.validate().unwrap_err().contains("backoff_cap_ms"));
        let plan = ShardPlan {
            retry: r,
            ..ShardPlan::new(ShardStrategy::ByAttributeGroup, 2)
        };
        assert!(plan.validate().is_err());
        let plan = ShardPlan {
            worker_grace_ms: Some(0),
            ..ShardPlan::new(ShardStrategy::ByAttributeGroup, 2)
        };
        assert!(plan.validate().unwrap_err().contains("worker_grace_ms"));
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_monotonic() {
        let r = RetryPolicy {
            max_attempts: 6,
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
        };
        // First attempt is always immediate.
        assert_eq!(r.backoff_delay_ms(0, 1), 0);
        assert_eq!(r.backoff_delay_ms(7, 1), 0);
        for shard in 0..4 {
            let delays: Vec<u64> = (2..=6).map(|a| r.backoff_delay_ms(shard, a)).collect();
            // Pure function: identical on re-evaluation.
            let again: Vec<u64> = (2..=6).map(|a| r.backoff_delay_ms(shard, a)).collect();
            assert_eq!(delays, again);
            for (i, d) in delays.iter().enumerate() {
                let attempt = i as u32 + 2;
                // Exponential floor, hard cap (jitter included).
                let floor = (100u64 << (attempt - 2)).min(1_000);
                assert!(*d >= floor && *d <= 1_000, "shard {shard} attempt {attempt}: {d}");
            }
        }
        // Jitter actually varies with the shard index.
        let spread: std::collections::HashSet<u64> =
            (0..16).map(|s| r.backoff_delay_ms(s, 2)).collect();
        assert!(spread.len() > 1, "jitter is degenerate: {spread:?}");
        // A zero base collapses the whole schedule to zero delays.
        let z = RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        };
        assert_eq!(z.backoff_delay_ms(3, 5), 0);
    }

    #[test]
    fn in_process_helper_uses_default_kernels() {
        assert_eq!(
            ExecutionBackend::in_process(Parallelism::Threads(2)),
            ExecutionBackend::InProcess {
                parallelism: Parallelism::Threads(2),
                kernels: KernelPolicy::default(),
            }
        );
    }
}
