//! TD-OC — truth discovery with **object** clustering: the dual of TD-AC
//! along the paper's final research perspective ("compare ourselves to …
//! the partitioning approach in \[13\]", Yang et al. 2019, which partitions
//! *objects* rather than attributes).
//!
//! Where TD-AC groups attributes whose truth vectors (over
//! `(object, source)` pairs) coincide, TD-OC groups **objects** whose
//! truth vectors over `(attribute, source)` pairs coincide — useful when
//! sources specialize per *topic* (objects) rather than per *property*
//! (attributes). The machinery is deliberately symmetric: reference truth
//! from a base run, k-means + paper silhouette over `k ∈ [2, |O|-1]`,
//! base re-run per object cluster, merge.
//!
//! Because a dataset view restricts attributes (not objects), the
//! per-cluster runs filter predictions by object after running on the
//! full view; source trust is still estimated per cluster by running the
//! base on a *claim-filtered* clone of the dataset.

use clustering::{silhouette_paper, KMeans, KMeansConfig, Matrix};
use serde::{Deserialize, Serialize};
use td_algorithms::{TruthDiscovery, TruthResult};
use td_model::{Dataset, DatasetBuilder, ObjectId};

use crate::config::TdacConfig;
use crate::tdac::TdacError;

/// A partition of the object set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectPartition {
    /// Groups of object ids (disjoint, exhaustive over claimed objects).
    pub groups: Vec<Vec<ObjectId>>,
}

impl ObjectPartition {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group index containing `object`, if any.
    pub fn group_of(&self, object: ObjectId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&object))
    }
}

/// Outcome of a TD-OC run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TdocOutcome {
    /// Merged predictions.
    pub result: TruthResult,
    /// The selected object partition.
    pub partition: ObjectPartition,
    /// Silhouette of the selected partition.
    pub silhouette: f64,
    /// Every `(k, silhouette)` evaluated.
    pub k_scores: Vec<(usize, f64)>,
    /// Whether TD-OC fell back to the un-partitioned run.
    pub fallback: bool,
}

/// The TD-OC algorithm (object-clustering dual of [`crate::Tdac`]).
#[derive(Debug, Clone)]
pub struct Tdoc {
    config: TdacConfig,
}

impl Tdoc {
    /// A TD-OC instance; reuses [`TdacConfig`] (k range, metric, seed).
    pub fn new(config: TdacConfig) -> Self {
        Self { config }
    }

    /// Runs TD-OC over `dataset` with base algorithm `base`.
    ///
    /// Same signature shape as [`crate::Tdac::run`] (the `+ Sync` bound
    /// keeps the two interchangeable even though TD-OC's sweep is
    /// currently sequential). Observation via the config's
    /// [`td_obs::Observer`] uses the same span taxonomy as TD-AC.
    pub fn run(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
    ) -> Result<TdocOutcome, TdacError> {
        let obs = &self.config.observer;
        let n_objects = dataset.n_objects();
        if n_objects == 0 {
            return Err(TdacError::NoAttributes);
        }
        let k_hi = self
            .config
            .k_max
            .unwrap_or(n_objects.saturating_sub(1))
            .min(n_objects.saturating_sub(1));
        if n_objects < 3 || self.config.k_min > k_hi {
            let mut result = {
                let _s = obs.span("per_group_run");
                base.discover_observed(&dataset.view_all(), obs)
            };
            result.iterations = 1;
            return Ok(TdocOutcome {
                result,
                partition: ObjectPartition {
                    groups: vec![dataset.object_ids().collect()],
                },
                silhouette: 0.0,
                k_scores: Vec::new(),
                fallback: true,
            });
        }

        // Object truth vectors: row per object, column per
        // (attribute, source) pair.
        let _tv = obs.span("truth_vectors");
        let reference = base.discover_observed(&dataset.view_all(), obs);
        let n_sources = dataset.n_sources();
        let n_attrs = dataset.n_attributes();
        let mut matrix = Matrix::zeros(n_objects, n_attrs * n_sources);
        for cell in dataset.cells() {
            let Some(truth) = reference.prediction(cell.object, cell.attribute) else {
                continue;
            };
            for claim in dataset.cell_claims(cell) {
                if claim.value == truth {
                    let col = cell.attribute.index() * n_sources + claim.source.index();
                    matrix.set(cell.object.index(), col, 1.0);
                }
            }
        }

        drop(_tv);

        let metric = self.config.metric.as_metric();
        let _sweep = obs.span("k_sweep");
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut k_scores = Vec::new();
        for k in self.config.k_min..=k_hi {
            let _sk = obs.span_with(|| format!("k_sweep/k={k}"));
            let cfg = KMeansConfig {
                k,
                n_init: self.config.n_init,
                seed: self.config.seed,
                ..KMeansConfig::with_k(k)
            };
            let assignments = {
                let _c = obs.span("cluster");
                KMeans::new(cfg).fit_observed(&matrix, obs)?.assignments
            };
            let sil = silhouette_paper(&matrix, &assignments, metric);
            k_scores.push((k, sil));
            if best.as_ref().is_none_or(|(b, _)| sil > *b) {
                best = Some((sil, assignments));
            }
        }
        drop(_sweep);
        let (silhouette, assignments) = best.expect("non-empty sweep");

        // Group objects.
        let n_groups = assignments.iter().copied().max().unwrap_or(0) + 1;
        let mut groups: Vec<Vec<ObjectId>> = vec![Vec::new(); n_groups];
        for (oi, &g) in assignments.iter().enumerate() {
            groups[g].push(ObjectId::new(oi as u32));
        }
        groups.retain(|g| !g.is_empty());
        groups.sort_by_key(|g| g[0]);

        // Run the base per object group on claim-filtered clones.
        let _pg = obs.span("per_group_run");
        let mut result = TruthResult::with_sources(0, 0.0);
        for group in &groups {
            let sub = object_subset(dataset, group);
            let partial = base.discover_observed(&sub.view_all(), obs);
            // Map the subset's ids back to the parent's (names are
            // preserved, so translate through them).
            for (o, a, v, c) in partial.iter() {
                let obj = dataset
                    .object_id(sub.object_name(o))
                    .expect("object preserved");
                let attr = dataset
                    .attribute_id(sub.attribute_name(a))
                    .expect("attribute preserved");
                let value = dataset
                    .value_id(sub.value(v))
                    .expect("value preserved");
                result.set_prediction(obj, attr, value, c);
            }
        }
        result.source_trust = reference.source_trust.clone();
        result.iterations = 1;

        Ok(TdocOutcome {
            result,
            partition: ObjectPartition { groups },
            silhouette,
            k_scores,
            fallback: false,
        })
    }
}

/// Clones the claims of `objects` into a fresh dataset (names preserved).
fn object_subset(dataset: &Dataset, objects: &[ObjectId]) -> Dataset {
    let keep: std::collections::HashSet<ObjectId> = objects.iter().copied().collect();
    let mut b = DatasetBuilder::new();
    // Preserve the full source roster so trust vectors stay comparable.
    for s in dataset.source_ids() {
        b.source(dataset.source_name(s));
    }
    for cell in dataset.cells() {
        if !keep.contains(&cell.object) {
            continue;
        }
        for claim in dataset.cell_claims(cell) {
            b.claim(
                dataset.source_name(claim.source),
                dataset.object_name(cell.object),
                dataset.attribute_name(cell.attribute),
                dataset.value(claim.value).clone(),
            )
            .expect("clone of a valid dataset cannot conflict");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    /// Sources specialize per *topic*: g-sources are right on objects
    /// o0..o2, h-sources on o3..o5 (same attributes throughout).
    fn topic_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        for o in 0..6i64 {
            let obj = format!("o{o}");
            let g_right = o < 3;
            for a in ["a1", "a2", "a3"] {
                let (g_val, h_val) = if g_right {
                    (Value::int(o), Value::int(500 + o))
                } else {
                    (Value::int(600 + o), Value::int(o))
                };
                b.claim("g1", &obj, a, g_val.clone()).unwrap();
                b.claim("g2", &obj, a, g_val).unwrap();
                b.claim("h1", &obj, a, h_val.clone()).unwrap();
                b.claim("h2", &obj, a, h_val).unwrap();
                b.claim("tiebreak", &obj, a, Value::int(o)).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn recovers_topic_structure() {
        let d = topic_dataset();
        let out = Tdoc::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        assert!(!out.fallback);
        assert_eq!(out.partition.len(), 2, "two topics: {:?}", out.partition);
        let o0 = d.object_id("o0").unwrap();
        let o1 = d.object_id("o1").unwrap();
        let o3 = d.object_id("o3").unwrap();
        assert_eq!(out.partition.group_of(o0), out.partition.group_of(o1));
        assert_ne!(out.partition.group_of(o0), out.partition.group_of(o3));
    }

    #[test]
    fn predicts_every_cell() {
        let d = topic_dataset();
        let out = Tdoc::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        assert_eq!(out.result.len(), d.n_cells());
        // And the predictions are correct (tiebreak source makes truth
        // the per-topic majority).
        for o in 0..6i64 {
            let obj = d.object_id(&format!("o{o}")).unwrap();
            for a in ["a1", "a2", "a3"] {
                let attr = d.attribute_id(a).unwrap();
                assert_eq!(
                    out.result.prediction(obj, attr),
                    d.value_id(&Value::int(o)),
                    "cell (o{o}, {a})"
                );
            }
        }
    }

    #[test]
    fn few_objects_fall_back() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "only", "a", Value::int(1)).unwrap();
        let d = b.build();
        let out = Tdoc::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        assert!(out.fallback);
        assert_eq!(out.result.len(), 1);
    }

    #[test]
    fn empty_dataset_errors() {
        let d = DatasetBuilder::new().build();
        assert!(Tdoc::new(TdacConfig::default()).run(&MajorityVote, &d).is_err());
    }

    #[test]
    fn object_subset_preserves_names_and_sources() {
        let d = topic_dataset();
        let objs: Vec<ObjectId> = d.object_ids().take(2).collect();
        let sub = object_subset(&d, &objs);
        assert_eq!(sub.n_sources(), d.n_sources());
        assert_eq!(sub.n_objects(), 2);
        assert_eq!(sub.n_claims(), 2 * 3 * 5);
        assert!(sub.object_id("o0").is_some());
        assert!(sub.object_id("o5").is_none());
    }
}
