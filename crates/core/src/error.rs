//! The workspace-level error type.
//!
//! Each layer of the pipeline keeps its own precise error
//! ([`TdacError`], [`AccuGenError`], [`ClusterError`], [`ModelError`]);
//! [`TdError`] unifies them so an application driving several layers can
//! propagate everything with one `?`-compatible type instead of matching
//! four. Every `From` impl is lossless — the source error is carried
//! verbatim and reachable through [`std::error::Error::source`].

use std::error::Error;
use std::fmt;

use clustering::ClusterError;
use td_model::ModelError;
use td_store::StoreError;

use crate::accugen::AccuGenError;
use crate::tdac::TdacError;

/// Any error the TD-AC workspace can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum TdError {
    /// A TD-AC / TD-OC pipeline error.
    Tdac(TdacError),
    /// An AccuGenPartition baseline error.
    AccuGen(AccuGenError),
    /// A clustering-layer error.
    Cluster(ClusterError),
    /// A data-model error (conflicting claims, unknown entities, parse
    /// failures).
    Model(ModelError),
    /// A `.tds` dataset-store error (i/o, validation, or decoding).
    Store(StoreError),
    /// A worker panicked inside a parallel phase; the panic was caught
    /// at the task boundary (the process never aborts) and converted
    /// into this typed error naming where it happened.
    WorkerPanic {
        /// The phase (span-path vocabulary) whose worker panicked, e.g.
        /// `k_sweep/k=3`, `per_group_run/group=0`, `partition_scan`.
        phase: String,
        /// The panic message, when it carried one.
        detail: String,
    },
}

impl fmt::Display for TdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdError::Tdac(e) => write!(f, "td-ac: {e}"),
            TdError::AccuGen(e) => write!(f, "accugen: {e}"),
            TdError::Cluster(e) => write!(f, "clustering: {e}"),
            TdError::Model(e) => write!(f, "model: {e}"),
            TdError::Store(e) => write!(f, "store: {e}"),
            TdError::WorkerPanic { phase, detail } => {
                write!(f, "worker panic in phase `{phase}`: {detail}")
            }
        }
    }
}

impl Error for TdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TdError::Tdac(e) => Some(e),
            TdError::AccuGen(e) => Some(e),
            TdError::Cluster(e) => Some(e),
            TdError::Model(e) => Some(e),
            TdError::Store(e) => Some(e),
            TdError::WorkerPanic { .. } => None,
        }
    }
}

impl From<TdacError> for TdError {
    /// Lossless for every variant except `WorkerPanic`, which is hoisted
    /// to [`TdError::WorkerPanic`] so callers match one variant no
    /// matter which layer caught the panic.
    fn from(e: TdacError) -> Self {
        match e {
            TdacError::WorkerPanic { phase, detail } => TdError::WorkerPanic { phase, detail },
            other => TdError::Tdac(other),
        }
    }
}

impl From<AccuGenError> for TdError {
    /// Lossless for every variant except `WorkerPanic` (hoisted, as for
    /// [`TdacError`]).
    fn from(e: AccuGenError) -> Self {
        match e {
            AccuGenError::WorkerPanic { phase, detail } => TdError::WorkerPanic { phase, detail },
            other => TdError::AccuGen(other),
        }
    }
}

impl From<ClusterError> for TdError {
    fn from(e: ClusterError) -> Self {
        TdError::Cluster(e)
    }
}

impl From<ModelError> for TdError {
    fn from(e: ModelError) -> Self {
        TdError::Model(e)
    }
}

impl From<StoreError> for TdError {
    fn from(e: StoreError) -> Self {
        TdError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_source_error() {
        let e: TdError = TdacError::NoAttributes.into();
        assert_eq!(e, TdError::Tdac(TdacError::NoAttributes));

        let e: TdError = AccuGenError::NoAttributes.into();
        assert_eq!(e, TdError::AccuGen(AccuGenError::NoAttributes));

        let e: TdError = ClusterError::ZeroK.into();
        assert_eq!(e, TdError::Cluster(ClusterError::ZeroK));

        let e: TdError = ModelError::Parse("bad row".into()).into();
        assert_eq!(e, TdError::Model(ModelError::Parse("bad row".into())));

        let e: TdError = StoreError::BadMagic { found: *b"NOPE" }.into();
        assert_eq!(e, TdError::Store(StoreError::BadMagic { found: *b"NOPE" }));
    }

    #[test]
    fn worker_panics_hoist_to_the_top_level_variant() {
        // A panic caught in either layer surfaces as the same TdError
        // variant — callers never match on which crate caught it.
        let expect = TdError::WorkerPanic {
            phase: "k_sweep/k=3".into(),
            detail: "boom".into(),
        };
        let from_tdac: TdError = TdacError::WorkerPanic {
            phase: "k_sweep/k=3".into(),
            detail: "boom".into(),
        }
        .into();
        let from_accugen: TdError = AccuGenError::WorkerPanic {
            phase: "k_sweep/k=3".into(),
            detail: "boom".into(),
        }
        .into();
        assert_eq!(from_tdac, expect);
        assert_eq!(from_accugen, expect);
        assert!(expect.to_string().contains("k_sweep/k=3"));
        assert!(expect.source().is_none());
    }

    #[test]
    fn display_names_the_layer_and_source_is_set() {
        let cases: Vec<(TdError, &str)> = vec![
            (TdacError::NoAttributes.into(), "td-ac:"),
            (AccuGenError::NoAttributes.into(), "accugen:"),
            (ClusterError::ZeroK.into(), "clustering:"),
            (ModelError::Parse("x".into()).into(), "model:"),
            (
                StoreError::ChecksumMismatch { section: "claims" }.into(),
                "store:",
            ),
        ];
        for (err, prefix) in cases {
            assert!(err.to_string().starts_with(prefix), "{err}");
            assert!(err.source().is_some(), "{err}");
        }
    }

    #[test]
    fn question_mark_unifies_layers() {
        // The point of TdError: one signature covers errors from several
        // layers without explicit mapping.
        fn mixed(fail_cluster: bool) -> Result<(), TdError> {
            if fail_cluster {
                Err(ClusterError::ZeroK)?;
            }
            Err(TdacError::NoAttributes)?;
            Ok(())
        }
        assert_eq!(mixed(true), Err(TdError::Cluster(ClusterError::ZeroK)));
        assert_eq!(mixed(false), Err(TdError::Tdac(TdacError::NoAttributes)));
    }
}
