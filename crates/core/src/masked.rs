//! Missing-data-aware truth vectors — the paper's research perspective
//! (i): *"improve our approach to better account for data with lot of
//! missing values"*.
//!
//! Equation 1 maps *both* "source was wrong" and "source did not answer"
//! to `0`. On sparse data (Exam 124: DCR 36 %) that floods the truth
//! vectors with zeros that carry no reliability signal, which is exactly
//! the degradation the paper observes in Figure 5. The masked variant
//! keeps a parallel **observation mask** and compares attributes only on
//! coordinates both attributes were *observed* on:
//!
//! ```text
//! d_masked(a1, a2) = Σ_{i ∈ obs(a1) ∩ obs(a2)} |x1_i - x2_i| · L / |obs(a1) ∩ obs(a2)|
//! ```
//!
//! i.e. the Hamming disagreement rate over co-observed coordinates,
//! rescaled to the full vector length `L` so magnitudes stay comparable
//! with the unmasked distance. Attribute pairs with no co-observed
//! coordinate fall back to the neutral half-distance `L/2`.

use clustering::{BitMatrix, DistanceOptions, KernelPolicy, Matrix};
use rayon::prelude::*;
use td_algorithms::{TruthDiscovery, TruthResult};
use td_model::DatasetView;

/// A truth-vector matrix plus its observation mask, in both the dense
/// representation and a bit-packed one (values + validity words) for the
/// masked popcount kernel.
#[derive(Debug, Clone)]
pub struct MaskedTruthVectors {
    /// The Eq. 1 values (1 = matched reference truth, 0 otherwise).
    pub values: Matrix,
    /// `1.0` where the source actually answered the `(object, attribute)`
    /// cell, `0.0` where the coordinate is missing.
    pub mask: Matrix,
    /// `values` and `mask` packed into `u64` words (one bit strip each),
    /// built in the same scatter pass so they agree by construction.
    pub packed: BitMatrix,
}

impl MaskedTruthVectors {
    /// Builds masked truth vectors from a base algorithm's reference
    /// truth (like [`crate::truth_vector_matrix`] but tracking
    /// observedness). The reference base run is recorded against
    /// `observer`; observation never changes the vectors or the
    /// reference.
    pub fn build(
        base: &dyn TruthDiscovery,
        view: &DatasetView<'_>,
        observer: &td_obs::Observer,
    ) -> (Self, TruthResult) {
        let reference = base.discover_observed(view, observer);
        let this = Self::from_result(view, &reference);
        (this, reference)
    }

    /// Builds against an existing reference truth.
    pub fn from_result(view: &DatasetView<'_>, reference: &TruthResult) -> Self {
        let dataset = view.dataset();
        let n_sources = dataset.n_sources();
        let n_cols = dataset.n_objects() * n_sources;
        let attrs = view.attributes();

        let mut row_of = vec![usize::MAX; dataset.n_attributes()];
        for (r, a) in attrs.iter().enumerate() {
            row_of[a.index()] = r;
        }

        let mut values = Matrix::zeros(attrs.len(), n_cols);
        let mut mask = Matrix::zeros(attrs.len(), n_cols);
        let mut packed = BitMatrix::zeros_masked(attrs.len(), n_cols);
        for cell in view.cells() {
            let row = row_of[cell.attribute.index()];
            let truth = reference.prediction(cell.object, cell.attribute);
            for claim in view.cell_claims(cell) {
                let col = cell.object.index() * n_sources + claim.source.index();
                mask.set(row, col, 1.0);
                packed.set_observed(row, col);
                if Some(claim.value) == truth {
                    values.set(row, col, 1.0);
                    packed.set_bit(row, col, true);
                }
            }
        }
        Self {
            values,
            mask,
            packed,
        }
    }

    /// Rebuilds the dual representation from an already-packed matrix
    /// carrying a validity mask — the `td-store` load path. Returns
    /// `None` when `packed` has no mask attached. Both dense matrices
    /// are unpacked from the words, so the result is bit-identical to
    /// the scatter-pass build against the same reference.
    pub fn from_packed(packed: BitMatrix) -> Option<Self> {
        packed.mask_words_all()?;
        let (rows, cols) = (packed.n_rows(), packed.n_cols());
        let values = packed.to_dense();
        let mut mask = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let words = packed.mask_words(i).expect("mask presence checked");
            for j in 0..cols {
                if words[j / 64] >> (j % 64) & 1 == 1 {
                    mask.set(i, j, 1.0);
                }
            }
        }
        Some(Self {
            values,
            mask,
            packed,
        })
    }

    /// Number of attributes (rows).
    pub fn n_attributes(&self) -> usize {
        self.values.n_rows()
    }

    /// Fraction of observed coordinates in row `i`.
    pub fn observed_fraction(&self, i: usize) -> f64 {
        let row = self.mask.row(i);
        if row.is_empty() {
            return 0.0;
        }
        row.iter().sum::<f64>() / row.len() as f64
    }

    /// Masked Hamming distance between attribute rows `i` and `j` (see
    /// the module docs).
    pub fn masked_distance(&self, i: usize, j: usize) -> f64 {
        let (xi, xj) = (self.values.row(i), self.values.row(j));
        let (mi, mj) = (self.mask.row(i), self.mask.row(j));
        let len = xi.len();
        let mut diff = 0.0;
        let mut co = 0usize;
        for c in 0..len {
            if mi[c] > 0.0 && mj[c] > 0.0 {
                co += 1;
                diff += (xi[c] - xj[c]).abs();
            }
        }
        if co == 0 {
            return len as f64 / 2.0;
        }
        diff / co as f64 * len as f64
    }

    /// Masked Hamming distance between rows `i` and `j` on the packed
    /// representation: popcounts over `(values_i ^ values_j) & mask_i &
    /// mask_j` feed the exact formula of [`Self::masked_distance`], so
    /// the two paths are bit-identical (every intermediate is an exact
    /// small integer).
    pub fn masked_distance_packed(&self, i: usize, j: usize) -> f64 {
        let (diff, co) = self.packed.masked_counts(i, j);
        let len = self.values.n_cols();
        if co == 0 {
            return len as f64 / 2.0;
        }
        diff as f64 / co as f64 * len as f64
    }

    /// The full pairwise masked-distance matrix (row-major `n×n`). The
    /// upper triangle is computed in parallel (one strip per row) and
    /// mirrored — every entry evaluated exactly once, bit-identical at
    /// any thread count. Bumps [`td_obs::Counter::DistanceEvals`] by the
    /// `n·(n−1)/2` masked distances evaluated (plus the packed-kernel
    /// counters when that path ran); observation never changes the
    /// matrix. Dispatches to the packed popcount kernel under the
    /// default [`KernelPolicy::Auto`]; see
    /// [`MaskedTruthVectors::distance_matrix_with`] to pin a kernel.
    pub fn distance_matrix(&self, observer: &td_obs::Observer) -> Vec<f64> {
        self.distance_matrix_impl(KernelPolicy::Auto, observer)
    }

    /// [`MaskedTruthVectors::distance_matrix`] under explicit
    /// [`DistanceOptions`] (kernel policy + observer).
    pub fn distance_matrix_with(&self, opts: &DistanceOptions) -> Vec<f64> {
        self.distance_matrix_impl(opts.kernel, &opts.observer)
    }

    fn distance_matrix_impl(&self, kernel: KernelPolicy, observer: &td_obs::Observer) -> Vec<f64> {
        let n = self.n_attributes();
        if n < 2 {
            // Nothing to evaluate: no counter traffic, no kernel choice.
            return vec![0.0; n * n];
        }
        let pairs = (n as u64) * (n as u64 - 1) / 2;
        let packed = kernel != KernelPolicy::Dense;
        observer.incr(td_obs::Counter::DistanceEvals, pairs);
        if packed {
            observer.incr(td_obs::Counter::PackedKernelInvocations, 1);
            observer.incr(
                td_obs::Counter::WordsXored,
                pairs * self.packed.words_per_row() as u64,
            );
        }
        let strips: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|i| {
                ((i + 1)..n)
                    .map(|j| {
                        if packed {
                            self.masked_distance_packed(i, j)
                        } else {
                            self.masked_distance(i, j)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut d = vec![0.0; n * n];
        for (i, strip) in strips.iter().enumerate() {
            for (off, &v) in strip.iter().enumerate() {
                let j = i + 1 + off;
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    /// Two attributes with identical reliability patterns on co-observed
    /// sources, but a2 is missing half its coordinates. Plain Eq. 1 sees
    /// them as distant; the masked distance sees them as identical.
    fn sparse_twins() -> td_model::Dataset {
        let mut b = DatasetBuilder::new();
        for o in 0..6 {
            let obj = format!("o{o}");
            // a1: everyone answers; s1, s2 right, s3 wrong.
            b.claim("s1", &obj, "a1", Value::int(o)).unwrap();
            b.claim("s2", &obj, "a1", Value::int(o)).unwrap();
            b.claim("s3", &obj, "a1", Value::int(99)).unwrap();
            // a2: identical behaviour, but only even objects are covered.
            if o % 2 == 0 {
                b.claim("s1", &obj, "a2", Value::int(o)).unwrap();
                b.claim("s2", &obj, "a2", Value::int(o)).unwrap();
                b.claim("s3", &obj, "a2", Value::int(99)).unwrap();
            }
            // a3: inverted reliabilities, fully covered.
            b.claim("s1", &obj, "a3", Value::int(77)).unwrap();
            b.claim("s2", &obj, "a3", Value::int(88)).unwrap();
            b.claim("s3", &obj, "a3", Value::int(o)).unwrap();
            b.claim("s4", &obj, "a3", Value::int(o)).unwrap();
        }
        b.build()
    }

    #[test]
    fn mask_marks_observed_coordinates() {
        let d = sparse_twins();
        let (mv, _) = MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let a1 = d.attribute_id("a1").unwrap().index();
        let a2 = d.attribute_id("a2").unwrap().index();
        assert!(mv.observed_fraction(a1) > mv.observed_fraction(a2));
        assert!(mv.observed_fraction(a2) > 0.0);
    }

    #[test]
    fn masked_distance_ignores_unobserved_gap() {
        let d = sparse_twins();
        let (mv, _) = MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let a1 = d.attribute_id("a1").unwrap().index();
        let a2 = d.attribute_id("a2").unwrap().index();
        let a3 = d.attribute_id("a3").unwrap().index();
        // a1 and a2 behave identically where co-observed.
        assert!(
            mv.masked_distance(a1, a2) < 1e-9,
            "identical co-observed behaviour ⇒ distance 0, got {}",
            mv.masked_distance(a1, a2)
        );
        // a1 and a3 disagree on the shared sources.
        assert!(mv.masked_distance(a1, a3) > 1.0);
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let d = sparse_twins();
        let (mv, _) = MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let n = mv.n_attributes();
        let m = mv.distance_matrix(&td_obs::Observer::disabled());
        for i in 0..n {
            assert_eq!(m[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i]);
            }
        }
    }

    #[test]
    fn disjoint_coverage_falls_back_to_neutral() {
        let mut b = DatasetBuilder::new();
        // a1 covered only by o0's claims, a2 only by o1's — no co-observed
        // coordinates.
        b.claim("s1", "o0", "a1", Value::int(1)).unwrap();
        b.claim("s1", "o1", "a2", Value::int(1)).unwrap();
        let d = b.build();
        let (mv, _) = MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let len = d.n_objects() * d.n_sources();
        assert_eq!(mv.masked_distance(0, 1), len as f64 / 2.0);
    }

    #[test]
    fn packed_and_dense_masked_kernels_are_bit_identical() {
        let d = sparse_twins();
        let (mv, _) =
            MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let n = mv.n_attributes();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    mv.masked_distance(i, j).to_bits(),
                    mv.masked_distance_packed(i, j).to_bits(),
                    "pair ({i}, {j})"
                );
            }
        }
        let dense = mv.distance_matrix_with(
            &DistanceOptions::builder().kernel(KernelPolicy::Dense).build(),
        );
        let packed = mv.distance_matrix_with(
            &DistanceOptions::builder().kernel(KernelPolicy::Packed).build(),
        );
        let auto = mv.distance_matrix(&td_obs::Observer::disabled());
        for (i, (a, b)) in dense.iter().zip(&packed).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "entry {i}");
        }
        assert_eq!(packed, auto, "Auto uses the packed kernel");
    }

    #[test]
    fn packed_kernel_counters_fire_on_the_masked_path() {
        let d = sparse_twins();
        let (mv, _) =
            MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let observer = td_obs::Observer::enabled();
        mv.distance_matrix(&observer);
        let p = observer.profile().unwrap();
        let n = mv.n_attributes() as u64;
        assert_eq!(p.counter("distance_evals"), Some(n * (n - 1) / 2));
        assert_eq!(p.counter("packed_kernel_invocations"), Some(1));
        assert_eq!(
            p.counter("words_xored"),
            Some(n * (n - 1) / 2 * mv.packed.words_per_row() as u64)
        );
    }

    #[test]
    fn tiny_masked_inputs_skip_counter_traffic() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o0", "a1", Value::int(1)).unwrap();
        let d = b.build();
        let (mv, _) =
            MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        assert_eq!(mv.n_attributes(), 1);
        let observer = td_obs::Observer::enabled();
        let dist = mv.distance_matrix(&observer);
        assert_eq!(dist, vec![0.0]);
        let p = observer.profile().unwrap();
        assert_eq!(p.counter("distance_evals"), Some(0));
        assert_eq!(p.counter("packed_kernel_invocations"), Some(0));
    }

    #[test]
    fn values_agree_with_unmasked_equation_one() {
        let d = sparse_twins();
        let (mv, reference) = MaskedTruthVectors::build(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let plain = crate::truth_vectors::truth_vectors_from_result(&d.view_all(), &reference);
        assert_eq!(mv.values.as_slice(), plain.as_slice());
    }
}
