//! Incremental truth discovery: delta ingestion with dirty-attribute
//! recomputation.
//!
//! [`TdacSession`] keeps a TD-AC pipeline alive across claim batches.
//! Where [`crate::Tdac::run`] recomputes everything from scratch, the
//! session maintains the expensive intermediates and recomputes only
//! what a batch actually touched:
//!
//! * **Truth vectors** (Eq. 1) — new attributes append rows, new objects
//!   append `(object, source)` columns at the tail (the column index is
//!   `object · n_sources + source`, so only new *sources* reshuffle the
//!   space), and only *dirty* attribute rows are rescattered against the
//!   fresh reference truth.
//! * **The shared distance matrix** — updated with
//!   [`DistanceOptions::update_pairwise`], which re-evaluates only pairs
//!   with a dirty endpoint and copies every clean entry bit-for-bit.
//! * **Per-group base runs** — a group whose attributes are all clean
//!   (and whose source count is unchanged) reuses the cached
//!   [`TruthResult`] partial from the previous ingest instead of
//!   re-running the base algorithm; reuse is counted on
//!   [`Counter::PartitionsReused`].
//!
//! An attribute is **dirty** when the batch appended a claim touching it
//! (claim-dirty) *or* when the new reference truth changed any of its
//! cell predictions as a knock-on effect (reference-dirty) — both kinds
//! are detected per ingest and counted on [`Counter::DirtyAttributes`].
//!
//! The k-sweep itself is governed by a [`RepartitionPolicy`]:
//! [`RepartitionPolicy::Always`] re-sweeps every ingest and makes the
//! session's outcome **bit-identical** to a from-scratch
//! [`crate::Tdac::run`] on the accumulated claim set (the differential
//! oracle in `td-verify` gates exactly this, across thread counts and
//! kernel policies); [`RepartitionPolicy::Never`] pins the partition;
//! [`RepartitionPolicy::OnDrift`] pins it until the pinned grouping's
//! silhouette — recomputed each ingest from the maintained distances —
//! drops more than a threshold below its value at pin time, then
//! re-sweeps (counted on [`Counter::DriftRepartitions`]). New attributes
//! force a re-sweep under every policy (the pinned partition does not
//! cover them), and new sources force a full rebuild of vectors and
//! distances (every column index shifts — the honest fallback).
//!
//! The session accepts every dense-path [`TdacConfig`], including
//! [`td_obs::ExecutionLimits`] (each ingest is budgeted like one run)
//! and observers; `missing_aware` configs are rejected up front because
//! the masked pipeline has no incremental maintenance rules yet.
//! See `docs/STREAMING.md` for the full contract.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use clustering::{silhouette_paper_dist, DistanceOptions};
use serde::{Deserialize, Serialize};
use td_algorithms::{TruthDiscovery, TruthResult};
use td_model::{
    AttributeId, ClaimBatch, Dataset, DeltaDataset, DeltaSummary, ModelError,
};
use td_obs::{panic_message, Budget, Counter, Degradation, DegradationReason, Observer};
use td_store::DatasetStore;

use crate::config::TdacConfig;
use crate::partition::AttributePartition;
use crate::tdac::{
    exhausted, merge_partials, page_matches, per_group_partials, scan_winner, sweep_dense,
    TdacError, TdacOutcome,
};
use crate::truth_vectors::{
    rescatter_rows, truth_vector_set, truth_vector_set_from_result, TruthVectors,
};

/// When an ingest re-runs the silhouette k-sweep instead of keeping the
/// pinned attribute partition. Independent of the policy, new
/// attributes always force a re-sweep (the pin does not cover them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepartitionPolicy {
    /// Re-sweep on every ingest. Most expensive, but the outcome is
    /// bit-identical to a from-scratch [`crate::Tdac::run`] on the
    /// accumulated claim set — the mode the differential oracle gates.
    Always,
    /// Keep the pinned partition forever; only the per-group runs for
    /// dirty groups are recomputed. Cheapest, blind to drift.
    Never,
    /// Keep the pinned partition until its silhouette (recomputed each
    /// ingest from the maintained distance matrix) falls more than the
    /// given threshold below the value it had when pinned, then
    /// re-sweep. The threshold must be finite and non-negative.
    OnDrift(f64),
}

/// Errors from [`TdacSession`]: either the model layer rejected the
/// data (conflicting claim, degenerate dataset) or the pipeline failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The base dataset or a claim batch was rejected; the accumulated
    /// dataset is unchanged.
    Model(ModelError),
    /// The TD-AC pipeline failed (invalid config, clusterer error,
    /// isolated worker panic).
    Tdac(TdacError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Model(e) => write!(f, "model error: {e}"),
            SessionError::Tdac(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Model(e) => Some(e),
            SessionError::Tdac(e) => Some(e),
        }
    }
}

impl From<ModelError> for SessionError {
    fn from(e: ModelError) -> Self {
        SessionError::Model(e)
    }
}

impl From<TdacError> for SessionError {
    fn from(e: TdacError) -> Self {
        SessionError::Tdac(e)
    }
}

/// What one [`TdacSession::ingest`] did: the model-layer delta, the full
/// dirty set, how much cached state survived, and the fresh outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestReport {
    /// The model-layer view of the batch (appended claims, new
    /// entities, claim-dirty attributes).
    pub summary: DeltaSummary,
    /// Every attribute recomputed this ingest: claim-dirty ones plus
    /// those whose reference predictions changed as a knock-on effect.
    pub dirty_attributes: Vec<AttributeId>,
    /// Whether the k-sweep ran (policy, drift, or new attributes).
    pub repartitioned: bool,
    /// Whether vectors and distances were rebuilt from scratch (new
    /// sources, or no dense state to maintain).
    pub rebuilt: bool,
    /// Groups whose cached partial result was reused verbatim.
    pub groups_reused: usize,
    /// Total groups in the outcome's partition.
    pub groups_total: usize,
    /// The full TD-AC outcome over the accumulated claim set.
    pub outcome: TdacOutcome,
}

/// The maintained dense-path intermediates: Eq. 1 truth vectors (both
/// representations) and the shared pairwise distance matrix.
#[derive(Debug, Clone)]
struct Derived {
    vectors: TruthVectors,
    dist: Vec<f64>,
}

/// Everything one full (non-incremental) pipeline pass produces — the
/// outcome plus the state the session keeps for the next ingest.
struct PassOutput {
    outcome: TdacOutcome,
    reference: TruthResult,
    derived: Option<Derived>,
    pin: AttributePartition,
    pin_is_fallback: bool,
    silhouette_at_pin: f64,
    /// `(group attributes, partial result)` pairs to seed the reuse
    /// cache; empty on degraded passes (the pruned cache survives).
    partials: Vec<(Vec<AttributeId>, TruthResult)>,
    groups_reused: usize,
}

struct IngestStats {
    outcome: TdacOutcome,
    dirty: Vec<AttributeId>,
    reused: usize,
    repartitioned: bool,
    rebuilt: bool,
}

/// An incremental TD-AC engine: ingests claim batches and maintains the
/// pipeline's intermediates instead of recomputing them. See the module
/// docs for the maintenance rules and the identity contract.
///
/// Cloning snapshots the whole session (dataset, caches, pin): a
/// service can fork a what-if session, feed it speculative batches, and
/// discard it without touching the live one.
#[derive(Clone)]
pub struct TdacSession<B> {
    base: B,
    config: TdacConfig,
    policy: RepartitionPolicy,
    delta: DeltaDataset,
    reference: TruthResult,
    derived: Option<Derived>,
    pin: AttributePartition,
    pin_is_fallback: bool,
    silhouette_at_pin: f64,
    cache: HashMap<Vec<AttributeId>, TruthResult>,
    outcome: TdacOutcome,
}

impl<B: TruthDiscovery + Sync> TdacSession<B> {
    /// Starts a session: validates the config and base dataset, runs the
    /// initial full pipeline (bit-identical to [`crate::Tdac::run`]),
    /// and pins the selected partition.
    ///
    /// # Errors
    /// [`SessionError::Tdac`] with [`TdacError::InvalidConfig`] for
    /// `missing_aware` configs (no incremental maintenance rules exist
    /// for the masked pipeline) or a non-finite/negative drift
    /// threshold; [`SessionError::Model`] for degenerate base datasets;
    /// any pipeline error from the initial run.
    pub fn start(
        base: B,
        config: TdacConfig,
        policy: RepartitionPolicy,
        dataset: Dataset,
    ) -> Result<Self, SessionError> {
        Self::start_inner(base, config, policy, dataset, None)
    }

    /// Starts a session from a store-backed dataset.
    ///
    /// When the store carries a [`td_store::TruthPage`] for this base
    /// algorithm's dense pipeline whose dimensions match the dataset,
    /// the initial full pass reuses the page's reference truth instead
    /// of re-running the base algorithm — the build phase a stream
    /// restart would otherwise repeat. The resulting session state is
    /// bit-identical to [`TdacSession::start`] on the same dataset
    /// because the page stores the reference verbatim and the truth
    /// vectors are rescattered deterministically from it. A missing or
    /// mismatched page falls back to the from-scratch start.
    pub fn start_store(
        base: B,
        config: TdacConfig,
        policy: RepartitionPolicy,
        store: &DatasetStore,
    ) -> Result<Self, SessionError> {
        let seed = store
            .page(base.name(), false)
            .filter(|p| page_matches(p, &store.dataset, false))
            .map(|p| p.reference.clone());
        Self::start_inner(base, config, policy, store.dataset.clone(), seed)
    }

    fn start_inner(
        base: B,
        config: TdacConfig,
        policy: RepartitionPolicy,
        dataset: Dataset,
        seed: Option<TruthResult>,
    ) -> Result<Self, SessionError> {
        if config.missing_aware {
            return Err(SessionError::Tdac(TdacError::InvalidConfig(
                "the incremental session supports only the dense Eq. 1 pipeline; \
                 missing_aware mode has no incremental maintenance rules yet"
                    .to_string(),
            )));
        }
        if config.backend.is_sharded() {
            return Err(SessionError::Tdac(TdacError::InvalidConfig(
                "config.backend is Sharded: the incremental session executes in-process \
                 only — hand this config to td_shard::ShardRunner (or `tdc shard`) for \
                 batch runs instead"
                    .to_string(),
            )));
        }
        if let RepartitionPolicy::OnDrift(threshold) = policy {
            if !threshold.is_finite() || threshold < 0.0 {
                return Err(SessionError::Tdac(TdacError::InvalidConfig(format!(
                    "drift threshold must be finite and non-negative, got {threshold}"
                ))));
            }
        }
        let delta = DeltaDataset::new(dataset)?;

        let user_obs = config.observer.clone();
        let baseline = user_obs.profile();
        let obs = run_observer(&config, &user_obs);
        let cache = HashMap::new();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            config.effective_parallelism().install(|| {
                let budget = Budget::arm(&config.limits, &obs);
                pass_full(&base, &config, delta.current(), seed, &cache, &obs, budget.as_ref())
            })
        }));
        let mut pass = match caught {
            Ok(result) => result?,
            Err(payload) => {
                obs.incr(Counter::WorkerPanics, 1);
                return Err(SessionError::Tdac(TdacError::WorkerPanic {
                    phase: "pipeline".to_string(),
                    detail: panic_message(payload.as_ref()),
                }));
            }
        };
        pass.outcome.profile = user_obs.profile().map(|p| match &baseline {
            Some(b) => p.delta_since(b),
            None => p,
        });
        Ok(Self {
            base,
            config,
            policy,
            delta,
            reference: pass.reference,
            derived: pass.derived,
            pin: pass.pin,
            pin_is_fallback: pass.pin_is_fallback,
            silhouette_at_pin: pass.silhouette_at_pin,
            cache: pass.partials.into_iter().collect(),
            outcome: pass.outcome,
        })
    }

    /// Ingests one claim batch: appends it to the accumulated dataset
    /// (stable entity ids, append-only conflict discipline), recomputes
    /// the dirty attributes, and returns the fresh outcome with an
    /// account of how much cached state survived.
    ///
    /// Under [`RepartitionPolicy::Always`] the returned outcome is
    /// bit-identical to [`crate::Tdac::run`] on the accumulated claim
    /// set. On [`SessionError::Model`] the session (dataset included)
    /// is unchanged; on [`SessionError::Tdac`] the dataset keeps the
    /// batch and the maintained intermediates are conservatively
    /// invalidated, so the next ingest rebuilds what it needs.
    pub fn ingest(&mut self, batch: &ClaimBatch) -> Result<IngestReport, SessionError> {
        let summary = self.delta.apply(batch)?;
        let user_obs = self.config.observer.clone();
        let baseline = user_obs.profile();
        let obs = run_observer(&self.config, &user_obs);
        let parallelism = self.config.effective_parallelism();
        let limits = self.config.limits.clone();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallelism.install(|| {
                let budget = Budget::arm(&limits, &obs);
                self.ingest_inner(&summary, &obs, budget.as_ref())
            })
        }));
        let mut stats = match caught {
            Ok(result) => result?,
            Err(payload) => {
                // A panic may have interrupted state maintenance:
                // invalidate the incremental intermediates so the next
                // ingest rebuilds from the (consistent) dataset.
                self.derived = None;
                self.cache.clear();
                obs.incr(Counter::WorkerPanics, 1);
                return Err(SessionError::Tdac(TdacError::WorkerPanic {
                    phase: "pipeline".to_string(),
                    detail: panic_message(payload.as_ref()),
                }));
            }
        };
        stats.outcome.profile = user_obs.profile().map(|p| match &baseline {
            Some(b) => p.delta_since(b),
            None => p,
        });
        self.outcome = stats.outcome.clone();
        Ok(IngestReport {
            groups_total: stats.outcome.partition.len(),
            outcome: stats.outcome,
            summary,
            dirty_attributes: stats.dirty,
            repartitioned: stats.repartitioned,
            rebuilt: stats.rebuilt,
            groups_reused: stats.reused,
        })
    }

    fn ingest_inner(
        &mut self,
        summary: &DeltaSummary,
        obs: &Observer,
        budget: Option<&Budget>,
    ) -> Result<IngestStats, TdacError> {
        let Self {
            base,
            config,
            policy,
            delta,
            reference,
            derived,
            pin,
            pin_is_fallback,
            silhouette_at_pin,
            cache,
            outcome,
        } = self;
        let dataset = delta.current();
        let view = dataset.view_all();
        let attrs = view.attributes().to_vec();
        let n = attrs.len();

        // New sources shift every (object, source) column index, and a
        // session without dense state (previous pass was a small-|A|
        // fallback) has nothing to maintain: both rebuild from scratch.
        let rebuild = derived.is_none() || summary.new_sources > 0;

        // Reference truth + the dirty set: claim-dirty attributes from
        // the batch, plus attributes whose reference predictions changed
        // as a knock-on effect. Rows of dirty attributes are then
        // rescattered in place (the incremental path only).
        let (new_reference, dirty, old_n) = {
            let _s = obs.span("truth_vectors");
            let new_reference = base.discover_observed(&view, obs);
            let mut dirty_flag = vec![false; dataset.n_attributes()];
            for a in &summary.dirty_attributes {
                dirty_flag[a.index()] = true;
            }
            for cell in view.cells() {
                if dirty_flag[cell.attribute.index()] {
                    continue;
                }
                if new_reference.prediction(cell.object, cell.attribute)
                    != reference.prediction(cell.object, cell.attribute)
                {
                    dirty_flag[cell.attribute.index()] = true;
                }
            }
            let dirty: Vec<AttributeId> =
                attrs.iter().copied().filter(|a| dirty_flag[a.index()]).collect();
            obs.incr(Counter::DirtyAttributes, dirty.len() as u64);

            let old_n = if rebuild {
                0
            } else {
                let d = derived.as_mut().expect("incremental path has dense state");
                let old_n = d.vectors.dense.n_rows();
                d.vectors.append_attribute_rows(n - old_n);
                let target_cols = dataset.n_objects() * dataset.n_sources();
                d.vectors.append_pair_cols(target_cols - d.vectors.dense.n_cols());
                rescatter_rows(&mut d.vectors, &view, &new_reference, &dirty);
                old_n
            };
            (new_reference, dirty, old_n)
        };

        // Cached per-group partials survive only for groups the batch
        // could not have changed: prune dirty ones now, before any
        // lookup; a changed source count invalidates everything (trust
        // vectors change length).
        if summary.new_sources > 0 {
            cache.clear();
        } else if !dirty.is_empty() {
            cache.retain(|group, _| !group.iter().any(|a| dirty.binary_search(a).is_ok()));
        }

        if rebuild {
            let pass =
                pass_full(&*base, config, dataset, Some(new_reference), cache, obs, budget)?;
            let reused = pass.groups_reused;
            let out = adopt(
                pass,
                reference,
                derived,
                pin,
                pin_is_fallback,
                silhouette_at_pin,
                cache,
                outcome,
            );
            return Ok(IngestStats {
                outcome: out,
                dirty,
                reused,
                repartitioned: true,
                rebuilt: true,
            });
        }
        *reference = new_reference;

        // Distance maintenance: only pairs with a dirty endpoint are
        // re-evaluated; budget probes mirror the batch pipeline's
        // boundaries, pre-charging just the re-evaluated pairs (the
        // whole point of the incremental path).
        let d = derived.as_mut().expect("incremental path has dense state");
        let dirty_rows: Vec<usize> = dirty.iter().map(|a| a.index()).collect();
        let recomputed = half_pairs(n) - half_pairs(n - dirty_rows.len());
        if let Some(deg) = exhausted(budget, "truth_vectors", recomputed) {
            // The distance matrix was not updated; drop the dense state
            // so the next ingest rebuilds instead of trusting it.
            *derived = None;
            let out = degraded_outcome(reference.clone(), &attrs, Vec::new(), deg);
            *outcome = out.clone();
            return Ok(IngestStats {
                outcome: out,
                dirty,
                reused: 0,
                repartitioned: false,
                rebuilt: false,
            });
        }
        {
            let _s = obs.span("distance_matrix");
            obs.incr(Counter::DistCacheMisses, 1);
            let dist_opts = DistanceOptions::builder()
                .kernel(config.effective_kernel())
                .observer(obs.clone())
                .build();
            let updated = dist_opts.update_pairwise(
                &d.dist,
                old_n,
                d.vectors.rows(),
                config.metric.as_metric(),
                &dirty_rows,
            );
            d.dist = updated;
        }

        // Partition decision. The pinned grouping's silhouette is
        // recomputed from the maintained distances whenever the pin is a
        // real (multi-group) partition — it is both the drift signal and
        // the silhouette reported on pinned outcomes.
        let forced = summary.new_attributes > 0;
        // A pin that does not cover the new attributes cannot be scored
        // (forced re-sweep replaces it regardless).
        let multi = !forced && !*pin_is_fallback && pin.len() >= 2;
        let current_sil = if multi {
            let assignments = assignments_of(pin, &attrs);
            silhouette_paper_dist(&d.dist, n, &assignments)
        } else {
            0.0
        };
        let (resweep, drift) = match *policy {
            RepartitionPolicy::Always => (true, false),
            RepartitionPolicy::Never => (forced, false),
            RepartitionPolicy::OnDrift(threshold) => {
                if forced {
                    (true, false)
                } else if multi && *silhouette_at_pin - current_sil > threshold {
                    (true, true)
                } else {
                    (false, false)
                }
            }
        };

        if resweep {
            if drift {
                obs.incr(Counter::DriftRepartitions, 1);
            }
            let din = derived.take().expect("incremental path has dense state");
            let pass = sweep_and_finish(
                &*base,
                config,
                dataset,
                &attrs,
                din,
                reference.clone(),
                cache,
                obs,
                budget,
            )?;
            let reused = pass.groups_reused;
            let out = adopt(
                pass,
                reference,
                derived,
                pin,
                pin_is_fallback,
                silhouette_at_pin,
                cache,
                outcome,
            );
            return Ok(IngestStats {
                outcome: out,
                dirty,
                reused,
                repartitioned: true,
                rebuilt: false,
            });
        }

        // Pinned path: per-group runs under the pinned partition, with
        // clean groups served from the cache. Refuse to start on an
        // exhausted budget, exactly like the batch pipeline.
        if let Some(b) = budget {
            if let Some(deg) = b.check("per_group_run") {
                let out = degraded_outcome(reference.clone(), &attrs, Vec::new(), deg);
                *outcome = out.clone();
                return Ok(IngestStats {
                    outcome: out,
                    dirty,
                    reused: 0,
                    repartitioned: false,
                    rebuilt: false,
                });
            }
        }
        let groups = pin.groups().to_vec();
        let cached: Vec<Option<TruthResult>> =
            groups.iter().map(|g| cache.get(g).cloned()).collect();
        let reused = cached.iter().flatten().count();
        let partials = per_group_partials(&*base, dataset, &groups, &cached, obs)?;
        *cache = groups.iter().cloned().zip(partials.iter().cloned()).collect();
        let result = merge_partials(&partials, obs);
        let out = TdacOutcome {
            result,
            partition: pin.clone(),
            silhouette: current_sil,
            k_scores: Vec::new(),
            fallback: *pin_is_fallback,
            degradation: None,
            profile: None,
        };
        *outcome = out.clone();
        Ok(IngestStats {
            outcome: out,
            dirty,
            reused,
            repartitioned: false,
            rebuilt: false,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &TdacConfig {
        &self.config
    }

    /// The active repartition policy.
    pub fn policy(&self) -> RepartitionPolicy {
        self.policy
    }

    /// The accumulated dataset (base plus every ingested batch).
    pub fn dataset(&self) -> &Dataset {
        self.delta.current()
    }

    /// The latest outcome (from [`TdacSession::start`] or the most
    /// recent successful [`TdacSession::ingest`]).
    pub fn outcome(&self) -> &TdacOutcome {
        &self.outcome
    }

    /// The currently pinned attribute partition.
    pub fn partition(&self) -> &AttributePartition {
        &self.pin
    }

    /// Number of batches ingested since the base dataset.
    pub fn batches_applied(&self) -> usize {
        self.delta.batches_applied()
    }

    /// Total claims appended since the base dataset.
    pub fn claims_appended(&self) -> usize {
        self.delta.claims_appended()
    }

    /// Replaces the execution limits applied to subsequent ingests.
    ///
    /// A serving front end maps each request's remaining deadline onto
    /// the session before ingesting, so one slow batch degrades (flagged
    /// best-so-far outcome) instead of stalling the queue behind it.
    /// Only the limits change; observer, parallelism and every pipeline
    /// knob are untouched, preserving the bit-identity contract for
    /// work that completes within budget.
    ///
    /// # Errors
    /// [`TdacError::InvalidConfig`] when the limits fail
    /// [`td_obs::ExecutionLimits::validate`] (zero budgets); the
    /// session keeps its previous limits.
    pub fn set_limits(
        &mut self,
        limits: td_obs::ExecutionLimits,
    ) -> Result<(), TdacError> {
        limits
            .validate()
            .map_err(TdacError::InvalidConfig)?;
        self.config.limits = limits;
        Ok(())
    }
}

impl<B: fmt::Debug> fmt::Debug for TdacSession<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TdacSession")
            .field("base", &self.base)
            .field("policy", &self.policy)
            .field("batches_applied", &self.delta.batches_applied())
            .field("claims_appended", &self.delta.claims_appended())
            .field("pin", &self.pin)
            .field("pin_is_fallback", &self.pin_is_fallback)
            .field("silhouette_at_pin", &self.silhouette_at_pin)
            .finish_non_exhaustive()
    }
}

/// The observer a run executes against: the user's handle, or a private
/// enabled one when counter-metered limits are active but the user's
/// observer is disabled (mirrors [`crate::Tdac::run_view`]).
fn run_observer(config: &TdacConfig, user_obs: &Observer) -> Observer {
    if config.limits.is_active() && !user_obs.is_enabled() {
        Observer::enabled()
    } else {
        user_obs.clone()
    }
}

/// Unordered pairs among `n` rows.
fn half_pairs(n: usize) -> u64 {
    (n * n.saturating_sub(1) / 2) as u64
}

/// Cluster assignment per attribute (in `attrs` order) induced by a
/// partition covering exactly those attributes.
fn assignments_of(pin: &AttributePartition, attrs: &[AttributeId]) -> Vec<usize> {
    let max = attrs.iter().map(|a| a.index()).max().unwrap_or(0);
    let mut group_of = vec![usize::MAX; max + 1];
    for (gi, group) in pin.groups().iter().enumerate() {
        for a in group {
            if a.index() <= max {
                group_of[a.index()] = gi;
            }
        }
    }
    attrs.iter().map(|a| group_of[a.index()]).collect()
}

/// Installs a pass's outputs into the session state and returns the
/// outcome. Degraded passes carry no partials; the (already pruned)
/// cache then survives as-is.
#[allow(clippy::too_many_arguments)]
fn adopt(
    pass: PassOutput,
    reference: &mut TruthResult,
    derived: &mut Option<Derived>,
    pin: &mut AttributePartition,
    pin_is_fallback: &mut bool,
    silhouette_at_pin: &mut f64,
    cache: &mut HashMap<Vec<AttributeId>, TruthResult>,
    outcome: &mut TdacOutcome,
) -> TdacOutcome {
    *reference = pass.reference;
    *derived = pass.derived;
    *pin = pass.pin;
    *pin_is_fallback = pass.pin_is_fallback;
    *silhouette_at_pin = pass.silhouette_at_pin;
    if !pass.partials.is_empty() {
        *cache = pass.partials.into_iter().collect();
    }
    *outcome = pass.outcome.clone();
    pass.outcome
}

/// A degraded (budget-exhausted) outcome: the reference result under
/// the un-partitioned whole, flagged — mirrors the batch pipeline's
/// best-so-far discipline.
fn degraded_outcome(
    reference: TruthResult,
    attrs: &[AttributeId],
    k_scores: Vec<(usize, f64)>,
    degradation: Degradation,
) -> TdacOutcome {
    let mut result = reference;
    result.iterations = 1;
    TdacOutcome {
        result,
        partition: AttributePartition::whole(attrs),
        silhouette: 0.0,
        k_scores,
        fallback: true,
        degradation: Some(degradation),
        profile: None,
    }
}

fn degraded_pass(
    reference: TruthResult,
    attrs: &[AttributeId],
    k_scores: Vec<(usize, f64)>,
    degradation: Degradation,
    derived: Option<Derived>,
) -> PassOutput {
    let outcome = degraded_outcome(reference.clone(), attrs, k_scores, degradation);
    let pin = outcome.partition.clone();
    PassOutput {
        outcome,
        reference,
        derived,
        pin,
        pin_is_fallback: true,
        silhouette_at_pin: 0.0,
        partials: Vec::new(),
        groups_reused: 0,
    }
}

/// One full pipeline pass over the accumulated dataset, mirroring
/// [`crate::Tdac::run_view`]'s dense path statement-for-statement (the
/// shared sweep/scan/per-group functions make the hot parts literally
/// the same code). `reference` skips the base run when the caller
/// already computed it this ingest; `cache` seeds per-group reuse.
fn pass_full(
    base: &(dyn TruthDiscovery + Sync),
    config: &TdacConfig,
    dataset: &Dataset,
    reference: Option<TruthResult>,
    cache: &HashMap<Vec<AttributeId>, TruthResult>,
    obs: &Observer,
    budget: Option<&Budget>,
) -> Result<PassOutput, TdacError> {
    let view = dataset.view_all();
    let attrs = view.attributes().to_vec();
    let n = attrs.len();
    if n == 0 {
        return Err(TdacError::NoAttributes);
    }

    let k_hi = config.k_max.unwrap_or(n.saturating_sub(1)).min(n.saturating_sub(1));
    if n < 3 || config.k_min > k_hi {
        // Mirror the batch pipeline's small-|A| fallback: one
        // un-partitioned base run (the reference itself when already
        // computed — same algorithm, same view, same bits).
        let reference = reference.unwrap_or_else(|| {
            let _s = obs.span("per_group_run");
            base.discover_observed(&view, obs)
        });
        let mut result = reference.clone();
        result.iterations = 1;
        let pin = AttributePartition::whole(&attrs);
        return Ok(PassOutput {
            outcome: TdacOutcome {
                result,
                partition: pin.clone(),
                silhouette: 0.0,
                k_scores: Vec::new(),
                fallback: true,
                degradation: None,
                profile: None,
            },
            partials: vec![(attrs.clone(), reference.clone())],
            reference,
            derived: None,
            pin,
            pin_is_fallback: true,
            silhouette_at_pin: 0.0,
            groups_reused: 0,
        });
    }

    let pairs = half_pairs(n);
    let (vectors, reference) = {
        let _s = obs.span("truth_vectors");
        match reference {
            Some(r) => (truth_vector_set_from_result(&view, &r), r),
            None => truth_vector_set(base, &view, obs),
        }
    };
    if let Some(deg) = exhausted(budget, "truth_vectors", pairs) {
        return Ok(degraded_pass(reference, &attrs, Vec::new(), deg, None));
    }
    let dist = {
        let _s = obs.span("distance_matrix");
        obs.incr(Counter::DistCacheMisses, 1);
        let dist_opts = DistanceOptions::builder()
            .kernel(config.effective_kernel())
            .observer(obs.clone())
            .build();
        dist_opts.pairwise(vectors.rows(), config.metric.as_metric())
    };
    sweep_and_finish(
        base,
        config,
        dataset,
        &attrs,
        Derived { vectors, dist },
        reference,
        cache,
        obs,
        budget,
    )
}

/// The silhouette k-sweep plus the per-group finish, over
/// already-maintained truth vectors and distances. Shared by the full
/// pass and the incremental re-sweep; the control flow mirrors
/// [`crate::Tdac::run_view`] exactly (winner scan, degradation rules,
/// silhouette floor, per-group budget probe).
#[allow(clippy::too_many_arguments)]
fn sweep_and_finish(
    base: &(dyn TruthDiscovery + Sync),
    config: &TdacConfig,
    dataset: &Dataset,
    attrs: &[AttributeId],
    derived: Derived,
    reference: TruthResult,
    cache: &HashMap<Vec<AttributeId>, TruthResult>,
    obs: &Observer,
    budget: Option<&Budget>,
) -> Result<PassOutput, TdacError> {
    let n = attrs.len();
    let k_hi = config.k_max.unwrap_or(n - 1).min(n - 1);
    let ks: Vec<usize> = (config.k_min..=k_hi).collect();
    let evals = sweep_dense(config, &derived.vectors.dense, &derived.dist, &ks, obs, budget);
    let (k_scores, best) = scan_winner(&ks, evals)?;

    let sweep_degradation = if k_scores.len() < ks.len() {
        let b = budget.expect("k values are only skipped under a budget");
        let reason = b.interrupted().unwrap_or(DegradationReason::Cancelled);
        Some(b.degrade(reason, "k_sweep"))
    } else {
        None
    };
    let Some((silhouette, assignments, _k)) = best else {
        let deg = sweep_degradation.expect("an empty sweep implies skips");
        return Ok(degraded_pass(reference, attrs, k_scores, deg, Some(derived)));
    };
    if let Some(deg) = sweep_degradation {
        if deg.reason == DegradationReason::Cancelled {
            return Ok(degraded_pass(reference, attrs, k_scores, deg, Some(derived)));
        }
        // Deadline overshoot: the best-so-far k is worth the (bounded)
        // per-group replay — the outcome stays flagged.
        return finish_groups(
            base, dataset, attrs, &assignments, silhouette, k_scores, derived, reference,
            cache, obs, Some(deg),
        );
    }

    if let Some(floor) = config.min_silhouette {
        if silhouette <= floor {
            // The batch pipeline's fallback re-runs the base algorithm
            // on the full view; that run is bit-identical to the
            // reference, which is reused instead.
            let mut result = reference.clone();
            result.iterations = 1;
            let pin = AttributePartition::whole(attrs);
            return Ok(PassOutput {
                outcome: TdacOutcome {
                    result,
                    partition: pin.clone(),
                    silhouette: 0.0,
                    k_scores,
                    fallback: true,
                    degradation: None,
                    profile: None,
                },
                partials: vec![(attrs.to_vec(), reference.clone())],
                reference,
                derived: Some(derived),
                pin,
                pin_is_fallback: true,
                silhouette_at_pin: 0.0,
                groups_reused: 0,
            });
        }
    }

    if let Some(b) = budget {
        if let Some(deg) = b.check("per_group_run") {
            return Ok(degraded_pass(reference, attrs, k_scores, deg, Some(derived)));
        }
    }
    finish_groups(
        base, dataset, attrs, &assignments, silhouette, k_scores, derived, reference, cache,
        obs, None,
    )
}

/// Step 4 + 5 with cache-aware per-group runs: clean groups reuse their
/// cached partial, dirty ones run fresh, the merge is unchanged.
#[allow(clippy::too_many_arguments)]
fn finish_groups(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    attrs: &[AttributeId],
    assignments: &[usize],
    silhouette: f64,
    k_scores: Vec<(usize, f64)>,
    derived: Derived,
    reference: TruthResult,
    cache: &HashMap<Vec<AttributeId>, TruthResult>,
    obs: &Observer,
    degradation: Option<Degradation>,
) -> Result<PassOutput, TdacError> {
    let partition = AttributePartition::from_assignments(attrs, assignments);
    let groups = partition.groups().to_vec();
    let cached: Vec<Option<TruthResult>> = groups.iter().map(|g| cache.get(g).cloned()).collect();
    let groups_reused = cached.iter().flatten().count();
    let partials = per_group_partials(base, dataset, &groups, &cached, obs)?;
    let result = merge_partials(&partials, obs);
    Ok(PassOutput {
        outcome: TdacOutcome {
            result,
            partition: partition.clone(),
            silhouette,
            k_scores,
            fallback: false,
            degradation,
            profile: None,
        },
        partials: groups.into_iter().zip(partials).collect(),
        reference,
        derived: Some(derived),
        pin: partition,
        pin_is_fallback: false,
        silhouette_at_pin: silhouette,
        groups_reused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accugen::run_partition;
    use crate::tdac::Tdac;
    use td_algorithms::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    /// The planted two-group fixture from `tdac::tests`: sources g1, g2
    /// are right on a0..a2, sources h1, h2 on a3..a5.
    fn correlated_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        for o in 0..6i64 {
            let obj = format!("o{o}");
            for ai in 0..3u32 {
                let a = format!("a{ai}");
                b.claim("g1", &obj, &a, Value::int(o)).unwrap();
                b.claim("g2", &obj, &a, Value::int(o)).unwrap();
                b.claim("h1", &obj, &a, Value::int(1000 + o + ai as i64)).unwrap();
                b.claim("h2", &obj, &a, Value::int(2000 + o + ai as i64)).unwrap();
            }
            for ai in 3..6u32 {
                let a = format!("a{ai}");
                b.claim("g1", &obj, &a, Value::int(3000 + o + ai as i64)).unwrap();
                b.claim("g2", &obj, &a, Value::int(4000 + o + ai as i64)).unwrap();
                b.claim("h1", &obj, &a, Value::int(o)).unwrap();
                b.claim("h2", &obj, &a, Value::int(o)).unwrap();
            }
        }
        b.build()
    }

    fn assert_same_outcome(session: &TdacOutcome, batch: &TdacOutcome) {
        assert_eq!(session.partition, batch.partition);
        assert_eq!(session.silhouette.to_bits(), batch.silhouette.to_bits());
        assert_eq!(session.k_scores.len(), batch.k_scores.len());
        for (&(k1, s1), &(k2, s2)) in session.k_scores.iter().zip(&batch.k_scores) {
            assert_eq!(k1, k2);
            assert_eq!(s1.to_bits(), s2.to_bits());
        }
        assert_eq!(session.fallback, batch.fallback);
        assert_eq!(session.result.iterations, batch.result.iterations);
        assert_eq!(session.result.len(), batch.result.len());
    }

    fn assert_same_predictions(dataset: &Dataset, a: &TruthResult, b: &TruthResult) {
        let view = dataset.view_all();
        for cell in view.cells() {
            assert_eq!(
                a.prediction(cell.object, cell.attribute),
                b.prediction(cell.object, cell.attribute),
                "prediction mismatch at {:?}/{:?}",
                cell.object,
                cell.attribute
            );
        }
    }

    #[test]
    fn start_store_matches_start_and_skips_the_reference_run() {
        let d = correlated_dataset();
        let store = Tdac::new(TdacConfig::default()).pack(&MajorityVote, &d);
        let plain =
            TdacSession::start(MajorityVote, TdacConfig::default(), RepartitionPolicy::Always, d.clone())
                .unwrap();
        let run_seeded = || {
            let config = TdacConfig {
                observer: Observer::enabled(),
                ..Default::default()
            };
            TdacSession::start_store(MajorityVote, config, RepartitionPolicy::Always, &store)
                .unwrap()
        };
        let seeded = run_seeded();
        assert_same_outcome(seeded.outcome(), plain.outcome());
        assert_same_predictions(&d, &seeded.outcome().result, &plain.outcome().result);
        // The seeded start rescatters vectors from the page's reference
        // instead of re-running the base algorithm over the full view:
        // fewer recorded fixpoint iterations than a fresh observed start.
        let fresh_obs = {
            let config = TdacConfig {
                observer: Observer::enabled(),
                ..Default::default()
            };
            TdacSession::start(MajorityVote, config, RepartitionPolicy::Always, d.clone()).unwrap()
        };
        let iters = |s: &TdacSession<MajorityVote>| {
            s.outcome()
                .profile
                .as_ref()
                .unwrap()
                .counter("fixpoint_iterations")
                .unwrap_or(0)
        };
        assert!(iters(&seeded) < iters(&fresh_obs));
    }

    #[test]
    fn rejects_missing_aware_and_bad_drift_thresholds() {
        let d = correlated_dataset();
        let cfg = TdacConfig {
            missing_aware: true,
            ..Default::default()
        };
        let err = TdacSession::start(MajorityVote, cfg, RepartitionPolicy::Always, d.clone())
            .unwrap_err();
        assert!(matches!(err, SessionError::Tdac(TdacError::InvalidConfig(_))));
        for t in [f64::NAN, f64::INFINITY, -0.5] {
            let err = TdacSession::start(
                MajorityVote,
                TdacConfig::default(),
                RepartitionPolicy::OnDrift(t),
                d.clone(),
            )
            .unwrap_err();
            assert!(matches!(err, SessionError::Tdac(TdacError::InvalidConfig(_))), "{t}");
        }
    }

    #[test]
    fn start_matches_batch_run() {
        let d = correlated_dataset();
        let oracle = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        let session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Always,
            d.clone(),
        )
        .unwrap();
        assert!(!session.outcome().fallback);
        assert_same_outcome(session.outcome(), &oracle);
        assert_same_predictions(&d, &session.outcome().result, &oracle.result);
    }

    #[test]
    fn always_policy_ingest_matches_batch_recompute() {
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Always,
            correlated_dataset(),
        )
        .unwrap();
        // A new object claimed on one attribute: appends pair columns
        // and dirties a0 only, yet under Always the sweep re-runs.
        let mut batch = ClaimBatch::new();
        batch
            .claim("g1", "o6", "a0", Value::int(6))
            .claim("g2", "o6", "a0", Value::int(6))
            .claim("h1", "o6", "a0", Value::int(1006));
        let report = session.ingest(&batch).unwrap();
        assert!(report.repartitioned);
        assert!(!report.rebuilt);
        assert_eq!(report.summary.new_objects, 1);
        let oracle = Tdac::new(TdacConfig::default())
            .run(&MajorityVote, session.dataset())
            .unwrap();
        assert_same_outcome(session.outcome(), &oracle);
        assert_same_predictions(session.dataset(), &session.outcome().result, &oracle.result);
    }

    #[test]
    fn pinned_ingest_reuses_clean_groups_and_matches_run_partition() {
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Never,
            correlated_dataset(),
        )
        .unwrap();
        assert_eq!(session.partition().len(), 2);
        let pin = session.partition().clone();
        let mut batch = ClaimBatch::new();
        batch.claim("g1", "o6", "a0", Value::int(6));
        let report = session.ingest(&batch).unwrap();
        assert!(!report.repartitioned);
        assert!(!report.rebuilt);
        assert_eq!(report.groups_total, 2);
        assert_eq!(report.groups_reused, 1, "the a3..a5 group is clean");
        assert_eq!(report.dirty_attributes.len(), 1);
        assert_eq!(session.partition(), &pin);
        // The pinned outcome must equal a from-scratch per-group replay
        // under the same partition (the reduced oracle).
        let mut oracle =
            run_partition(&MajorityVote, session.dataset(), &pin, &Observer::default());
        oracle.iterations = 1;
        assert_eq!(session.outcome().result.iterations, 1);
        assert_same_predictions(session.dataset(), &session.outcome().result, &oracle);
    }

    #[test]
    fn noop_batch_reuses_every_group() {
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Never,
            correlated_dataset(),
        )
        .unwrap();
        let mut batch = ClaimBatch::new();
        batch.claim("g1", "o0", "a0", Value::int(0)); // exact duplicate
        let report = session.ingest(&batch).unwrap();
        assert!(report.summary.is_noop());
        assert!(report.dirty_attributes.is_empty());
        assert_eq!(report.groups_reused, report.groups_total);
        assert!(!report.repartitioned);
        assert!(!report.rebuilt);
    }

    #[test]
    fn new_source_forces_full_rebuild() {
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Never,
            correlated_dataset(),
        )
        .unwrap();
        let mut batch = ClaimBatch::new();
        batch.claim("s9", "o0", "a0", Value::int(0));
        let report = session.ingest(&batch).unwrap();
        assert!(report.rebuilt, "a new source shifts every pair column");
        assert!(report.repartitioned);
        let oracle = Tdac::new(TdacConfig::default())
            .run(&MajorityVote, session.dataset())
            .unwrap();
        assert_same_outcome(session.outcome(), &oracle);
        assert_same_predictions(session.dataset(), &session.outcome().result, &oracle.result);
    }

    #[test]
    fn new_attribute_forces_resweep_under_pinned_policy() {
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Never,
            correlated_dataset(),
        )
        .unwrap();
        let mut batch = ClaimBatch::new();
        for o in 0..6i64 {
            let obj = format!("o{o}");
            batch
                .claim("g1", &obj, "a6", Value::int(5000 + o))
                .claim("g2", &obj, "a6", Value::int(6000 + o))
                .claim("h1", &obj, "a6", Value::int(o))
                .claim("h2", &obj, "a6", Value::int(o));
        }
        let report = session.ingest(&batch).unwrap();
        assert!(report.repartitioned, "the pin does not cover a6");
        assert!(!report.rebuilt);
        assert_eq!(session.partition().n_attributes(), 7);
        let oracle = Tdac::new(TdacConfig::default())
            .run(&MajorityVote, session.dataset())
            .unwrap();
        assert_same_outcome(session.outcome(), &oracle);
    }

    #[test]
    fn loose_drift_threshold_stays_pinned() {
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::OnDrift(10.0),
            correlated_dataset(),
        )
        .unwrap();
        let mut batch = ClaimBatch::new();
        batch.claim("g1", "o6", "a0", Value::int(6));
        let report = session.ingest(&batch).unwrap();
        assert!(!report.repartitioned, "silhouette cannot drop by 10");
        assert!(report.outcome.silhouette > 0.0, "pinned outcomes re-score the pin");
    }

    #[test]
    fn counters_account_for_dirt_reuse_and_drift() {
        let obs = Observer::enabled();
        let cfg = TdacConfig {
            observer: obs.clone(),
            ..Default::default()
        };
        let mut session = TdacSession::start(
            MajorityVote,
            cfg,
            RepartitionPolicy::Never,
            correlated_dataset(),
        )
        .unwrap();
        let mut batch = ClaimBatch::new();
        batch.claim("g1", "o6", "a0", Value::int(6));
        session.ingest(&batch).unwrap();
        assert_eq!(obs.counter_value(Counter::DirtyAttributes), 1);
        assert_eq!(obs.counter_value(Counter::PartitionsReused), 1);
        assert_eq!(obs.counter_value(Counter::DriftRepartitions), 0);
    }

    #[test]
    fn model_error_leaves_the_session_usable() {
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Always,
            correlated_dataset(),
        )
        .unwrap();
        let mut bad = ClaimBatch::new();
        bad.claim("g1", "o0", "a0", Value::int(999)); // contradicts the base
        let err = session.ingest(&bad).unwrap_err();
        assert!(matches!(err, SessionError::Model(_)));
        assert_eq!(session.batches_applied(), 0);

        let mut good = ClaimBatch::new();
        good.claim("g1", "o6", "a0", Value::int(6));
        session.ingest(&good).unwrap();
        assert_eq!(session.batches_applied(), 1);
        let oracle = Tdac::new(TdacConfig::default())
            .run(&MajorityVote, session.dataset())
            .unwrap();
        assert_same_outcome(session.outcome(), &oracle);
    }

    #[test]
    fn session_grows_out_of_small_dataset_fallback() {
        // A two-attribute base pins the un-partitioned fallback with no
        // dense state; a batch growing |A| past the sweep threshold must
        // rebuild and partition like a from-scratch run.
        let mut b = DatasetBuilder::new();
        for o in 0..6i64 {
            let obj = format!("o{o}");
            b.claim("g1", &obj, "a0", Value::int(o)).unwrap();
            b.claim("g2", &obj, "a0", Value::int(o)).unwrap();
            b.claim("h1", &obj, "a0", Value::int(1000 + o)).unwrap();
            b.claim("h2", &obj, "a0", Value::int(2000 + o)).unwrap();
            b.claim("g1", &obj, "a3", Value::int(3000 + o)).unwrap();
            b.claim("g2", &obj, "a3", Value::int(4000 + o)).unwrap();
            b.claim("h1", &obj, "a3", Value::int(o)).unwrap();
            b.claim("h2", &obj, "a3", Value::int(o)).unwrap();
        }
        let mut session = TdacSession::start(
            MajorityVote,
            TdacConfig::default(),
            RepartitionPolicy::Always,
            b.build(),
        )
        .unwrap();
        assert!(session.outcome().fallback);

        let mut batch = ClaimBatch::new();
        for o in 0..6i64 {
            let obj = format!("o{o}");
            for ai in [1u32, 2] {
                let a = format!("a{ai}");
                batch
                    .claim("g1", &obj, &a, Value::int(o))
                    .claim("g2", &obj, &a, Value::int(o))
                    .claim("h1", &obj, &a, Value::int(1000 + o + ai as i64))
                    .claim("h2", &obj, &a, Value::int(2000 + o + ai as i64));
            }
            for ai in [4u32, 5] {
                let a = format!("a{ai}");
                batch
                    .claim("g1", &obj, &a, Value::int(3000 + o + ai as i64))
                    .claim("g2", &obj, &a, Value::int(4000 + o + ai as i64))
                    .claim("h1", &obj, &a, Value::int(o))
                    .claim("h2", &obj, &a, Value::int(o));
            }
        }
        let report = session.ingest(&batch).unwrap();
        assert!(report.rebuilt, "no dense state existed to maintain");
        assert!(!session.outcome().fallback);
        assert_eq!(session.partition().len(), 2);
        let oracle = Tdac::new(TdacConfig::default())
            .run(&MajorityVote, session.dataset())
            .unwrap();
        assert_same_outcome(session.outcome(), &oracle);
        assert_same_predictions(session.dataset(), &session.outcome().result, &oracle.result);
    }
}
