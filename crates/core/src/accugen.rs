//! AccuGenPartition — the brute-force baseline from Ba, Horincar,
//! Senellart & Wu (*Truth Finding with Attribute Partitioning*,
//! WebDB 2015) that TD-AC improves on.
//!
//! The baseline enumerates **every** set partition of the attribute set
//! (Bell(|A|) of them), runs the base algorithm on every group of every
//! partition, and keeps the partition maximizing a weighting function
//! over the learned source reliabilities:
//!
//! * [`Weighting::Max`] — mean over groups of the *maximum* source
//!   reliability in the group (a partition is good when each group has
//!   at least one source the algorithm can pin its trust on);
//! * [`Weighting::Avg`] — mean over groups of the *average* source
//!   reliability (a partition is good when trust is high across the
//!   board);
//! * the **Oracle** variant scores each partition by its actual accuracy
//!   against ground truth — an upper bound no realizable strategy can
//!   beat, reported in the paper's Tables 4–5.
//!
//! The point of the exercise is the cost: Bell(6) = 203 partitions means
//! hundreds of base-algorithm runs where TD-AC needs |A|-2 k-means fits
//! and one run per group of a single partition. The experiment harness
//! reproduces exactly that blow-up (the paper's ~200× Time column).
//! Partition evaluation is embarrassingly parallel; the search streams
//! set partitions lazily (restricted-growth-string order) through rayon's
//! `par_bridge`, so the Bell(n)-sized space is never materialized, and
//! reduces with an order-insensitive `(score, index)` total order — the
//! winner is identical at any thread count.

use std::error::Error;
use std::fmt;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use td_algorithms::{TruthDiscovery, TruthResult};
use td_metrics::evaluate_fn;
use td_model::{Dataset, GroundTruth};
use td_obs::{Counter, Observer, RunProfile};

use crate::config::Parallelism;
use crate::partition::{bell_number, partitions_iter, AttributePartition};

/// Reliability-based partition scoring functions from the WebDB 2015
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weighting {
    /// Mean over groups of the maximum per-group source reliability.
    Max,
    /// Mean over groups of the average per-group source reliability.
    Avg,
}

impl fmt::Display for Weighting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Weighting::Max => write!(f, "Max"),
            Weighting::Avg => write!(f, "Avg"),
        }
    }
}

/// Errors from an AccuGenPartition run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccuGenError {
    /// The dataset has no attributes.
    NoAttributes,
    /// Refusing to enumerate Bell(n) partitions beyond the guard.
    TooManyAttributes {
        /// Attribute count.
        n: usize,
        /// Bell(n), the number of partitions that would be enumerated.
        bell: u64,
        /// The configured guard.
        limit: usize,
    },
}

impl fmt::Display for AccuGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccuGenError::NoAttributes => write!(f, "dataset has no attributes"),
            AccuGenError::TooManyAttributes { n, bell, limit } => write!(
                f,
                "{n} attributes ⇒ Bell({n}) = {bell} partitions exceeds the \
                 guard of {limit} attributes; brute force is intractable here \
                 (that is the paper's point — use TD-AC)"
            ),
        }
    }
}

impl Error for AccuGenError {}

/// The outcome of an AccuGenPartition run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuGenOutcome {
    /// Merged predictions of the winning partition.
    pub result: TruthResult,
    /// The winning partition.
    pub partition: AttributePartition,
    /// Its score under the weighting function (or its oracle accuracy).
    pub score: f64,
    /// How many partitions were evaluated (Bell(|A|) for the exhaustive
    /// scans, the number of local-search steps for the greedy variant).
    pub n_partitions: u64,
    /// Per-phase timings and work-unit counters for this run when
    /// `observer` is enabled; `None` with the default handle. Always
    /// this run's delta, even when the handle is reused.
    pub profile: Option<RunProfile>,
}

/// The brute-force baseline. See module docs.
#[derive(Debug, Clone)]
pub struct AccuGenPartition {
    /// Thread budget for the partition scan ([`Parallelism::Threads`]
    /// pins a pool; `Threads(1)` forces a sequential scan).
    pub parallelism: Parallelism,
    /// Refuse to run beyond this many attributes (Bell growth guard).
    pub max_attributes: usize,
    /// Instrumentation handle (disabled by default); records partitions
    /// scanned and per-run base-algorithm work, exposed on the outcome's
    /// `profile`.
    pub observer: Observer,
}

impl Default for AccuGenPartition {
    fn default() -> Self {
        Self {
            parallelism: Parallelism::Auto,
            max_attributes: 10,
            observer: Observer::disabled(),
        }
    }
}

/// One evaluated partition, before reduction.
struct Scored {
    index: usize,
    score: f64,
    result: TruthResult,
    partition: AttributePartition,
}

impl AccuGenPartition {
    // The three entry points (`run`, `run_oracle`, `run_greedy`) share
    // one signature shape on purpose: `(&self, base, dataset, <scoring
    // input>) -> Result<AccuGenOutcome, AccuGenError>`, where the last
    // parameter is the only thing that differs (a `Weighting`, a
    // `GroundTruth`, a `Weighting` again). Every variant replays the
    // winning partition through the same per-group machinery as
    // [`run_partition`], so their outcomes are directly comparable.

    /// Runs the exhaustive Bell(|A|) scan, scoring each partition with
    /// the reliability `weighting` function.
    ///
    /// Signature shape: `(&self, base, dataset, scoring-input) ->
    /// Result<AccuGenOutcome, AccuGenError>` — shared by
    /// [`AccuGenPartition::run_oracle`] and
    /// [`AccuGenPartition::run_greedy`].
    pub fn run(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        weighting: Weighting,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        self.search(dataset, |partition| {
            self.evaluate_weighted(base, dataset, partition, weighting)
        })
    }

    /// Runs the exhaustive scan with oracle scoring: each partition is
    /// scored by the accuracy of its merged predictions against
    /// `truth`. Same signature shape as [`AccuGenPartition::run`].
    pub fn run_oracle(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        truth: &GroundTruth,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        self.search(dataset, |partition| {
            let result = run_partition(base, dataset, partition, &self.observer);
            let report = evaluate_fn(dataset, truth, |o, a| result.prediction(o, a));
            (report.accuracy, result)
        })
    }

    fn search(
        &self,
        dataset: &Dataset,
        score_fn: impl Fn(&AttributePartition) -> (f64, TruthResult) + Sync,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        let attrs: Vec<_> = dataset.attribute_ids().collect();
        let n = attrs.len();
        if n == 0 {
            return Err(AccuGenError::NoAttributes);
        }
        if n > self.max_attributes {
            return Err(AccuGenError::TooManyAttributes {
                n,
                bell: bell_number(n),
                limit: self.max_attributes,
            });
        }

        // Stream partitions lazily: workers pull from the RGS odometer on
        // demand, fold locally with `better`, and the worker accumulators
        // are combined with the same total order — never materializing
        // the Bell(n)-sized vector the old scan chunked over.
        let baseline = self.observer.profile();
        let n_partitions = bell_number(n);
        let best = self.parallelism.install(|| {
            let _scan = self.observer.span("partition_scan");
            partitions_iter(&attrs)
                .enumerate()
                .par_bridge()
                .map(|(index, partition)| {
                    self.observer.incr(Counter::PartitionsScanned, 1);
                    let (score, result) = score_fn(&partition);
                    Some(Scored {
                        index,
                        score,
                        result,
                        partition,
                    })
                })
                .reduce(|| None, better)
        });

        let best = best.expect("at least one partition");
        Ok(AccuGenOutcome {
            result: best.result,
            partition: best.partition,
            score: best.score,
            n_partitions,
            profile: self.profile_delta(baseline),
        })
    }

    /// This run's profile delta against the snapshot taken at entry.
    fn profile_delta(&self, baseline: Option<RunProfile>) -> Option<RunProfile> {
        self.observer.profile().map(|p| match &baseline {
            Some(b) => p.delta_since(b),
            None => p,
        })
    }

    /// Greedy bottom-up exploration — the cheap alternative among the
    /// WebDB'15 paper's strategies. Starts from the all-singletons
    /// partition and repeatedly applies the group merge that most
    /// improves the weighting score, stopping at a local optimum. Costs
    /// `O(|A|³)` base runs instead of Bell(|A|), at the price of local
    /// optima — exactly the trade-off TD-AC's clustering removes.
    ///
    /// Same signature shape as [`AccuGenPartition::run`].
    pub fn run_greedy(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        weighting: Weighting,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        let attrs: Vec<_> = dataset.attribute_ids().collect();
        if attrs.is_empty() {
            return Err(AccuGenError::NoAttributes);
        }
        let baseline = self.observer.profile();
        let _scan = self.observer.span("partition_scan");
        let mut current =
            AttributePartition::new(attrs.iter().map(|&a| vec![a]).collect());
        self.observer.incr(Counter::PartitionsScanned, 1);
        let (mut score, mut result) =
            self.evaluate_weighted(base, dataset, &current, weighting);
        let mut evaluated = 1u64;

        loop {
            let groups = current.groups();
            let mut best: Option<(AttributePartition, f64, TruthResult)> = None;
            for i in 0..groups.len() {
                for j in (i + 1)..groups.len() {
                    let mut merged: Vec<Vec<_>> = groups.to_vec();
                    let g = merged.remove(j);
                    merged[i].extend(g);
                    let candidate = AttributePartition::new(merged);
                    self.observer.incr(Counter::PartitionsScanned, 1);
                    let (s, r) = self.evaluate_weighted(base, dataset, &candidate, weighting);
                    evaluated += 1;
                    if s > score && best.as_ref().is_none_or(|(_, bs, _)| s > *bs) {
                        best = Some((candidate, s, r));
                    }
                }
            }
            match best {
                Some((p, s, r)) => {
                    current = p;
                    score = s;
                    result = r;
                }
                None => break,
            }
        }

        drop(_scan);
        Ok(AccuGenOutcome {
            result,
            partition: current,
            score,
            n_partitions: evaluated,
            profile: self.profile_delta(baseline),
        })
    }

    fn evaluate_weighted(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        partition: &AttributePartition,
        weighting: Weighting,
    ) -> (f64, TruthResult) {
        let mut partials = Vec::with_capacity(partition.len());
        let mut group_scores = Vec::with_capacity(partition.len());
        for group in partition.groups() {
            let view = dataset.view_of(group);
            let partial = base.discover_observed(&view, &self.observer);
            // Only sources actually claiming inside the group carry
            // information about the partition's quality.
            let active: Vec<f64> = dataset
                .source_ids()
                .filter(|&s| view.claims_of_source(s).next().is_some())
                .map(|s| partial.source_trust[s.index()])
                .collect();
            if !active.is_empty() {
                let score = match weighting {
                    Weighting::Max => active.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    Weighting::Avg => active.iter().sum::<f64>() / active.len() as f64,
                };
                group_scores.push(score);
            }
            partials.push(partial);
        }
        let score = if group_scores.is_empty() {
            0.0
        } else {
            group_scores.iter().sum::<f64>() / group_scores.len() as f64
        };
        (score, TruthResult::merge_all(&partials))
    }
}

/// Reduction operator for the streamed scan: higher score wins, ties
/// broken by the smaller enumeration index. This is a total order over
/// `(score, index)`, so worker-local folds combined in any order pick
/// the same winner as a sequential fold — the reason the search is
/// bit-deterministic at every thread count.
fn better(a: Option<Scored>, b: Option<Scored>) -> Option<Scored> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => {
            if b.score > a.score || (b.score == a.score && b.index < a.index) {
                Some(b)
            } else {
                Some(a)
            }
        }
    }
}

/// Runs `base` once per group of `partition` and merges the results —
/// the shared replay primitive behind every AccuGen entry point and the
/// differential oracles in td-verify. This is the *low-level* building
/// block: it does no searching and returns a bare [`TruthResult`];
/// prefer [`AccuGenPartition::run`] / [`AccuGenPartition::run_oracle`] /
/// [`AccuGenPartition::run_greedy`] (which return a full
/// [`AccuGenOutcome`]) unless you already know the partition.
/// Each per-group base run is recorded against `observer` (pass
/// [`Observer::disabled`] when instrumentation is not wanted);
/// observation never changes the result.
pub fn run_partition(
    base: &dyn TruthDiscovery,
    dataset: &Dataset,
    partition: &AttributePartition,
    observer: &Observer,
) -> TruthResult {
    let partials: Vec<TruthResult> = partition
        .groups()
        .iter()
        .map(|group| base.discover_observed(&dataset.view_of(group), observer))
        .collect();
    TruthResult::merge_all(&partials)
}

/// Deprecated alias of [`run_partition`], kept for one release while
/// callers migrate to the unified entry point.
#[deprecated(note = "merged into `run_partition(base, dataset, partition, observer)`")]
pub fn run_partition_observed(
    base: &dyn TruthDiscovery,
    dataset: &Dataset,
    partition: &AttributePartition,
    observer: &Observer,
) -> TruthResult {
    run_partition(base, dataset, partition, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    /// Four attributes in two planted groups (sources specialize), with
    /// ground truth.
    fn dataset() -> (Dataset, GroundTruth, AttributePartition) {
        let mut b = DatasetBuilder::new();
        for o in 0..5 {
            let obj = format!("o{o}");
            for a in ["a0", "a1"] {
                b.claim("g1", &obj, a, Value::int(o)).unwrap();
                b.claim("g2", &obj, a, Value::int(o)).unwrap();
                b.claim("h1", &obj, a, Value::int(500 + o)).unwrap();
                b.claim("h2", &obj, a, Value::int(600 + o)).unwrap();
                b.truth(&obj, a, Value::int(o));
            }
            for a in ["b0", "b1"] {
                b.claim("g1", &obj, a, Value::int(700 + o)).unwrap();
                b.claim("g2", &obj, a, Value::int(800 + o)).unwrap();
                b.claim("h1", &obj, a, Value::int(o)).unwrap();
                b.claim("h2", &obj, a, Value::int(o)).unwrap();
                b.truth(&obj, a, Value::int(o));
            }
        }
        let (d, t) = b.build_with_truth();
        let ga: Vec<_> = ["a0", "a1"].iter().map(|a| d.attribute_id(a).unwrap()).collect();
        let gb: Vec<_> = ["b0", "b1"].iter().map(|a| d.attribute_id(a).unwrap()).collect();
        (d, t, AttributePartition::new(vec![ga, gb]))
    }

    use td_model::Dataset;

    #[test]
    fn oracle_finds_a_perfect_partition() {
        let (d, t, _planted) = dataset();
        let out = AccuGenPartition::default()
            .run_oracle(&MajorityVote, &d, &t)
            .unwrap();
        assert_eq!(out.n_partitions, bell_number(4));
        assert!(
            out.score > 0.99,
            "oracle should reach near-perfect accuracy, got {}",
            out.score
        );
    }

    #[test]
    fn weighted_variants_run_and_score() {
        let (d, _, _) = dataset();
        for w in [Weighting::Max, Weighting::Avg] {
            let out = AccuGenPartition::default().run(&MajorityVote, &d, w).unwrap();
            assert_eq!(out.n_partitions, 15);
            assert!(out.score.is_finite());
            assert_eq!(out.result.len(), d.n_cells(), "{w}");
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (d, t, _) = dataset();
        let par = AccuGenPartition {
            parallelism: crate::config::Parallelism::Auto,
            ..Default::default()
        };
        let seq = AccuGenPartition {
            parallelism: crate::config::Parallelism::Threads(1),
            ..Default::default()
        };
        let o1 = par.run_oracle(&MajorityVote, &d, &t).unwrap();
        let o2 = seq.run_oracle(&MajorityVote, &d, &t).unwrap();
        assert_eq!(o1.partition, o2.partition);
        assert_eq!(o1.score.to_bits(), o2.score.to_bits());
        let p1: std::collections::BTreeMap<_, _> =
            o1.result.iter().map(|(o, a, v, c)| ((o, a), (v, c.to_bits()))).collect();
        let p2: std::collections::BTreeMap<_, _> =
            o2.result.iter().map(|(o, a, v, c)| ((o, a), (v, c.to_bits()))).collect();
        assert_eq!(p1, p2);
        let w1 = par.run(&MajorityVote, &d, Weighting::Avg).unwrap();
        let w2 = seq.run(&MajorityVote, &d, Weighting::Avg).unwrap();
        assert_eq!(w1.partition, w2.partition);
        assert_eq!(w1.score.to_bits(), w2.score.to_bits());
        let t1: Vec<u64> = w1.result.source_trust.iter().map(|t| t.to_bits()).collect();
        let t2: Vec<u64> = w2.result.source_trust.iter().map(|t| t.to_bits()).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn attribute_guard_refuses_blowup() {
        let mut b = DatasetBuilder::new();
        for a in 0..12 {
            b.claim("s", "o", &format!("a{a}"), Value::int(1)).unwrap();
        }
        let d = b.build();
        let err = AccuGenPartition::default()
            .run(&MajorityVote, &d, Weighting::Max)
            .unwrap_err();
        assert!(matches!(err, AccuGenError::TooManyAttributes { n: 12, .. }));
        assert!(err.to_string().contains("TD-AC"));
    }

    #[test]
    fn greedy_is_cheaper_and_sound() {
        let (d, _, _) = dataset();
        let brute = AccuGenPartition::default();
        let greedy = brute.run_greedy(&MajorityVote, &d, Weighting::Avg).unwrap();
        let full = brute.run(&MajorityVote, &d, Weighting::Avg).unwrap();
        // Greedy evaluates far fewer partitions than Bell(n) can require
        // at larger n; at n = 4 it is bounded by singletons + merges.
        assert!(greedy.n_partitions <= 15 + 4);
        // Its local optimum can't beat the exhaustive optimum.
        assert!(greedy.score <= full.score + 1e-9);
        assert_eq!(greedy.result.len(), d.n_cells());
        assert_eq!(greedy.partition.n_attributes(), 4);
    }

    #[test]
    fn greedy_on_empty_dataset_errors() {
        let d = DatasetBuilder::new().build();
        assert!(AccuGenPartition::default()
            .run_greedy(&MajorityVote, &d, Weighting::Max)
            .is_err());
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let d = DatasetBuilder::new().build();
        assert_eq!(
            AccuGenPartition::default()
                .run(&MajorityVote, &d, Weighting::Max)
                .unwrap_err(),
            AccuGenError::NoAttributes
        );
    }

    #[test]
    fn run_partition_covers_all_cells_once() {
        let (d, _, planted) = dataset();
        let r = run_partition(&MajorityVote, &d, &planted, &Observer::disabled());
        assert_eq!(r.len(), d.n_cells());
    }
}
