//! AccuGenPartition — the brute-force baseline from Ba, Horincar,
//! Senellart & Wu (*Truth Finding with Attribute Partitioning*,
//! WebDB 2015) that TD-AC improves on.
//!
//! The baseline enumerates **every** set partition of the attribute set
//! (Bell(|A|) of them), runs the base algorithm on every group of every
//! partition, and keeps the partition maximizing a weighting function
//! over the learned source reliabilities:
//!
//! * [`Weighting::Max`] — mean over groups of the *maximum* source
//!   reliability in the group (a partition is good when each group has
//!   at least one source the algorithm can pin its trust on);
//! * [`Weighting::Avg`] — mean over groups of the *average* source
//!   reliability (a partition is good when trust is high across the
//!   board);
//! * the **Oracle** variant scores each partition by its actual accuracy
//!   against ground truth — an upper bound no realizable strategy can
//!   beat, reported in the paper's Tables 4–5.
//!
//! The point of the exercise is the cost: Bell(6) = 203 partitions means
//! hundreds of base-algorithm runs where TD-AC needs |A|-2 k-means fits
//! and one run per group of a single partition. The experiment harness
//! reproduces exactly that blow-up (the paper's ~200× Time column).
//! Partition evaluation is embarrassingly parallel; the search streams
//! set partitions lazily (restricted-growth-string order) through rayon's
//! `par_bridge`, so the Bell(n)-sized space is never materialized, and
//! reduces with an order-insensitive `(score, index)` total order — the
//! winner is identical at any thread count.

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use td_algorithms::{TruthDiscovery, TruthResult};
use td_metrics::evaluate_fn;
use td_model::{Dataset, GroundTruth};
use td_obs::{
    panic_message, Budget, Counter, Degradation, DegradationReason, ExecutionLimits, Observer,
    RunProfile,
};

use crate::config::Parallelism;
use crate::partition::{bell_number, partitions_iter, AttributePartition};

/// Reliability-based partition scoring functions from the WebDB 2015
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weighting {
    /// Mean over groups of the maximum per-group source reliability.
    Max,
    /// Mean over groups of the average per-group source reliability.
    Avg,
}

impl fmt::Display for Weighting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Weighting::Max => write!(f, "Max"),
            Weighting::Avg => write!(f, "Avg"),
        }
    }
}

/// Errors from an AccuGenPartition run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccuGenError {
    /// The dataset has no attributes.
    NoAttributes,
    /// Refusing to enumerate Bell(n) partitions beyond the guard.
    TooManyAttributes {
        /// Attribute count.
        n: usize,
        /// Bell(n), the number of partitions that would be enumerated.
        bell: u64,
        /// The configured guard.
        limit: usize,
    },
    /// A worker panicked while evaluating a partition; the panic was
    /// caught at the task boundary (the process never aborts) and
    /// converted into this typed error naming where it happened.
    WorkerPanic {
        /// The phase (span-path vocabulary) whose worker panicked, e.g.
        /// `partition_scan/partition=7`.
        phase: String,
        /// The panic message, when it carried one.
        detail: String,
    },
}

impl fmt::Display for AccuGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccuGenError::NoAttributes => write!(f, "dataset has no attributes"),
            AccuGenError::TooManyAttributes { n, bell, limit } => write!(
                f,
                "{n} attributes ⇒ Bell({n}) = {bell} partitions exceeds the \
                 guard of {limit} attributes; brute force is intractable here \
                 (that is the paper's point — use TD-AC)"
            ),
            AccuGenError::WorkerPanic { phase, detail } => {
                write!(f, "worker panic in phase `{phase}`: {detail}")
            }
        }
    }
}

impl Error for AccuGenError {}

/// The outcome of an AccuGenPartition run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuGenOutcome {
    /// Merged predictions of the winning partition.
    pub result: TruthResult,
    /// The winning partition.
    pub partition: AttributePartition,
    /// Its score under the weighting function (or its oracle accuracy).
    pub score: f64,
    /// How many partitions were evaluated (Bell(|A|) for the exhaustive
    /// scans, the number of local-search steps for the greedy variant;
    /// less when an execution limit truncated the search — see
    /// `degradation`).
    pub n_partitions: u64,
    /// `Some` when an execution limit cut the search short: the outcome
    /// is the best partition found *so far* — still a sound, merged
    /// truth-discovery result, just not the optimum over the full space.
    /// `None` on a complete scan.
    #[serde(default)]
    pub degradation: Option<Degradation>,
    /// Per-phase timings and work-unit counters for this run when
    /// `observer` is enabled; `None` with the default handle. Always
    /// this run's delta, even when the handle is reused.
    pub profile: Option<RunProfile>,
}

/// The brute-force baseline. See module docs.
#[derive(Debug, Clone)]
pub struct AccuGenPartition {
    /// Thread budget for the partition scan ([`Parallelism::Threads`]
    /// pins a pool; `Threads(1)` forces a sequential scan).
    pub parallelism: Parallelism,
    /// Refuse to run beyond this many attributes (Bell growth guard).
    pub max_attributes: usize,
    /// Instrumentation handle (disabled by default); records partitions
    /// scanned and per-run base-algorithm work, exposed on the outcome's
    /// `profile`.
    pub observer: Observer,
    /// Execution limits (unlimited by default). With a `max_partitions`
    /// cap the exhaustive scan is truncated to a deterministic prefix of
    /// the enumeration order; deadline and cancellation stop the scan at
    /// the next task boundary. Either way the outcome carries the best
    /// partition found so far, flagged via `AccuGenOutcome::degradation`.
    pub limits: ExecutionLimits,
}

impl Default for AccuGenPartition {
    fn default() -> Self {
        Self {
            parallelism: Parallelism::Auto,
            max_attributes: 10,
            observer: Observer::disabled(),
            limits: ExecutionLimits::default(),
        }
    }
}

/// One evaluated partition, before reduction.
struct Scored {
    index: usize,
    score: f64,
    result: TruthResult,
    partition: AttributePartition,
}

impl AccuGenPartition {
    // The three entry points (`run`, `run_oracle`, `run_greedy`) share
    // one signature shape on purpose: `(&self, base, dataset, <scoring
    // input>) -> Result<AccuGenOutcome, AccuGenError>`, where the last
    // parameter is the only thing that differs (a `Weighting`, a
    // `GroundTruth`, a `Weighting` again). Every variant replays the
    // winning partition through the same per-group machinery as
    // [`run_partition`], so their outcomes are directly comparable.

    /// Runs the exhaustive Bell(|A|) scan, scoring each partition with
    /// the reliability `weighting` function.
    ///
    /// Signature shape: `(&self, base, dataset, scoring-input) ->
    /// Result<AccuGenOutcome, AccuGenError>` — shared by
    /// [`AccuGenPartition::run_oracle`] and
    /// [`AccuGenPartition::run_greedy`].
    pub fn run(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        weighting: Weighting,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        self.search(dataset, |partition, obs| {
            self.evaluate_weighted(base, dataset, partition, weighting, obs)
        })
    }

    /// Runs the exhaustive scan with oracle scoring: each partition is
    /// scored by the accuracy of its merged predictions against
    /// `truth`. Same signature shape as [`AccuGenPartition::run`].
    pub fn run_oracle(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        truth: &GroundTruth,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        self.search(dataset, |partition, obs| {
            let result = run_partition(base, dataset, partition, obs);
            let report = evaluate_fn(dataset, truth, |o, a| result.prediction(o, a));
            (report.accuracy, result)
        })
    }

    /// Counter-based budgets meter observer counters, so an active limit
    /// with a disabled user observer runs against a private enabled
    /// handle; the user-facing profile stays keyed to their own handle.
    fn effective_observer(&self) -> Observer {
        if self.limits.is_active() && !self.observer.is_enabled() {
            Observer::enabled()
        } else {
            self.observer.clone()
        }
    }

    fn search(
        &self,
        dataset: &Dataset,
        score_fn: impl Fn(&AttributePartition, &Observer) -> (f64, TruthResult) + Sync,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        let attrs: Vec<_> = dataset.attribute_ids().collect();
        let n = attrs.len();
        if n == 0 {
            return Err(AccuGenError::NoAttributes);
        }
        if n > self.max_attributes {
            return Err(AccuGenError::TooManyAttributes {
                n,
                bell: bell_number(n),
                limit: self.max_attributes,
            });
        }

        // Stream partitions lazily: workers pull from the RGS odometer on
        // demand, fold locally with `combine`, and the worker accumulators
        // are combined with the same total order — never materializing
        // the Bell(n)-sized vector the old scan chunked over.
        let baseline = self.observer.profile();
        let obs = self.effective_observer();
        let bell = bell_number(n);
        let budget = Budget::arm(&self.limits, &obs);
        // A `max_partitions` cap truncates the *sequential* stream before
        // the parallel bridge: the scanned set is an exact prefix of the
        // enumeration order, identical at any thread count (and index 0 —
        // the all-in-one-group partition — is always evaluated).
        let limit = budget
            .as_ref()
            .and_then(|b| b.remaining_partitions())
            .map_or(bell, |r| r.min(bell))
            .max(1);

        // Per-partition carrier: a budget-skipped slot is `Ok(None)`, a
        // caught panic is `Err((index, message))` so the reduction can
        // pick the smallest-index failure deterministically.
        type Carrier = Result<Option<Scored>, (usize, String)>;
        let budget_ref = budget.as_ref();
        let obs_ref = &obs;
        let best: Carrier = self.parallelism.install(|| {
            let _scan = obs_ref.span("partition_scan");
            partitions_iter(&attrs)
                .take(limit as usize)
                .enumerate()
                .par_bridge()
                .map(|(index, partition)| -> Carrier {
                    // Cheap probe only (cancel + deadline): skipped slots
                    // drop out of the reduction, never counted as scanned.
                    if budget_ref.is_some_and(|b| b.interrupted().is_some()) {
                        return Ok(None);
                    }
                    match catch_unwind(AssertUnwindSafe(|| {
                        obs_ref.checkpoint("partition_scan/partition");
                        obs_ref.incr(Counter::PartitionsScanned, 1);
                        let (score, result) = score_fn(&partition, obs_ref);
                        Scored {
                            index,
                            score,
                            result,
                            partition,
                        }
                    })) {
                        Ok(scored) => Ok(Some(scored)),
                        Err(payload) => {
                            obs_ref.incr(Counter::WorkerPanics, 1);
                            Err((index, panic_message(payload.as_ref())))
                        }
                    }
                })
                .reduce(|| Ok(None), combine)
        });
        let best = match best {
            Ok(best) => best,
            Err((index, detail)) => {
                return Err(AccuGenError::WorkerPanic {
                    phase: format!("partition_scan/partition={index}"),
                    detail,
                })
            }
        };

        // Degradation accounting: a truncated stream means the partitions
        // cap fired; evaluating fewer than the streamed prefix means the
        // cancel/deadline probe skipped slots mid-flight.
        let mut degradation = None;
        let mut n_partitions = bell;
        if let Some(b) = budget_ref {
            let scanned = b.partitions_scanned();
            n_partitions = scanned;
            if limit < bell {
                let cap = b.limits().max_partitions.expect("truncation implies a cap");
                degradation = Some(b.degrade(DegradationReason::Partitions(cap), "partition_scan"));
            } else if scanned < limit {
                let reason = b.interrupted().unwrap_or(DegradationReason::Cancelled);
                degradation = Some(b.degrade(reason, "partition_scan"));
            }
        }

        let best = match best {
            Some(best) => best,
            None => {
                // Every slot was skipped (e.g. a pre-cancelled token).
                // Best-so-far must still be *something* sound: score the
                // first partition of the enumeration — one bounded base
                // run over the un-split attribute set.
                let first = partitions_iter(&attrs).next().expect("n > 0");
                let (score, result) = score_fn(&first, obs_ref);
                n_partitions = 1;
                Scored {
                    index: 0,
                    score,
                    result,
                    partition: first,
                }
            }
        };
        Ok(AccuGenOutcome {
            result: best.result,
            partition: best.partition,
            score: best.score,
            n_partitions,
            degradation,
            profile: self.profile_delta(baseline),
        })
    }

    /// This run's profile delta against the snapshot taken at entry.
    fn profile_delta(&self, baseline: Option<RunProfile>) -> Option<RunProfile> {
        self.observer.profile().map(|p| match &baseline {
            Some(b) => p.delta_since(b),
            None => p,
        })
    }

    /// Greedy bottom-up exploration — the cheap alternative among the
    /// WebDB'15 paper's strategies. Starts from the all-singletons
    /// partition and repeatedly applies the group merge that most
    /// improves the weighting score, stopping at a local optimum. Costs
    /// `O(|A|³)` base runs instead of Bell(|A|), at the price of local
    /// optima — exactly the trade-off TD-AC's clustering removes.
    ///
    /// Same signature shape as [`AccuGenPartition::run`].
    pub fn run_greedy(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        weighting: Weighting,
    ) -> Result<AccuGenOutcome, AccuGenError> {
        let attrs: Vec<_> = dataset.attribute_ids().collect();
        if attrs.is_empty() {
            return Err(AccuGenError::NoAttributes);
        }
        let baseline = self.observer.profile();
        let obs = self.effective_observer();
        let budget = Budget::arm(&self.limits, &obs);
        let _scan = obs.span("partition_scan");

        // Panic-isolated evaluation of one candidate: a poisoned
        // candidate fails the search with a typed error, never an abort.
        let eval = |partition: &AttributePartition| -> Result<(f64, TruthResult), AccuGenError> {
            catch_unwind(AssertUnwindSafe(|| {
                obs.checkpoint("partition_scan/partition");
                obs.incr(Counter::PartitionsScanned, 1);
                self.evaluate_weighted(base, dataset, partition, weighting, &obs)
            }))
            .map_err(|payload| {
                obs.incr(Counter::WorkerPanics, 1);
                AccuGenError::WorkerPanic {
                    phase: "partition_scan/greedy".to_string(),
                    detail: panic_message(payload.as_ref()),
                }
            })
        };

        let mut current =
            AttributePartition::new(attrs.iter().map(|&a| vec![a]).collect());
        // The all-singletons start is always evaluated (the search needs
        // at least one sound answer); the budget binds from there on.
        let (mut score, mut result) = eval(&current)?;
        let mut evaluated = 1u64;
        let mut degradation = None;

        'search: loop {
            let groups = current.groups();
            let mut best: Option<(AttributePartition, f64, TruthResult)> = None;
            for i in 0..groups.len() {
                for j in (i + 1)..groups.len() {
                    // The greedy walk is sequential, so the full budget
                    // probe (cancel, deadline, counter caps) is exact and
                    // deterministic here; on exhaustion the current local
                    // optimum is the best-so-far answer.
                    if let Some(b) = &budget {
                        if let Some(deg) = b.check("partition_scan") {
                            degradation = Some(deg);
                            break 'search;
                        }
                    }
                    let mut merged: Vec<Vec<_>> = groups.to_vec();
                    let g = merged.remove(j);
                    merged[i].extend(g);
                    let candidate = AttributePartition::new(merged);
                    let (s, r) = eval(&candidate)?;
                    evaluated += 1;
                    if s > score && best.as_ref().is_none_or(|(_, bs, _)| s > *bs) {
                        best = Some((candidate, s, r));
                    }
                }
            }
            match best {
                Some((p, s, r)) => {
                    current = p;
                    score = s;
                    result = r;
                }
                None => break,
            }
        }

        drop(_scan);
        Ok(AccuGenOutcome {
            result,
            partition: current,
            score,
            n_partitions: evaluated,
            degradation,
            profile: self.profile_delta(baseline),
        })
    }

    fn evaluate_weighted(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
        partition: &AttributePartition,
        weighting: Weighting,
        obs: &Observer,
    ) -> (f64, TruthResult) {
        let mut partials = Vec::with_capacity(partition.len());
        let mut group_scores = Vec::with_capacity(partition.len());
        for group in partition.groups() {
            let view = dataset.view_of(group);
            let partial = base.discover_observed(&view, obs);
            // Only sources actually claiming inside the group carry
            // information about the partition's quality.
            let active: Vec<f64> = dataset
                .source_ids()
                .filter(|&s| view.claims_of_source(s).next().is_some())
                .map(|s| partial.source_trust[s.index()])
                .collect();
            if !active.is_empty() {
                let score = match weighting {
                    Weighting::Max => active.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    Weighting::Avg => active.iter().sum::<f64>() / active.len() as f64,
                };
                group_scores.push(score);
            }
            partials.push(partial);
        }
        let score = if group_scores.is_empty() {
            0.0
        } else {
            group_scores.iter().sum::<f64>() / group_scores.len() as f64
        };
        (score, TruthResult::merge_all(&partials))
    }
}

/// Reduction operator for the streamed scan: higher score wins, ties
/// broken by the smaller enumeration index. This is a total order over
/// `(score, index)`, so worker-local folds combined in any order pick
/// the same winner as a sequential fold — the reason the search is
/// bit-deterministic at every thread count.
fn better(a: Option<Scored>, b: Option<Scored>) -> Option<Scored> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => {
            if b.score > a.score || (b.score == a.score && b.index < a.index) {
                Some(b)
            } else {
                Some(a)
            }
        }
    }
}

/// [`better`] lifted over the panic carrier: any caught panic outranks
/// every success, and among panics the smallest enumeration index wins —
/// both rules are order-insensitive, so the reported failure is the same
/// at any thread count.
#[allow(clippy::type_complexity)]
fn combine(
    a: Result<Option<Scored>, (usize, String)>,
    b: Result<Option<Scored>, (usize, String)>,
) -> Result<Option<Scored>, (usize, String)> {
    match (a, b) {
        (Err(a), Err(b)) => Err(if a.0 <= b.0 { a } else { b }),
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => Err(e),
        (Ok(a), Ok(b)) => Ok(better(a, b)),
    }
}

/// Runs `base` once per group of `partition` and merges the results —
/// the shared replay primitive behind every AccuGen entry point and the
/// differential oracles in td-verify. This is the *low-level* building
/// block: it does no searching and returns a bare [`TruthResult`];
/// prefer [`AccuGenPartition::run`] / [`AccuGenPartition::run_oracle`] /
/// [`AccuGenPartition::run_greedy`] (which return a full
/// [`AccuGenOutcome`]) unless you already know the partition.
/// Each per-group base run is recorded against `observer` (pass
/// [`Observer::disabled`] when instrumentation is not wanted);
/// observation never changes the result.
pub fn run_partition(
    base: &dyn TruthDiscovery,
    dataset: &Dataset,
    partition: &AttributePartition,
    observer: &Observer,
) -> TruthResult {
    let partials: Vec<TruthResult> = partition
        .groups()
        .iter()
        .map(|group| base.discover_observed(&dataset.view_of(group), observer))
        .collect();
    TruthResult::merge_all(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    /// Four attributes in two planted groups (sources specialize), with
    /// ground truth.
    fn dataset() -> (Dataset, GroundTruth, AttributePartition) {
        let mut b = DatasetBuilder::new();
        for o in 0..5 {
            let obj = format!("o{o}");
            for a in ["a0", "a1"] {
                b.claim("g1", &obj, a, Value::int(o)).unwrap();
                b.claim("g2", &obj, a, Value::int(o)).unwrap();
                b.claim("h1", &obj, a, Value::int(500 + o)).unwrap();
                b.claim("h2", &obj, a, Value::int(600 + o)).unwrap();
                b.truth(&obj, a, Value::int(o));
            }
            for a in ["b0", "b1"] {
                b.claim("g1", &obj, a, Value::int(700 + o)).unwrap();
                b.claim("g2", &obj, a, Value::int(800 + o)).unwrap();
                b.claim("h1", &obj, a, Value::int(o)).unwrap();
                b.claim("h2", &obj, a, Value::int(o)).unwrap();
                b.truth(&obj, a, Value::int(o));
            }
        }
        let (d, t) = b.build_with_truth();
        let ga: Vec<_> = ["a0", "a1"].iter().map(|a| d.attribute_id(a).unwrap()).collect();
        let gb: Vec<_> = ["b0", "b1"].iter().map(|a| d.attribute_id(a).unwrap()).collect();
        (d, t, AttributePartition::new(vec![ga, gb]))
    }

    use td_model::Dataset;

    #[test]
    fn oracle_finds_a_perfect_partition() {
        let (d, t, _planted) = dataset();
        let out = AccuGenPartition::default()
            .run_oracle(&MajorityVote, &d, &t)
            .unwrap();
        assert_eq!(out.n_partitions, bell_number(4));
        assert!(
            out.score > 0.99,
            "oracle should reach near-perfect accuracy, got {}",
            out.score
        );
    }

    #[test]
    fn weighted_variants_run_and_score() {
        let (d, _, _) = dataset();
        for w in [Weighting::Max, Weighting::Avg] {
            let out = AccuGenPartition::default().run(&MajorityVote, &d, w).unwrap();
            assert_eq!(out.n_partitions, 15);
            assert!(out.score.is_finite());
            assert_eq!(out.result.len(), d.n_cells(), "{w}");
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (d, t, _) = dataset();
        let par = AccuGenPartition {
            parallelism: crate::config::Parallelism::Auto,
            ..Default::default()
        };
        let seq = AccuGenPartition {
            parallelism: crate::config::Parallelism::Threads(1),
            ..Default::default()
        };
        let o1 = par.run_oracle(&MajorityVote, &d, &t).unwrap();
        let o2 = seq.run_oracle(&MajorityVote, &d, &t).unwrap();
        assert_eq!(o1.partition, o2.partition);
        assert_eq!(o1.score.to_bits(), o2.score.to_bits());
        let p1: std::collections::BTreeMap<_, _> =
            o1.result.iter().map(|(o, a, v, c)| ((o, a), (v, c.to_bits()))).collect();
        let p2: std::collections::BTreeMap<_, _> =
            o2.result.iter().map(|(o, a, v, c)| ((o, a), (v, c.to_bits()))).collect();
        assert_eq!(p1, p2);
        let w1 = par.run(&MajorityVote, &d, Weighting::Avg).unwrap();
        let w2 = seq.run(&MajorityVote, &d, Weighting::Avg).unwrap();
        assert_eq!(w1.partition, w2.partition);
        assert_eq!(w1.score.to_bits(), w2.score.to_bits());
        let t1: Vec<u64> = w1.result.source_trust.iter().map(|t| t.to_bits()).collect();
        let t2: Vec<u64> = w2.result.source_trust.iter().map(|t| t.to_bits()).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn attribute_guard_refuses_blowup() {
        let mut b = DatasetBuilder::new();
        for a in 0..12 {
            b.claim("s", "o", &format!("a{a}"), Value::int(1)).unwrap();
        }
        let d = b.build();
        let err = AccuGenPartition::default()
            .run(&MajorityVote, &d, Weighting::Max)
            .unwrap_err();
        assert!(matches!(err, AccuGenError::TooManyAttributes { n: 12, .. }));
        assert!(err.to_string().contains("TD-AC"));
    }

    #[test]
    fn greedy_is_cheaper_and_sound() {
        let (d, _, _) = dataset();
        let brute = AccuGenPartition::default();
        let greedy = brute.run_greedy(&MajorityVote, &d, Weighting::Avg).unwrap();
        let full = brute.run(&MajorityVote, &d, Weighting::Avg).unwrap();
        // Greedy evaluates far fewer partitions than Bell(n) can require
        // at larger n; at n = 4 it is bounded by singletons + merges.
        assert!(greedy.n_partitions <= 15 + 4);
        // Its local optimum can't beat the exhaustive optimum.
        assert!(greedy.score <= full.score + 1e-9);
        assert_eq!(greedy.result.len(), d.n_cells());
        assert_eq!(greedy.partition.n_attributes(), 4);
    }

    #[test]
    fn greedy_on_empty_dataset_errors() {
        let d = DatasetBuilder::new().build();
        assert!(AccuGenPartition::default()
            .run_greedy(&MajorityVote, &d, Weighting::Max)
            .is_err());
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let d = DatasetBuilder::new().build();
        assert_eq!(
            AccuGenPartition::default()
                .run(&MajorityVote, &d, Weighting::Max)
                .unwrap_err(),
            AccuGenError::NoAttributes
        );
    }

    #[test]
    fn run_partition_covers_all_cells_once() {
        let (d, _, planted) = dataset();
        let r = run_partition(&MajorityVote, &d, &planted, &Observer::disabled());
        assert_eq!(r.len(), d.n_cells());
    }

    #[test]
    fn partition_cap_truncates_deterministically() {
        // Bell(4) = 15; a cap of 5 scans exactly the first 5 partitions
        // of the enumeration order, at any thread count.
        let (d, _, _) = dataset();
        let run = |parallelism| {
            AccuGenPartition {
                parallelism,
                limits: ExecutionLimits::none().with_max_partitions(5),
                ..Default::default()
            }
            .run(&MajorityVote, &d, Weighting::Avg)
            .unwrap()
        };
        let seq = run(crate::config::Parallelism::Threads(1));
        let par = run(crate::config::Parallelism::Auto);
        for out in [&seq, &par] {
            assert_eq!(out.n_partitions, 5);
            let deg = out.degradation.as_ref().expect("truncated scan is flagged");
            assert_eq!(deg.reason, DegradationReason::Partitions(5));
            assert_eq!(deg.phase, "partition_scan");
            assert_eq!(deg.work.partitions_scanned, 5);
        }
        assert_eq!(seq.partition, par.partition);
        assert_eq!(seq.score.to_bits(), par.score.to_bits());
    }

    #[test]
    fn generous_partition_cap_changes_nothing() {
        let (d, _, _) = dataset();
        let plain = AccuGenPartition::default().run(&MajorityVote, &d, Weighting::Avg).unwrap();
        let capped = AccuGenPartition {
            limits: ExecutionLimits::none().with_max_partitions(15),
            ..Default::default()
        }
        .run(&MajorityVote, &d, Weighting::Avg)
        .unwrap();
        assert!(capped.degradation.is_none(), "the full scan fits the cap");
        assert_eq!(capped.n_partitions, 15);
        assert_eq!(capped.partition, plain.partition);
        assert_eq!(capped.score.to_bits(), plain.score.to_bits());
    }

    #[test]
    fn pre_cancelled_scan_still_returns_a_sound_result() {
        let (d, _, _) = dataset();
        let token = td_obs::CancelToken::new();
        token.cancel();
        let out = AccuGenPartition {
            limits: ExecutionLimits::none().with_cancel(token),
            ..Default::default()
        }
        .run(&MajorityVote, &d, Weighting::Avg)
        .unwrap();
        let deg = out.degradation.as_ref().expect("cancelled scan is flagged");
        assert_eq!(deg.reason, DegradationReason::Cancelled);
        assert_eq!(out.n_partitions, 1, "only the fallback evaluation ran");
        assert_eq!(out.result.len(), d.n_cells());
        assert_eq!(out.partition.len(), 1, "first RGS partition: one group");
    }

    #[test]
    fn greedy_respects_the_partition_budget() {
        let (d, _, _) = dataset();
        let out = AccuGenPartition {
            limits: ExecutionLimits::none().with_max_partitions(3),
            ..Default::default()
        }
        .run_greedy(&MajorityVote, &d, Weighting::Avg)
        .unwrap();
        assert!(out.n_partitions <= 3, "scanned {} > cap", out.n_partitions);
        let deg = out.degradation.as_ref().expect("capped greedy walk is flagged");
        assert_eq!(deg.reason, DegradationReason::Partitions(3));
        assert!(deg.work.partitions_scanned <= 3);
        assert_eq!(out.result.len(), d.n_cells());
    }

    /// A base algorithm that panics on two-group partitions' *second*
    /// group-like views — actually simplest: panic on every view with
    /// exactly 3 attributes, which several partitions produce.
    struct PanicsOnTriples;

    impl TruthDiscovery for PanicsOnTriples {
        fn name(&self) -> &'static str {
            "PanicsOnTriples"
        }

        fn discover(&self, view: &td_model::DatasetView<'_>) -> TruthResult {
            assert_ne!(view.attributes().len(), 3, "injected scorer failure");
            MajorityVote.discover(view)
        }
    }

    #[test]
    fn scan_worker_panic_is_typed_and_names_the_smallest_index() {
        let (d, _, _) = dataset();
        for parallelism in [
            crate::config::Parallelism::Threads(1),
            crate::config::Parallelism::Auto,
        ] {
            let err = AccuGenPartition {
                parallelism,
                ..Default::default()
            }
            .run(&PanicsOnTriples, &d, Weighting::Avg)
            .unwrap_err();
            let AccuGenError::WorkerPanic { phase, detail } = err else {
                panic!("expected WorkerPanic, got {err:?}");
            };
            // Partition index 1 ({a0,a1,a2},{b1}) is the first in RGS
            // order with a 3-attribute group; the reduction must report
            // it whatever order workers finish in.
            assert_eq!(phase, "partition_scan/partition=1");
            assert!(detail.contains("injected scorer failure"), "{detail}");
        }
    }

    #[test]
    fn greedy_panic_is_typed_too() {
        struct AlwaysPanics;
        impl TruthDiscovery for AlwaysPanics {
            fn name(&self) -> &'static str {
                "AlwaysPanics"
            }
            fn discover(&self, _view: &td_model::DatasetView<'_>) -> TruthResult {
                panic!("poisoned greedy step")
            }
        }
        let (d, _, _) = dataset();
        let err = AccuGenPartition::default()
            .run_greedy(&AlwaysPanics, &d, Weighting::Avg)
            .unwrap_err();
        assert!(matches!(err, AccuGenError::WorkerPanic { .. }), "{err:?}");
        assert!(err.to_string().contains("poisoned greedy step"));
    }
}
