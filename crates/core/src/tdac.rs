//! TD-AC — Algorithm 1 of the paper.

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use clustering::{
    silhouette_paper_dist, Agglomerative, ClusterError, DistanceOptions, KMeans, KMeansConfig,
    Matrix, Pam, PamConfig,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use td_algorithms::{TruthDiscovery, TruthResult};
use td_model::{Dataset, DatasetView};
use td_obs::{panic_message, Budget, Counter, Degradation, DegradationReason, Observer, RunProfile};
use td_store::{DatasetStore, TruthPage};

use crate::config::{ClusterMethod, TdacConfig};
use crate::masked::MaskedTruthVectors;
use crate::partition::AttributePartition;
use crate::truth_vectors::{truth_vector_set, TruthVectors};

/// Errors from a TD-AC run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdacError {
    /// The view has no attributes to partition.
    NoAttributes,
    /// The inner clusterer failed.
    Cluster(ClusterError),
    /// [`crate::config::TdacConfigBuilder::build`] rejected the
    /// configuration; the message says which constraint failed.
    InvalidConfig(String),
    /// A worker (or the pipeline itself) panicked; the panic was caught
    /// at a task boundary and converted into this error instead of
    /// aborting the process. `phase` names where (span-path
    /// vocabulary), `detail` carries the panic message.
    WorkerPanic {
        /// Phase whose worker panicked (`k_sweep/k=3`,
        /// `per_group_run/group=0`, or `pipeline` for sequential code).
        phase: String,
        /// The panic message, when it carried one.
        detail: String,
    },
}

impl fmt::Display for TdacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdacError::NoAttributes => write!(f, "dataset view has no attributes"),
            TdacError::Cluster(e) => write!(f, "clustering failed: {e}"),
            TdacError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TdacError::WorkerPanic { phase, detail } => {
                write!(f, "worker panic in phase `{phase}`: {detail}")
            }
        }
    }
}

impl Error for TdacError {}

impl From<ClusterError> for TdacError {
    fn from(e: ClusterError) -> Self {
        TdacError::Cluster(e)
    }
}

/// Everything a TD-AC run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TdacOutcome {
    /// The merged truth predictions (Algorithm 1's `results`).
    pub result: TruthResult,
    /// The selected attribute partition.
    pub partition: AttributePartition,
    /// Silhouette value of the selected partition.
    pub silhouette: f64,
    /// Every `(k, silhouette)` evaluated during the sweep.
    pub k_scores: Vec<(usize, f64)>,
    /// `true` when TD-AC fell back to the un-partitioned base run
    /// (fewer than 3 attributes, silhouette below the configured floor,
    /// or a budget exhausted before any partition was selected).
    pub fallback: bool,
    /// `Some` when an execution budget was exhausted (or the run was
    /// cancelled) and the outcome is *best-so-far* rather than complete:
    /// the record names the reason, the phase that detected it, and the
    /// work completed. `None` on complete runs — including every run of
    /// an unlimited config, which never arms the budget machinery.
    #[serde(default)]
    pub degradation: Option<Degradation>,
    /// Per-phase timings and work-unit counters recorded during this
    /// run, when the config carries an enabled
    /// [`td_obs::Observer`]; `None` with the default (disabled) handle.
    /// Always the *delta* for this run, even when the handle is reused.
    pub profile: Option<RunProfile>,
}

/// What TD-AC's model-selection phase (steps 1–3 of Algorithm 1)
/// decided, separated from the per-group execution phase (steps 4–5).
///
/// [`Tdac::run`] performs both phases in-process. An external
/// coordinator — the `td-shard` crate — calls
/// [`Tdac::select_model_store`] instead, executes the selected groups
/// in worker processes, and merges with [`PartitionedModel::assemble`]:
/// because selection and merge are *this* code, byte for byte, the
/// distributed outcome is bit-identical to the in-process one by
/// construction.
#[derive(Debug, Clone)]
pub enum ModelSelection {
    /// Model selection already produced the final outcome — a fallback
    /// (too few attributes, silhouette floor) or a budget-degraded run.
    /// No per-group work remains.
    Complete(TdacOutcome),
    /// A partition was selected; step 4's per-group base runs and the
    /// step 5 merge remain.
    Partitioned(PartitionedModel),
}

/// A selected partition awaiting its per-group base runs.
///
/// Produced by [`Tdac::select_model_store`] /
/// [`Tdac::select_model_view`]. Run the base algorithm once per group
/// of `partition` (each on `dataset.view_of(&group)`), collect the
/// partials **in group order**, and hand them to
/// [`PartitionedModel::assemble`].
#[derive(Debug, Clone)]
pub struct PartitionedModel {
    /// The base algorithm's reference truth over the whole view —
    /// the best-so-far answer should the per-group phase have to be
    /// abandoned (see [`PartitionedModel::into_degraded`]).
    pub reference: TruthResult,
    /// The selected attribute partition; its groups are the units of
    /// per-group execution.
    pub partition: AttributePartition,
    /// Silhouette value of the selected partition.
    pub silhouette: f64,
    /// Every `(k, silhouette)` evaluated during the sweep.
    pub k_scores: Vec<(usize, f64)>,
    /// `Some` when the sweep overshot a deadline but still selected a
    /// partition: the assembled outcome stays flagged.
    pub degradation: Option<Degradation>,
}

impl PartitionedModel {
    /// Step 5: merges the per-group partials (collected in group order)
    /// exactly as [`Tdac::run`] does — union of predictions,
    /// element-wise mean trust, one logical iteration.
    pub fn assemble(self, partials: &[TruthResult], obs: &Observer) -> TdacOutcome {
        let result = merge_partials(partials, obs);
        TdacOutcome {
            result,
            partition: self.partition,
            silhouette: self.silhouette,
            k_scores: self.k_scores,
            fallback: false,
            degradation: self.degradation,
            profile: None,
        }
    }

    /// Best-so-far outcome for a per-group phase that could not finish
    /// (a worker blew its budget): the reference result under the
    /// un-partitioned whole, flagged — the same shape [`Tdac::run`]
    /// produces when its own per-group phase is refused. A partial
    /// merge is never an option.
    pub fn into_degraded(self, degradation: Degradation) -> TdacOutcome {
        let mut attrs: Vec<td_model::AttributeId> = self
            .partition
            .groups()
            .iter()
            .flat_map(|g| g.iter().copied())
            .collect();
        attrs.sort_unstable();
        let mut result = self.reference;
        result.iterations = 1;
        TdacOutcome {
            result,
            partition: AttributePartition::whole(&attrs),
            silhouette: 0.0,
            k_scores: self.k_scores,
            fallback: true,
            degradation: Some(degradation),
            profile: None,
        }
    }
}

/// One evaluated k of the sweep: `Ok(None)` means skipped under an
/// interrupted budget, `Ok(Some((assignments, silhouette)))` a scored
/// clustering, `Err` a failed one.
pub(crate) type KEval = Result<Option<(Vec<usize>, f64)>, TdacError>;

/// Runs one per-k sweep body under panic isolation: a panicking worker
/// (clusterer bug, poisoned data) surfaces as [`TdacError::WorkerPanic`]
/// naming the k, never an abort.
pub(crate) fn isolate_k(
    k: usize,
    obs: &Observer,
    body: impl FnOnce() -> Result<(Vec<usize>, f64), ClusterError>,
) -> KEval {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(eval)) => Ok(Some(eval)),
        Ok(Err(e)) => Err(TdacError::Cluster(e)),
        Err(payload) => {
            obs.incr(Counter::WorkerPanics, 1);
            Err(TdacError::WorkerPanic {
                phase: format!("k_sweep/k={k}"),
                detail: panic_message(payload.as_ref()),
            })
        }
    }
}

/// One clustering of `data` into `k` groups, reusing the shared pairwise
/// distance matrix wherever the method allows: PAM and hierarchical
/// clustering are purely distance-based and never touch the feature
/// vectors again; k-means still optimizes Eq. 3 inertia in feature space
/// (centroids have no distance-matrix form).
pub(crate) fn cluster_cached(
    config: &TdacConfig,
    data: &Matrix,
    dist: &[f64],
    k: usize,
    obs: &Observer,
) -> Result<Vec<usize>, ClusterError> {
    match config.method {
        ClusterMethod::KMeans => {
            let cfg = KMeansConfig {
                k,
                n_init: config.n_init,
                seed: config.seed,
                ..KMeansConfig::with_k(k)
            };
            Ok(KMeans::new(cfg).fit_observed(data, obs)?.assignments)
        }
        ClusterMethod::Pam => {
            let cfg = PamConfig {
                seed: config.seed,
                ..PamConfig::with_k(k)
            };
            Ok(Pam::new(cfg)
                .fit_from_distances_observed(dist, data.n_rows(), obs)?
                .assignments)
        }
        ClusterMethod::Hierarchical(linkage) => {
            Agglomerative::new(linkage).fit_from_distances(dist, data.n_rows(), k)
        }
    }
}

/// The dense-path silhouette sweep over the shared distance matrix —
/// the parallel body of [`Tdac::run_view`], shared verbatim with the
/// incremental [`crate::session::TdacSession`] so both drivers stay
/// bit-identical by construction. Independent k values run in parallel;
/// the caller picks the winner with [`scan_winner`].
pub(crate) fn sweep_dense(
    config: &TdacConfig,
    dense: &Matrix,
    dist: &[f64],
    ks: &[usize],
    obs: &Observer,
    budget: Option<&Budget>,
) -> Vec<KEval> {
    let n = dense.n_rows();
    let _sweep = obs.span("k_sweep");
    ks.par_iter()
        .map(|&k| {
            if budget.is_some_and(|b| b.interrupted().is_some()) {
                return Ok(None); // skipped, not failed
            }
            isolate_k(k, obs, || {
                let _sk = obs.span_with(|| format!("k_sweep/k={k}"));
                obs.incr(Counter::DistCacheHits, 1);
                let assignments = {
                    let _c = obs.span("cluster");
                    cluster_cached(config, dense, dist, k, obs)?
                };
                let sil = silhouette_paper_dist(dist, n, &assignments);
                Ok((assignments, sil))
            })
        })
        .collect()
}

/// Sequential winner scan over the sweep evaluations, in k order: the
/// first error wins (matching the sequential sweep), skipped entries
/// drop out, and strict `>` keeps the smallest k on silhouette ties
/// like Algorithm 1's comparison. Returns the `(k, silhouette)` scores
/// and the best `(silhouette, assignments, k)`.
#[allow(clippy::type_complexity)]
pub(crate) fn scan_winner(
    ks: &[usize],
    evals: Vec<KEval>,
) -> Result<(Vec<(usize, f64)>, Option<(f64, Vec<usize>, usize)>), TdacError> {
    let mut best: Option<(f64, Vec<usize>, usize)> = None;
    let mut k_scores = Vec::with_capacity(ks.len());
    for (&k, eval) in ks.iter().zip(evals) {
        let Some((assignments, sil)) = eval? else { continue };
        k_scores.push((k, sil));
        if best.as_ref().is_none_or(|(b, _, _)| sil > *b) {
            best = Some((sil, assignments, k));
        }
    }
    Ok((k_scores, best))
}

/// Budget probe between the reference run and the distance-matrix
/// build: full boundary check first, then the distance precharge (the
/// build is all-or-nothing, so a cap it cannot fit under degrades
/// *before* the work starts).
pub(crate) fn exhausted(budget: Option<&Budget>, phase: &str, pairs: u64) -> Option<Degradation> {
    let b = budget?;
    b.check(phase)
        .or_else(|| b.precharge_distance_evals(pairs, "distance_matrix"))
}

/// Step 4's per-group base runs (parallel, panic-isolated), collected in
/// group order with the first error winning deterministically.
///
/// `cached` lets the incremental session substitute an
/// already-computed partial for a group whose claims are untouched:
/// a `Some` entry is returned as-is (counted on
/// [`Counter::PartitionsReused`]) instead of re-running the base
/// algorithm — bit-identical because a group run depends only on the
/// group's claims and the source count, both unchanged for a clean
/// group. Batch-mode callers pass `&[]`.
pub(crate) fn per_group_partials(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    groups: &[Vec<td_model::AttributeId>],
    cached: &[Option<TruthResult>],
    obs: &Observer,
) -> Result<Vec<TruthResult>, TdacError> {
    let isolated: Vec<Result<TruthResult, TdacError>> = {
        let _s = obs.span("per_group_run");
        (0..groups.len())
            .into_par_iter()
            .map(|gi| {
                if let Some(hit) = cached.get(gi).and_then(|c| c.as_ref()) {
                    obs.incr(Counter::PartitionsReused, 1);
                    return Ok(hit.clone());
                }
                catch_unwind(AssertUnwindSafe(|| {
                    let _g = obs.span_with(|| format!("per_group_run/group={gi}"));
                    base.discover_observed(&dataset.view_of(&groups[gi]), obs)
                }))
                .map_err(|payload| {
                    obs.incr(Counter::WorkerPanics, 1);
                    TdacError::WorkerPanic {
                        phase: format!("per_group_run/group={gi}"),
                        detail: panic_message(payload.as_ref()),
                    }
                })
            })
            .collect()
    };
    let mut partials = Vec::with_capacity(isolated.len());
    for partial in isolated {
        // First panic in group order wins, deterministically.
        partials.push(partial?);
    }
    Ok(partials)
}

/// Step 5's symmetric merge (union of predictions, element-wise mean
/// trust), reported as the paper's single logical iteration.
pub(crate) fn merge_partials(partials: &[TruthResult], obs: &Observer) -> TruthResult {
    let mut result = {
        let _s = obs.span("merge");
        TruthResult::merge_all(partials)
    };
    result.iterations = 1;
    result
}

/// Whether a store page's cached intermediates actually fit `dataset`:
/// one matrix row per attribute, one column per `(object, source)` pair,
/// and a validity mask exactly when the masked pipeline needs one. A
/// page that fails this check is ignored (the run recomputes from
/// scratch) — stale pages must never corrupt an outcome.
pub(crate) fn page_matches(page: &TruthPage, dataset: &Dataset, missing_aware: bool) -> bool {
    page.matrix.n_rows() == dataset.n_attributes()
        && page.matrix.n_cols() == dataset.n_objects() * dataset.n_sources()
        && page.matrix.mask_words_all().is_some() == missing_aware
}

/// The TD-AC algorithm. See the crate docs for the pipeline.
#[derive(Debug, Clone)]
pub struct Tdac {
    config: TdacConfig,
}

impl Tdac {
    /// A TD-AC instance with the given configuration.
    pub fn new(config: TdacConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TdacConfig {
        &self.config
    }

    /// Runs TD-AC over the whole dataset with base algorithm `base`
    /// (the paper's `F`).
    ///
    /// This is a thin wrapper: exactly [`Tdac::run_view`] on
    /// `dataset.view_all()`. All behaviour (parallelism, observation,
    /// fallback) is defined there — the two entry points can never
    /// drift.
    pub fn run(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
    ) -> Result<TdacOutcome, TdacError> {
        self.run_view(base, &dataset.view_all())
    }

    /// Runs TD-AC over an arbitrary view — the canonical entry point.
    ///
    /// Every parallel kernel inside (distance matrices, the k-sweep, the
    /// per-group base runs) executes under the configured
    /// [`crate::config::Parallelism`] (resolved through
    /// [`crate::TdacConfig::effective_parallelism`]); the outcome is
    /// bit-identical at any thread count. When the config carries an
    /// enabled [`td_obs::Observer`], the outcome's `profile` holds this
    /// run's phase timings and counter deltas.
    ///
    /// # Errors
    /// [`TdacError::InvalidConfig`] when the config's backend is
    /// [`crate::ExecutionBackend::Sharded`] — this entry point executes
    /// in-process only; hand a sharded config to `td_shard::ShardRunner`
    /// (or `tdc shard`) instead.
    pub fn run_view(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        view: &DatasetView<'_>,
    ) -> Result<TdacOutcome, TdacError> {
        self.run_view_seeded(base, view, None)
    }

    /// Runs TD-AC against a store-backed dataset.
    ///
    /// When the store carries a [`TruthPage`] for this base algorithm
    /// and pipeline mode (dense vs `missing_aware`) whose dimensions
    /// match the dataset, the pipeline's **build phase is skipped
    /// entirely**: the reference truth and the Eq. 1 truth-vector matrix
    /// come straight from the page instead of re-running the base
    /// algorithm and the scatter pass. Because the page stores the
    /// reference verbatim (trust and confidence at full `f64` bit
    /// precision) and the packed matrix in its canonical word layout,
    /// the outcome is bit-identical to [`Tdac::run`] on the same
    /// dataset. A missing or mismatched page degrades gracefully to the
    /// from-scratch path — never an error.
    ///
    /// Pages are produced by [`Tdac::pack`] (or `tdc pack`).
    pub fn run_store(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        store: &DatasetStore,
    ) -> Result<TdacOutcome, TdacError> {
        let seed = store
            .page(base.name(), self.config.missing_aware)
            .filter(|p| page_matches(p, &store.dataset, self.config.missing_aware));
        self.run_view_seeded(base, &store.dataset.view_all(), seed)
    }

    /// Packs `dataset` into a [`DatasetStore`] carrying one
    /// [`TruthPage`] for this configuration's pipeline mode: the base
    /// algorithm's reference truth plus the bit-packed Eq. 1 matrix,
    /// exactly the intermediates [`Tdac::run_store`] needs to skip the
    /// build phase. The base run is recorded against the configured
    /// observer like any other run.
    pub fn pack(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        dataset: &Dataset,
    ) -> DatasetStore {
        let view = dataset.view_all();
        let obs = &self.config.observer;
        let (matrix, reference) = if self.config.missing_aware {
            let (masked, reference) = MaskedTruthVectors::build(base, &view, obs);
            (masked.packed, reference)
        } else {
            let (vectors, reference) = truth_vector_set(base, &view, obs);
            (vectors.packed, reference)
        };
        let mut store = DatasetStore::new(dataset.clone());
        store.push_page(TruthPage {
            algorithm: base.name().to_string(),
            masked: self.config.missing_aware,
            matrix,
            reference,
        });
        store
    }

    /// Model selection only (steps 1–3), for an external coordinator
    /// that will execute the per-group runs itself — see
    /// [`ModelSelection`]. Runs under the same parallelism, budget, and
    /// panic-isolation spine as [`Tdac::run_view`]; a `Complete`
    /// selection carries the run's profile, a `Partitioned` one leaves
    /// profiling to the coordinator (the run is not over).
    ///
    /// Unlike [`Tdac::run_view`], this accepts a sharded backend — it
    /// is the coordinator half of executing one.
    pub fn select_model_view(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        view: &DatasetView<'_>,
    ) -> Result<ModelSelection, TdacError> {
        self.select_model_seeded(base, view, None)
    }

    /// [`Tdac::select_model_view`] against a store-backed dataset,
    /// seeding the build phase from a matching [`TruthPage`] exactly
    /// like [`Tdac::run_store`].
    pub fn select_model_store(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        store: &DatasetStore,
    ) -> Result<ModelSelection, TdacError> {
        let seed = store
            .page(base.name(), self.config.missing_aware)
            .filter(|p| page_matches(p, &store.dataset, self.config.missing_aware));
        self.select_model_seeded(base, &store.dataset.view_all(), seed)
    }

    fn select_model_seeded(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        view: &DatasetView<'_>,
        seed: Option<&TruthPage>,
    ) -> Result<ModelSelection, TdacError> {
        let user_obs = &self.config.observer;
        let baseline = user_obs.profile();
        let obs = self.budget_observer();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            self.config.effective_parallelism().install(|| {
                let budget = Budget::arm(&self.config.limits, &obs);
                self.select_inner(base, view, &obs, budget.as_ref(), seed)
            })
        }));
        let mut selection = match caught {
            Ok(result) => result?,
            Err(payload) => {
                obs.incr(Counter::WorkerPanics, 1);
                return Err(TdacError::WorkerPanic {
                    phase: "pipeline".to_string(),
                    detail: panic_message(payload.as_ref()),
                });
            }
        };
        if let ModelSelection::Complete(outcome) = &mut selection {
            outcome.profile = user_obs.profile().map(|p| match &baseline {
                Some(b) => p.delta_since(b),
                None => p,
            });
        }
        Ok(selection)
    }

    /// Counter-based budgets are metered on observer counters, so an
    /// active limit with a disabled user observer runs against a
    /// private enabled handle — the user's profile (and the
    /// observation-neutrality contract) is untouched.
    fn budget_observer(&self) -> Observer {
        let user_obs = &self.config.observer;
        if self.config.limits.is_active() && !user_obs.is_enabled() {
            Observer::enabled()
        } else {
            user_obs.clone()
        }
    }

    fn run_view_seeded(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        view: &DatasetView<'_>,
        seed: Option<&TruthPage>,
    ) -> Result<TdacOutcome, TdacError> {
        if self.config.backend.is_sharded() {
            return Err(TdacError::InvalidConfig(
                "config.backend is Sharded: Tdac::run executes in-process only — hand this \
                 config to td_shard::ShardRunner (or `tdc shard`) instead"
                    .to_string(),
            ));
        }
        let user_obs = &self.config.observer;
        let baseline = user_obs.profile();
        let obs = self.budget_observer();
        // Belt-and-braces panic isolation: per-worker boundaries inside
        // convert parallel panics precisely; this top-level catch covers
        // the sequential spine so *no* panic anywhere in the pipeline
        // can cross the public entry point.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            self.config.effective_parallelism().install(|| {
                let budget = Budget::arm(&self.config.limits, &obs);
                match self.select_inner(base, view, &obs, budget.as_ref(), seed)? {
                    ModelSelection::Complete(outcome) => Ok::<_, TdacError>(outcome),
                    ModelSelection::Partitioned(model) => {
                        // Step 4 + 5: per-group base runs (parallel,
                        // panic-isolated, collected in group order) and
                        // the symmetric merge.
                        let partials = per_group_partials(
                            base,
                            view.dataset(),
                            model.partition.groups(),
                            &[],
                            &obs,
                        )?;
                        Ok(model.assemble(&partials, &obs))
                    }
                }
            })
        }));
        let mut outcome = match caught {
            Ok(result) => result?,
            Err(payload) => {
                obs.incr(Counter::WorkerPanics, 1);
                return Err(TdacError::WorkerPanic {
                    phase: "pipeline".to_string(),
                    detail: panic_message(payload.as_ref()),
                });
            }
        };
        outcome.profile = user_obs.profile().map(|p| match &baseline {
            Some(b) => p.delta_since(b),
            None => p,
        });
        Ok(outcome)
    }

    fn select_inner(
        &self,
        base: &(dyn TruthDiscovery + Sync),
        view: &DatasetView<'_>,
        obs: &Observer,
        budget: Option<&Budget>,
        seed: Option<&TruthPage>,
    ) -> Result<ModelSelection, TdacError> {
        let attrs = view.attributes().to_vec();
        let n = attrs.len();
        if n == 0 {
            return Err(TdacError::NoAttributes);
        }

        // Algorithm 1 sweeps k ∈ [2, |A|-1]; with |A| ≤ 2 the range is
        // empty and partitioning is meaningless — run the base algorithm
        // unpartitioned.
        let k_hi = self.config.k_max.unwrap_or(n.saturating_sub(1)).min(n.saturating_sub(1));
        if n < 3 || self.config.k_min > k_hi {
            return Ok(ModelSelection::Complete(
                self.fallback(base, view, Vec::new(), obs, None),
            ));
        }

        // Step 2 + 3: attribute truth vectors from the base algorithm's
        // reference truth, then the silhouette-guided sweep. Both sweep
        // variants compute the pairwise distance matrix exactly **once**
        // and drive every k's clustering and silhouette from that shared
        // cache, turning the per-k O(n²·d) distance work into O(n²)
        // lookups. Independent k values are evaluated in parallel; the
        // winner is then picked by a sequential scan in k order (strict
        // `>` keeps the smallest k on ties, like Algorithm 1's
        // comparison), so the outcome matches the sequential sweep
        // bit-for-bit.
        //
        // Budget probes sit at the *sequential* boundaries between
        // phases (deterministic counter values at any thread count);
        // inside the parallel sweep only the cheap cancel/deadline probe
        // runs, skipping not-yet-started k values. Every degraded exit
        // reuses the already-computed reference result as the
        // best-so-far answer instead of starting new work.
        //
        // One options value drives every distance-matrix build of the
        // run: the configured kernel policy plus the run's observer.
        let dist_opts = DistanceOptions::builder()
            .kernel(self.config.effective_kernel())
            .observer(obs.clone())
            .build();
        let ks: Vec<usize> = (self.config.k_min..=k_hi).collect();
        let pairs = (n * (n - 1) / 2) as u64;
        let (reference, evals): (TruthResult, Vec<KEval>) = if self.config.missing_aware {
            // Future-work variant: masked distances + PAM (k-means has no
            // feature-space form for the masked metric).
            let (masked, reference) = {
                let _s = obs.span("truth_vectors");
                // A matching store page replaces both the reference base
                // run and the scatter pass; the masked dual
                // representation is rebuilt from the page's packed words
                // (bit-identical — the words are canonical).
                match seed.and_then(|p| {
                    MaskedTruthVectors::from_packed(p.matrix.clone())
                        .map(|m| (m, p.reference.clone()))
                }) {
                    Some(pair) => pair,
                    None => MaskedTruthVectors::build(base, view, obs),
                }
            };
            if let Some(deg) = exhausted(budget, "truth_vectors", pairs) {
                return Ok(ModelSelection::Complete(
                    self.degraded(reference, view, Vec::new(), deg, obs),
                ));
            }
            let dist = {
                let _s = obs.span("distance_matrix");
                obs.incr(Counter::DistCacheMisses, 1);
                masked.distance_matrix_with(&dist_opts)
            };
            let _sweep = obs.span("k_sweep");
            let evals = ks
                .par_iter()
                .map(|&k| {
                    if budget.is_some_and(|b| b.interrupted().is_some()) {
                        return Ok(None); // skipped, not failed
                    }
                    isolate_k(k, obs, || {
                        let _sk = obs.span_with(|| format!("k_sweep/k={k}"));
                        obs.incr(Counter::DistCacheHits, 1);
                        let assignments = {
                            let _c = obs.span("cluster");
                            Pam::new(PamConfig {
                                seed: self.config.seed,
                                ..PamConfig::with_k(k)
                            })
                            .fit_from_distances_observed(&dist, n, obs)?
                            .assignments
                        };
                        let sil = silhouette_paper_dist(&dist, n, &assignments);
                        Ok((assignments, sil))
                    })
                })
                .collect();
            (reference, evals)
        } else {
            let (vectors, reference) = {
                let _s = obs.span("truth_vectors");
                // A matching store page replaces both the reference base
                // run and the scatter pass (see `run_store`).
                match seed {
                    Some(p) => (
                        TruthVectors::from_packed(p.matrix.clone()),
                        p.reference.clone(),
                    ),
                    None => truth_vector_set(base, view, obs),
                }
            };
            if let Some(deg) = exhausted(budget, "truth_vectors", pairs) {
                return Ok(ModelSelection::Complete(
                    self.degraded(reference, view, Vec::new(), deg, obs),
                ));
            }
            let dist = {
                let _s = obs.span("distance_matrix");
                obs.incr(Counter::DistCacheMisses, 1);
                // Dual rows: the packed side feeds the popcount kernel
                // when the metric counts bits, the dense side everything
                // else — bit-identical either way.
                dist_opts.pairwise(vectors.rows(), self.config.metric.as_metric())
            };
            let evals = sweep_dense(&self.config, &vectors.dense, &dist, &ks, obs, budget);
            (reference, evals)
        };

        // The first error in k order wins, matching the sequential
        // sweep; skipped (budget-interrupted) entries simply drop out.
        let (k_scores, best) = scan_winner(&ks, evals)?;

        // Skipped k values mean the budget interrupted the sweep: flag
        // the run degraded, and keep the best among the evaluated ones
        // (none at all ⇒ the reference result is the best-so-far).
        let sweep_degradation = if k_scores.len() < ks.len() {
            let b = budget.expect("k values are only skipped under a budget");
            let reason = b.interrupted().unwrap_or(DegradationReason::Cancelled);
            Some(b.degrade(reason, "k_sweep"))
        } else {
            None
        };
        let Some((silhouette, assignments, _k)) = best else {
            let deg = sweep_degradation.expect("an empty sweep implies skips");
            return Ok(ModelSelection::Complete(
                self.degraded(reference, view, k_scores, deg, obs),
            ));
        };
        if let Some(deg) = sweep_degradation {
            if deg.reason == DegradationReason::Cancelled {
                // Cancellation means "stop as soon as possible": don't
                // start the per-group phase, return the reference.
                return Ok(ModelSelection::Complete(
                    self.degraded(reference, view, k_scores, deg, obs),
                ));
            }
            // Deadline overshoot: the best-so-far k is worth the
            // (bounded) per-group replay — the outcome stays flagged.
            return Ok(ModelSelection::Partitioned(PartitionedModel {
                reference,
                partition: AttributePartition::from_assignments(&attrs, &assignments),
                silhouette,
                k_scores,
                degradation: Some(deg),
            }));
        }

        if let Some(floor) = self.config.min_silhouette {
            if silhouette <= floor {
                return Ok(ModelSelection::Complete(
                    self.fallback(base, view, k_scores, obs, None),
                ));
            }
        }

        // The per-group phase consumes fixpoint iterations; refuse to
        // start it on an exhausted budget (the phase itself is atomic —
        // a partial merge would be silently wrong, the one thing a
        // degraded outcome must never be).
        if let Some(b) = budget {
            if let Some(deg) = b.check("per_group_run") {
                return Ok(ModelSelection::Complete(
                    self.degraded(reference, view, k_scores, deg, obs),
                ));
            }
        }
        Ok(ModelSelection::Partitioned(PartitionedModel {
            reference,
            partition: AttributePartition::from_assignments(&attrs, &assignments),
            silhouette,
            k_scores,
            degradation: None,
        }))
    }

    fn fallback(
        &self,
        base: &dyn TruthDiscovery,
        view: &DatasetView<'_>,
        k_scores: Vec<(usize, f64)>,
        obs: &Observer,
        degradation: Option<Degradation>,
    ) -> TdacOutcome {
        let mut result = {
            let _s = obs.span("per_group_run");
            base.discover_observed(view, obs)
        };
        result.iterations = 1;
        TdacOutcome {
            result,
            partition: AttributePartition::whole(view.attributes()),
            silhouette: 0.0,
            k_scores,
            fallback: true,
            degradation,
            profile: None,
        }
    }

    /// Best-so-far outcome for a budget-exhausted run: the reference
    /// result (already computed — no new work starts on an exhausted
    /// budget) under the un-partitioned whole, flagged with the
    /// degradation record.
    fn degraded(
        &self,
        reference: TruthResult,
        view: &DatasetView<'_>,
        k_scores: Vec<(usize, f64)>,
        degradation: Degradation,
        _obs: &Observer,
    ) -> TdacOutcome {
        let mut result = reference;
        result.iterations = 1;
        TdacOutcome {
            result,
            partition: AttributePartition::whole(view.attributes()),
            silhouette: 0.0,
            k_scores,
            fallback: true,
            degradation: Some(degradation),
            profile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::Linkage;
    use crate::config::{MetricKind, Parallelism};
    use crate::truth_vectors::truth_vector_matrix;
    use td_algorithms::{Accu, MajorityVote};
    use td_model::{DatasetBuilder, Value};
    use td_obs::Observer;

    /// Two planted attribute groups with opposite source reliabilities:
    /// sources g1, g2 are right on attributes a0..a2; sources h1, h2 on
    /// a3..a5; a fifth source answers randomly-ish (fixed wrong values).
    fn correlated_dataset() -> (Dataset, AttributePartition) {
        let mut b = DatasetBuilder::new();
        for o in 0..6 {
            let obj = format!("o{o}");
            for ai in 0..3u32 {
                let a = format!("a{ai}");
                b.claim("g1", &obj, &a, Value::int(o)).unwrap();
                b.claim("g2", &obj, &a, Value::int(o)).unwrap();
                b.claim("h1", &obj, &a, Value::int(1000 + o + ai as i64)).unwrap();
                b.claim("h2", &obj, &a, Value::int(2000 + o + ai as i64)).unwrap();
            }
            for ai in 3..6u32 {
                let a = format!("a{ai}");
                b.claim("g1", &obj, &a, Value::int(3000 + o + ai as i64)).unwrap();
                b.claim("g2", &obj, &a, Value::int(4000 + o + ai as i64)).unwrap();
                b.claim("h1", &obj, &a, Value::int(o)).unwrap();
                b.claim("h2", &obj, &a, Value::int(o)).unwrap();
            }
        }
        let d = b.build();
        let group_a: Vec<_> = (0..3).map(|i| d.attribute_id(&format!("a{i}")).unwrap()).collect();
        let group_b: Vec<_> = (3..6).map(|i| d.attribute_id(&format!("a{i}")).unwrap()).collect();
        let planted = AttributePartition::new(vec![group_a, group_b]);
        (d, planted)
    }

    use td_model::Dataset;

    #[test]
    fn recovers_planted_partition() {
        let (d, planted) = correlated_dataset();
        let out = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        assert!(!out.fallback);
        assert_eq!(
            out.partition, planted,
            "TD-AC should recover the planted grouping; got {} (sil {:.3}, scores {:?})",
            out.partition, out.silhouette, out.k_scores
        );
        assert!(out.silhouette > 0.5);
    }

    #[test]
    fn predicts_every_cell_exactly_once() {
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        assert_eq!(out.result.len(), d.n_cells());
        assert_eq!(out.result.iterations, 1);
    }

    #[test]
    fn k_scores_cover_algorithm_one_range() {
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        let ks: Vec<usize> = out.k_scores.iter().map(|&(k, _)| k).collect();
        assert_eq!(ks, vec![2, 3, 4, 5], "k ∈ [2, |A|-1] for |A| = 6");
    }

    /// Serializes the parts of an outcome the store path must preserve
    /// bit-for-bit (the canonical serde repr sorts predictions, and
    /// floats round-trip exactly through serde_json).
    fn outcome_key(out: &TdacOutcome) -> (String, String, Vec<(usize, u64)>, u64, bool) {
        (
            serde_json::to_string(&out.result).unwrap(),
            out.partition.to_string(),
            out.k_scores.iter().map(|&(k, s)| (k, s.to_bits())).collect(),
            out.silhouette.to_bits(),
            out.fallback,
        )
    }

    #[test]
    fn store_backed_run_is_bit_identical_to_in_memory() {
        let (d, _) = correlated_dataset();
        let tdac = Tdac::new(TdacConfig::default());
        let fresh = tdac.run(&MajorityVote, &d).unwrap();
        let store = tdac.pack(&MajorityVote, &d);
        let seeded = tdac.run_store(&MajorityVote, &store).unwrap();
        assert_eq!(outcome_key(&fresh), outcome_key(&seeded));
    }

    #[test]
    fn store_backed_masked_run_is_bit_identical_to_in_memory() {
        let (d, _) = correlated_dataset();
        let config = TdacConfig::builder().missing_aware(true).build().unwrap();
        let tdac = Tdac::new(config);
        let fresh = tdac.run(&MajorityVote, &d).unwrap();
        let store = tdac.pack(&MajorityVote, &d);
        assert!(store.page("MajorityVote", true).is_some());
        let seeded = tdac.run_store(&MajorityVote, &store).unwrap();
        assert_eq!(outcome_key(&fresh), outcome_key(&seeded));
    }

    #[test]
    fn mismatched_page_falls_back_to_fresh_compute() {
        let (d, _) = correlated_dataset();
        let tdac = Tdac::new(TdacConfig::default());
        // A page packed from a *different* dataset (one attribute group
        // only) must be rejected by the dimension check, not trusted.
        let mut b = DatasetBuilder::new();
        for o in 0..6 {
            let obj = format!("o{o}");
            for ai in 0..3u32 {
                let a = format!("a{ai}");
                b.claim("g1", &obj, &a, Value::int(o)).unwrap();
                b.claim("g2", &obj, &a, Value::int(o)).unwrap();
            }
        }
        let small = b.build();
        let stale_page = tdac
            .pack(&MajorityVote, &small)
            .page("MajorityVote", false)
            .cloned()
            .unwrap();
        let mut store = td_store::DatasetStore::new(d.clone());
        store.push_page(stale_page);
        assert!(!page_matches(
            store.page("MajorityVote", false).unwrap(),
            &store.dataset,
            false
        ));
        let fresh = tdac.run(&MajorityVote, &d).unwrap();
        let seeded = tdac.run_store(&MajorityVote, &store).unwrap();
        assert_eq!(outcome_key(&fresh), outcome_key(&seeded));
    }

    #[test]
    fn store_run_skips_the_reference_base_run() {
        // With a valid page the base algorithm only runs in the
        // per-group phase; the reference run over the full view is
        // loaded from the page, so the store-backed profile records
        // strictly fewer fixpoint iterations.
        let (d, _) = correlated_dataset();
        let store = Tdac::new(TdacConfig::default()).pack(&MajorityVote, &d);
        let run = |seeded: bool| {
            let config = TdacConfig::builder()
                .observer(Observer::enabled())
                .build()
                .unwrap();
            let tdac = Tdac::new(config);
            let out = if seeded {
                tdac.run_store(&MajorityVote, &store).unwrap()
            } else {
                tdac.run(&MajorityVote, &d).unwrap()
            };
            let iters = out
                .profile
                .as_ref()
                .unwrap()
                .counter("fixpoint_iterations")
                .unwrap_or(0);
            (outcome_key(&out), iters)
        };
        let (fresh_key, fresh_iters) = run(false);
        let (seeded_key, seeded_iters) = run(true);
        assert_eq!(fresh_key, seeded_key);
        assert!(
            seeded_iters < fresh_iters,
            "store path must skip the reference run ({seeded_iters} vs {fresh_iters})"
        );
    }

    #[test]
    fn two_attribute_dataset_falls_back() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s1", "o", "a2", Value::int(2)).unwrap();
        let d = b.build();
        let out = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        assert!(out.fallback);
        assert_eq!(out.partition.len(), 1);
        assert_eq!(out.result.len(), 2);
    }

    #[test]
    fn empty_view_is_an_error() {
        let d = DatasetBuilder::new().build();
        let err = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap_err();
        assert_eq!(err, TdacError::NoAttributes);
    }

    #[test]
    fn silhouette_floor_triggers_fallback() {
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig {
            min_silhouette: Some(2.0), // unreachable: always falls back
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        assert!(out.fallback);
        assert_eq!(out.result.len(), d.n_cells());
    }

    #[test]
    fn ablation_clusterers_also_recover_structure() {
        let (d, planted) = correlated_dataset();
        for method in [
            ClusterMethod::Pam,
            ClusterMethod::Hierarchical(Linkage::Average),
        ] {
            let out = Tdac::new(TdacConfig {
                method,
                ..Default::default()
            })
            .run(&MajorityVote, &d)
            .unwrap();
            assert_eq!(out.partition, planted, "{method:?}");
        }
    }

    #[test]
    fn works_with_iterative_base_algorithm() {
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig::default()).run(&Accu::default(), &d).unwrap();
        assert_eq!(out.result.len(), d.n_cells());
        assert_eq!(out.result.iterations, 1, "TD-AC reports one logical pass");
    }

    #[test]
    fn metric_kinds_all_run() {
        let (d, _) = correlated_dataset();
        for metric in [MetricKind::Hamming, MetricKind::Euclidean, MetricKind::Cosine] {
            let out = Tdac::new(TdacConfig {
                metric,
                ..Default::default()
            })
            .run(&MajorityVote, &d)
            .unwrap();
            assert!(!out.result.is_empty(), "{metric:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (d, _) = correlated_dataset();
        let t = Tdac::new(TdacConfig::default());
        let o1 = t.run(&MajorityVote, &d).unwrap();
        let o2 = t.run(&MajorityVote, &d).unwrap();
        assert_eq!(o1.partition, o2.partition);
        assert_eq!(o1.silhouette, o2.silhouette);
        assert_eq!(o1.k_scores, o2.k_scores);
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        // The acceptance bar for the parallel execution layer: one worker
        // vs. the full pool must agree on every observable field of the
        // outcome, bit-for-bit on the floats.
        let (d, _) = correlated_dataset();
        for base in [&Accu::default() as &(dyn TruthDiscovery + Sync), &MajorityVote] {
            let seq = Tdac::new(TdacConfig {
                backend: crate::ExecutionBackend::in_process(Parallelism::Threads(1)),
                ..Default::default()
            })
            .run(base, &d)
            .unwrap();
            let par = Tdac::new(TdacConfig {
                backend: crate::ExecutionBackend::in_process(Parallelism::Auto),
                ..Default::default()
            })
            .run(base, &d)
            .unwrap();
            assert_eq!(seq.partition, par.partition);
            assert_eq!(seq.silhouette.to_bits(), par.silhouette.to_bits());
            assert_eq!(seq.k_scores.len(), par.k_scores.len());
            for (a, b) in seq.k_scores.iter().zip(&par.k_scores) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            assert_eq!(seq.result.len(), par.result.len());
            for o in d.object_ids() {
                for a in d.attribute_ids() {
                    assert_eq!(seq.result.prediction(o, a), par.result.prediction(o, a));
                    assert_eq!(
                        seq.result.confidence(o, a).map(f64::to_bits),
                        par.result.confidence(o, a).map(f64::to_bits)
                    );
                }
            }
            let seq_trust: Vec<u64> = seq.result.source_trust.iter().map(|t| t.to_bits()).collect();
            let par_trust: Vec<u64> = par.result.source_trust.iter().map(|t| t.to_bits()).collect();
            assert_eq!(seq_trust, par_trust);
        }
    }

    #[test]
    fn cached_distance_sweep_matches_feature_space_scores() {
        // The k-sweep scores every k from the shared distance matrix;
        // those silhouettes must be bit-identical to evaluating the
        // metric directly in feature space (the pre-cache behaviour).
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        let (matrix, _) =
            truth_vector_matrix(&MajorityVote, &d.view_all(), &td_obs::Observer::disabled());
        let metric = MetricKind::Hamming.as_metric();
        assert!(!out.k_scores.is_empty());
        for &(k, sil) in &out.k_scores {
            let cfg = KMeansConfig {
                k,
                n_init: 10,
                seed: 42,
                ..KMeansConfig::with_k(k)
            };
            let asg = KMeans::new(cfg).fit(&matrix).unwrap().assignments;
            let expect = clustering::silhouette_paper(&matrix, &asg, metric);
            assert_eq!(sil.to_bits(), expect.to_bits(), "k = {k}");
        }
    }

    #[test]
    fn masked_sweep_is_thread_count_invariant() {
        let (d, _) = correlated_dataset();
        let cfg = |parallelism| TdacConfig {
            missing_aware: true,
            backend: crate::ExecutionBackend::in_process(parallelism),
            ..Default::default()
        };
        let seq = Tdac::new(cfg(Parallelism::Threads(1))).run(&MajorityVote, &d).unwrap();
        let par = Tdac::new(cfg(Parallelism::Auto)).run(&MajorityVote, &d).unwrap();
        assert_eq!(seq.partition, par.partition);
        assert_eq!(seq.silhouette.to_bits(), par.silhouette.to_bits());
        assert_eq!(seq.k_scores, par.k_scores);
    }

    #[test]
    fn missing_aware_mode_recovers_structure() {
        let (d, planted) = correlated_dataset();
        let out = Tdac::new(TdacConfig {
            missing_aware: true,
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        assert_eq!(out.partition, planted, "masked PAM should find the same grouping");
        assert_eq!(out.result.len(), d.n_cells());
        assert!(!out.fallback);
    }

    #[test]
    fn missing_aware_handles_sparse_views() {
        // Drop half the claims: masked mode must still run and predict
        // every remaining cell.
        let mut b = DatasetBuilder::new();
        for o in 0..6 {
            let obj = format!("o{o}");
            for a in 0..4 {
                let attr = format!("a{a}");
                if (o + a) % 2 == 0 {
                    b.claim("s1", &obj, &attr, Value::int(o as i64)).unwrap();
                    b.claim("s2", &obj, &attr, Value::int(100)).unwrap();
                }
            }
        }
        let d = b.build();
        let out = Tdac::new(TdacConfig {
            missing_aware: true,
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        assert_eq!(out.result.len(), d.n_cells());
    }

    #[test]
    fn observer_counts_match_closed_forms() {
        // The satellite acceptance check: on the 6-attribute fixture the
        // shared distance matrix is built once, so the distance-eval
        // counter must equal the closed form n·(n−1)/2 exactly, and the
        // sweep must hit the cache once per k ∈ [2, 5].
        let (d, _) = correlated_dataset();
        let obs = Observer::enabled();
        let out = Tdac::new(TdacConfig {
            observer: obs.clone(),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        let profile = out.profile.as_ref().expect("enabled observer ⇒ profile");
        let n = 6u64;
        assert_eq!(profile.counter("distance_evals"), Some(n * (n - 1) / 2));
        assert_eq!(profile.counter("dist_cache_misses"), Some(1));
        assert_eq!(profile.counter("dist_cache_hits"), Some(4));
        // Reference run + one run per group of the winning 2-partition,
        // each a single MajorityVote pass.
        assert_eq!(profile.counter("fixpoint_iterations"), Some(3));
        assert_eq!(profile.counter("fixpoint_iterations/MajorityVote"), Some(3));
        // Lloyd ran for every k and restart at least once each.
        assert!(profile.counter("kmeans_iterations").unwrap() >= 4 * 10);
        assert_eq!(profile.counter("pam_iterations"), Some(0));
        // Span taxonomy is present with sane hit counts.
        for phase in ["truth_vectors", "distance_matrix", "k_sweep", "per_group_run", "merge"] {
            assert_eq!(profile.phase(phase).map(|p| p.count), Some(1), "{phase}");
        }
        assert_eq!(profile.phases_under("k_sweep/").count(), 4);
        assert_eq!(profile.phase("cluster").map(|p| p.count), Some(4));
    }

    #[test]
    fn observation_does_not_change_the_outcome() {
        let (d, _) = correlated_dataset();
        let plain = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        let observed = Tdac::new(TdacConfig {
            observer: Observer::enabled(),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        assert!(plain.profile.is_none());
        assert!(observed.profile.is_some());
        assert_eq!(plain.partition, observed.partition);
        assert_eq!(plain.silhouette.to_bits(), observed.silhouette.to_bits());
        assert_eq!(plain.k_scores, observed.k_scores);
    }

    #[test]
    fn reused_observer_reports_per_run_deltas() {
        // One handle across two runs: the second outcome's profile must
        // cover only the second run, not the running totals.
        let (d, _) = correlated_dataset();
        let obs = Observer::enabled();
        let t = Tdac::new(TdacConfig {
            observer: obs.clone(),
            ..Default::default()
        });
        let first = t.run(&MajorityVote, &d).unwrap();
        let second = t.run(&MajorityVote, &d).unwrap();
        let (p1, p2) = (first.profile.unwrap(), second.profile.unwrap());
        assert_eq!(
            p1.counter("distance_evals"),
            p2.counter("distance_evals"),
            "identical runs must report identical deltas"
        );
        assert_eq!(p1.counter("fixpoint_iterations"), p2.counter("fixpoint_iterations"));
        // The handle itself holds the running total of both runs.
        assert_eq!(
            obs.profile().unwrap().counter("distance_evals"),
            p1.counter("distance_evals").map(|v| v * 2)
        );
    }

    #[test]
    fn missing_aware_mode_also_profiles() {
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig {
            missing_aware: true,
            observer: Observer::enabled(),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        let profile = out.profile.unwrap();
        assert_eq!(profile.counter("distance_evals"), Some(15));
        assert!(profile.counter("pam_iterations").unwrap() >= 4);
        assert_eq!(profile.counter("kmeans_iterations"), Some(0));
    }

    #[test]
    fn fallback_runs_are_profiled_too() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s1", "o", "a2", Value::int(2)).unwrap();
        let d = b.build();
        let out = Tdac::new(TdacConfig {
            observer: Observer::enabled(),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        assert!(out.fallback);
        let profile = out.profile.unwrap();
        assert_eq!(profile.counter("fixpoint_iterations"), Some(1));
        assert_eq!(profile.phase("per_group_run").map(|p| p.count), Some(1));
        assert_eq!(profile.counter("distance_evals"), Some(0));
    }

    #[test]
    fn run_on_attribute_subset_view() {
        let (d, _) = correlated_dataset();
        let subset: Vec<_> = d.attribute_ids().take(4).collect();
        let view = d.view_of(&subset);
        let out = Tdac::new(TdacConfig::default())
            .run_view(&MajorityVote, &view)
            .unwrap();
        assert_eq!(out.partition.n_attributes(), 4);
        assert_eq!(out.result.len(), view.n_cells());
    }

    #[test]
    fn unlimited_runs_are_never_flagged_degraded() {
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        assert!(out.degradation.is_none());
    }

    #[test]
    fn distance_budget_degrades_to_the_reference_result() {
        use td_obs::ExecutionLimits;
        // 6 attributes ⇒ the matrix needs 15 evals; a cap of 1 can never
        // fit, so the run must degrade *before* the build and hand back
        // the reference (un-partitioned) result, flagged.
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig {
            limits: ExecutionLimits::none().with_max_distance_evals(1),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        let deg = out.degradation.as_ref().expect("capped run must be flagged");
        assert_eq!(deg.reason, td_obs::DegradationReason::DistanceEvals(1));
        assert_eq!(deg.phase, "distance_matrix");
        assert_eq!(deg.work.distance_evals, 0, "the build never started");
        assert!(out.fallback);
        assert_eq!(out.partition.len(), 1, "whole-set partition");
        // Best-so-far = the base algorithm's reference run, intact.
        let reference = MajorityVote.discover(&d.view_all());
        assert_eq!(out.result.len(), reference.len());
        for o in d.object_ids() {
            for a in d.attribute_ids() {
                assert_eq!(out.result.prediction(o, a), reference.prediction(o, a));
            }
        }
    }

    #[test]
    fn generous_distance_budget_changes_nothing() {
        use td_obs::ExecutionLimits;
        let (d, _) = correlated_dataset();
        let plain = Tdac::new(TdacConfig::default()).run(&MajorityVote, &d).unwrap();
        let capped = Tdac::new(TdacConfig {
            limits: ExecutionLimits::none().with_max_distance_evals(15),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        // Exactly filling the cap is a *complete* run, not a degraded one.
        assert!(capped.degradation.is_none());
        assert_eq!(capped.partition, plain.partition);
        assert_eq!(capped.silhouette.to_bits(), plain.silhouette.to_bits());
        assert_eq!(capped.k_scores, plain.k_scores);
        assert!(capped.profile.is_none(), "user observer stays disabled");
    }

    #[test]
    fn fixpoint_budget_degrades_after_the_reference_run() {
        use td_obs::ExecutionLimits;
        // Accu iterates; a 1-iteration budget is consumed by the
        // reference run itself, so the pipeline stops at the first
        // boundary with the reference as the answer.
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig {
            limits: ExecutionLimits::none().with_max_fixpoint_iterations(1),
            ..Default::default()
        })
        .run(&Accu::default(), &d)
        .unwrap();
        let deg = out.degradation.as_ref().expect("budget must fire");
        assert_eq!(deg.reason, td_obs::DegradationReason::FixpointIterations(1));
        assert_eq!(deg.phase, "truth_vectors");
        assert!(deg.work.fixpoint_iterations >= 1);
        assert!(out.fallback);
        assert_eq!(out.result.len(), d.n_cells());
    }

    #[test]
    fn pre_cancelled_run_returns_flagged_reference() {
        use td_obs::{CancelToken, ExecutionLimits};
        let (d, _) = correlated_dataset();
        let token = CancelToken::new();
        token.cancel();
        let out = Tdac::new(TdacConfig {
            limits: ExecutionLimits::none().with_cancel(token),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        let deg = out.degradation.as_ref().expect("cancelled run must be flagged");
        assert_eq!(deg.reason, td_obs::DegradationReason::Cancelled);
        assert!(out.fallback);
        assert_eq!(out.result.len(), d.n_cells());
    }

    #[test]
    fn counter_degraded_outcomes_are_thread_count_invariant() {
        use td_obs::ExecutionLimits;
        // Oracle (c) of the chaos harness, at the unit level: counter
        // budgets are probed at sequential boundaries, so the degraded
        // outcome is identical at any thread count (elapsed_ms aside).
        let (d, _) = correlated_dataset();
        let run = |parallelism| {
            Tdac::new(TdacConfig {
                backend: crate::ExecutionBackend::in_process(parallelism),
                limits: ExecutionLimits::none().with_max_distance_evals(1),
                ..Default::default()
            })
            .run(&MajorityVote, &d)
            .unwrap()
        };
        let seq = run(Parallelism::Threads(1));
        for parallelism in [Parallelism::Threads(2), Parallelism::Threads(8), Parallelism::Auto] {
            let par = run(parallelism);
            let (a, b) = (seq.degradation.as_ref().unwrap(), par.degradation.as_ref().unwrap());
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.work.distance_evals, b.work.distance_evals);
            assert_eq!(a.work.fixpoint_iterations, b.work.fixpoint_iterations);
            assert_eq!(seq.partition, par.partition);
            let t1: Vec<u64> = seq.result.source_trust.iter().map(|t| t.to_bits()).collect();
            let t2: Vec<u64> = par.result.source_trust.iter().map(|t| t.to_bits()).collect();
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn budget_checks_are_visible_on_the_profile() {
        use td_obs::ExecutionLimits;
        let (d, _) = correlated_dataset();
        let out = Tdac::new(TdacConfig {
            observer: Observer::enabled(),
            limits: ExecutionLimits::none().with_max_distance_evals(1),
            ..Default::default()
        })
        .run(&MajorityVote, &d)
        .unwrap();
        let profile = out.profile.expect("enabled observer ⇒ profile");
        assert!(profile.counter("budget_checks").unwrap() >= 1);
        assert_eq!(profile.counter("degraded_runs"), Some(1));
        assert_eq!(profile.counter("worker_panics"), Some(0));
    }

    /// A base algorithm that panics on any proper attribute subset —
    /// healthy on the full view (reference run), poisoned inside the
    /// per-group workers.
    struct PanicsOnSubset {
        full: usize,
    }

    impl TruthDiscovery for PanicsOnSubset {
        fn name(&self) -> &'static str {
            "PanicsOnSubset"
        }

        fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
            assert!(
                view.attributes().len() >= self.full,
                "injected per-group failure"
            );
            MajorityVote.discover(view)
        }
    }

    #[test]
    fn per_group_worker_panic_surfaces_as_typed_error() {
        let (d, _) = correlated_dataset();
        let base = PanicsOnSubset { full: 6 };
        let err = Tdac::new(TdacConfig::default()).run(&base, &d).unwrap_err();
        let TdacError::WorkerPanic { phase, detail } = err else {
            panic!("expected WorkerPanic, got {err:?}");
        };
        assert!(
            phase.starts_with("per_group_run/group="),
            "panic must name the group, got `{phase}`"
        );
        assert!(detail.contains("injected per-group failure"), "{detail}");
    }

    #[test]
    fn per_group_panics_pick_the_smallest_group_deterministically() {
        // Both groups panic; the reported phase must be group 0 at any
        // thread count (first-in-group-order wins).
        let (d, _) = correlated_dataset();
        let base = PanicsOnSubset { full: 6 };
        for parallelism in [Parallelism::Threads(1), Parallelism::Threads(8), Parallelism::Auto] {
            let err = Tdac::new(TdacConfig {
                backend: crate::ExecutionBackend::in_process(parallelism),
                ..Default::default()
            })
            .run(&base, &d)
            .unwrap_err();
            let TdacError::WorkerPanic { phase, .. } = err else {
                panic!("expected WorkerPanic");
            };
            assert_eq!(phase, "per_group_run/group=0", "{parallelism:?}");
        }
    }

    #[test]
    fn reference_run_panic_is_caught_at_the_pipeline_boundary() {
        // A panic outside any worker boundary (the sequential reference
        // run) is still converted, with the coarse `pipeline` phase.
        struct AlwaysPanics;
        impl TruthDiscovery for AlwaysPanics {
            fn name(&self) -> &'static str {
                "AlwaysPanics"
            }
            fn discover(&self, _view: &DatasetView<'_>) -> TruthResult {
                panic!("poisoned base algorithm")
            }
        }
        let (d, _) = correlated_dataset();
        let err = Tdac::new(TdacConfig::default()).run(&AlwaysPanics, &d).unwrap_err();
        let TdacError::WorkerPanic { phase, detail } = err else {
            panic!("expected WorkerPanic, got {err:?}");
        };
        assert_eq!(phase, "pipeline");
        assert!(detail.contains("poisoned base algorithm"));
    }

    #[test]
    fn worker_panics_are_counted_on_the_observer() {
        let (d, _) = correlated_dataset();
        let obs = Observer::enabled();
        let base = PanicsOnSubset { full: 6 };
        let _ = Tdac::new(TdacConfig {
            observer: obs.clone(),
            ..Default::default()
        })
        .run(&base, &d)
        .unwrap_err();
        assert!(obs.counter_value(td_obs::Counter::WorkerPanics) >= 1);
    }
}
