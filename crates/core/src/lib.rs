#![warn(missing_docs)]
// Numeric kernels index several parallel arrays in lockstep; iterator
// rewrites obscure them without gain.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::vec_init_then_push)]

//! # tdac-core — Truth Discovery with Attribute Clustering
//!
//! The primary contribution of the TD-AC paper (Tossou & Ba, EDBT 2021),
//! plus the brute-force baseline it improves on.
//!
//! ## The problem
//!
//! When data attributes are *structurally correlated* — sources exhibit
//! the same reliability within groups of attributes but different
//! reliability across groups — running one truth-discovery process over
//! all attributes biases the learned source trust. The fix is to
//! partition the attributes into the correlated groups and run the base
//! algorithm per group (Problem 2 of the paper).
//!
//! ## The TD-AC pipeline (Algorithm 1)
//!
//! 1. run a base algorithm `F` once to get a *reference truth*;
//! 2. build the **attribute truth-vector matrix** (Eq. 1): one row per
//!    attribute, one column per `(object, source)` pair, a `1` where the
//!    source's claim matches the reference truth — see
//!    [`truth_vectors`];
//! 3. sweep `k ∈ [2, |A|-1]`, clustering the rows with k-means and
//!    scoring each partition with the silhouette index (Eqs. 5–7); keep
//!    the best — see [`tdac`];
//! 4. run `F` on each cluster of the winning partition and merge the
//!    partial results.
//!
//! ## The baseline
//!
//! [`accugen`] implements **AccuGenPartition** (Ba et al., WebDB 2015):
//! exhaustive enumeration of *all* set partitions of the attributes
//! (Bell(|A|) of them — see [`partition`]), running `F` on every group of
//! every partition, and selecting by a weighting function over source
//! reliabilities (`Max`, `Avg`) or by ground truth (`Oracle`). Its cost
//! is what motivates TD-AC.
//!
//! ```
//! use td_model::{DatasetBuilder, Value};
//! use td_algorithms::MajorityVote;
//! use tdac_core::{Tdac, TdacConfig};
//!
//! // Two correlated attribute groups: s1/s2 are right on a1, a2;
//! // s3 is right on b1, b2.
//! let mut b = DatasetBuilder::new();
//! for o in ["o1", "o2", "o3"] {
//!     for a in ["a1", "a2"] {
//!         b.claim("s1", o, a, Value::text("good")).unwrap();
//!         b.claim("s2", o, a, Value::text("good")).unwrap();
//!         b.claim("s3", o, a, Value::text("bad")).unwrap();
//!     }
//!     for a in ["b1", "b2"] {
//!         b.claim("s1", o, a, Value::text("bad")).unwrap();
//!         b.claim("s2", o, a, Value::text("oops")).unwrap();
//!         b.claim("s3", o, a, Value::text("good")).unwrap();
//!     }
//! }
//! let dataset = b.build();
//! let outcome = Tdac::new(TdacConfig::default())
//!     .run(&MajorityVote, &dataset)
//!     .unwrap();
//! assert_eq!(outcome.result.len(), 12); // every cell predicted
//! ```

pub mod accugen;
pub mod backend;
pub mod config;
pub mod error;
pub mod masked;
pub mod object_clustering;
pub mod partition;
pub mod query;
pub mod session;
pub mod tdac;
pub mod truth_vectors;

pub use accugen::{
    run_partition, AccuGenError, AccuGenOutcome, AccuGenPartition, Weighting,
};
pub use backend::{ExecutionBackend, RetryPolicy, ShardPlan, ShardStrategy};
pub use config::{
    ClusterMethod, MetricKind, Parallelism, TdacConfig, TdacConfigBuilder,
};
pub use error::TdError;
pub use masked::MaskedTruthVectors;
pub use object_clustering::{ObjectPartition, Tdoc, TdocOutcome};
pub use partition::{bell_number, partitions_iter, AttributePartition, PartitionIter};
pub use query::{Prediction, QueryResponse, SourceTrust, TruthQuery};
pub use session::{IngestReport, RepartitionPolicy, SessionError, TdacSession};
pub use tdac::{ModelSelection, PartitionedModel, Tdac, TdacError, TdacOutcome};
pub use truth_vectors::{
    truth_vector_matrix, truth_vector_set, truth_vector_set_from_result,
    truth_vectors_from_result, TruthVectors,
};

// Re-export the representation-aware distance vocabulary so downstream
// crates can pick kernels without a direct clustering dependency.
pub use clustering::{BitMatrix, DistanceOptions, KernelPolicy, Rows};

// Re-export the persistent dataset-store vocabulary so downstream
// crates can pack and load `.tds` files without a direct td-store
// dependency.
pub use td_store::{DatasetStore, StoreError, TruthPage};

// Re-export the observability + execution-limits vocabulary so
// downstream crates can enable profiling and budgets without a direct
// td-obs dependency.
pub use td_obs::{
    CancelToken, Counter, Degradation, DegradationReason, ExecutionLimits, Observer, PhaseHook,
    RunProfile, ShardFault, WorkCompleted,
};
