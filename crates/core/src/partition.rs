//! Attribute partitions: the search space of the truth-discovery-with-
//! attribute-partitioning problem.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use td_model::AttributeId;

/// A partition of a set of attributes into disjoint, jointly exhaustive
/// groups.
///
/// Stored in *canonical form*: attributes sorted within each group,
/// groups sorted by their smallest attribute. Canonicalization makes
/// partition equality, hashing and the paper's Table 5 comparisons
/// well-defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttributePartition {
    groups: Vec<Vec<AttributeId>>,
}

impl AttributePartition {
    /// Builds a partition from groups, canonicalizing. Empty groups are
    /// dropped.
    pub fn new(mut groups: Vec<Vec<AttributeId>>) -> Self {
        groups.retain(|g| !g.is_empty());
        for g in groups.iter_mut() {
            g.sort_unstable();
            g.dedup();
        }
        groups.sort_by_key(|g| g[0]);
        Self { groups }
    }

    /// The single-group (trivial) partition over `attributes`.
    pub fn whole(attributes: &[AttributeId]) -> Self {
        Self::new(vec![attributes.to_vec()])
    }

    /// Builds a partition from per-attribute cluster assignments:
    /// `attributes[i]` goes to group `assignments[i]`.
    ///
    /// # Panics
    /// Panics if the two slices have different lengths.
    pub fn from_assignments(attributes: &[AttributeId], assignments: &[usize]) -> Self {
        assert_eq!(attributes.len(), assignments.len());
        let mut by_cluster: HashMap<usize, Vec<AttributeId>> = HashMap::new();
        for (&a, &c) in attributes.iter().zip(assignments) {
            by_cluster.entry(c).or_default().push(a);
        }
        Self::new(by_cluster.into_values().collect())
    }

    /// The groups, canonical order.
    pub fn groups(&self) -> &[Vec<AttributeId>] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups (empty attribute set).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total number of attributes across groups.
    pub fn n_attributes(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// The group index containing `attribute`, if any.
    pub fn group_of(&self, attribute: AttributeId) -> Option<usize> {
        self.groups
            .iter()
            .position(|g| g.binary_search(&attribute).is_ok())
    }

    /// Whether `self` and `other` group the same attribute set
    /// identically (canonical equality).
    pub fn same_grouping(&self, other: &AttributePartition) -> bool {
        self == other
    }

    /// Rand index between two partitions of the same attribute set: the
    /// fraction of attribute pairs on which the partitions agree
    /// (together/apart). `1.0` means identical groupings; used to compare
    /// recovered vs. planted partitions (paper Table 5).
    pub fn rand_index(&self, other: &AttributePartition) -> f64 {
        let attrs: Vec<AttributeId> = self.groups.iter().flatten().copied().collect();
        let n = attrs.len();
        if n < 2 {
            return 1.0;
        }
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let together_self = self.group_of(attrs[i]) == self.group_of(attrs[j]);
                let together_other = other.group_of(attrs[i]) == other.group_of(attrs[j]);
                agree += usize::from(together_self == together_other);
                total += 1;
            }
        }
        agree as f64 / total as f64
    }
}

impl fmt::Display for AttributePartition {
    /// Paper-style rendering with 1-based attribute indices:
    /// `[(1,2),(4,6),(3,5)]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (gi, g) in self.groups.iter().enumerate() {
            if gi > 0 {
                write!(f, ",")?;
            }
            write!(f, "(")?;
            for (ai, a) in g.iter().enumerate() {
                if ai > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", a.0 + 1)?;
            }
            write!(f, ")")?;
        }
        write!(f, "]")
    }
}

/// Lazy enumeration of all set partitions of an attribute set via
/// restricted growth strings, in a fixed deterministic order, without
/// ever materializing the Bell(n)-sized list — AccuGenPartition streams
/// this through `par_bridge`, keeping memory O(n) per worker even for
/// attribute counts where Bell(n) is millions. Collect it when a full
/// list is genuinely needed.
#[derive(Debug, Clone)]
pub struct PartitionIter {
    attributes: Vec<AttributeId>,
    /// Restricted growth string: rgs[0] = 0; rgs[i] <= max(rgs[..i]) + 1.
    /// `None` once exhausted.
    rgs: Option<Vec<usize>>,
}

impl Iterator for PartitionIter {
    type Item = AttributePartition;

    fn next(&mut self) -> Option<AttributePartition> {
        let rgs = self.rgs.as_mut()?;
        let n = rgs.len();
        if n == 0 {
            // Bell(0) = 1: the empty set has exactly one partition.
            self.rgs = None;
            return Some(AttributePartition::new(vec![]));
        }
        let n_groups = rgs.iter().copied().max().unwrap_or(0) + 1;
        let mut groups: Vec<Vec<AttributeId>> = vec![Vec::new(); n_groups];
        for (i, &g) in rgs.iter().enumerate() {
            groups[g].push(self.attributes[i]);
        }
        let current = AttributePartition::new(groups);

        // Advance to the next restricted growth string (odometer with the
        // RGS bound), or mark the stream exhausted.
        let mut i = n;
        loop {
            if i == 1 {
                self.rgs = None;
                break;
            }
            i -= 1;
            let prefix_max = rgs[..i].iter().copied().max().unwrap_or(0);
            if rgs[i] <= prefix_max {
                rgs[i] += 1;
                for r in rgs.iter_mut().skip(i + 1) {
                    *r = 0;
                }
                break;
            }
        }
        Some(current)
    }
}

/// Streams **all** set partitions of `attributes` lazily, in a
/// deterministic order. There are Bell(n) of them — 203 for the paper's
/// 6 synthetic attributes, but combinatorially explosive beyond ~12 (use
/// [`bell_number`] to check, or bound consumption with `take`).
pub fn partitions_iter(attributes: &[AttributeId]) -> PartitionIter {
    PartitionIter {
        attributes: attributes.to_vec(),
        rgs: Some(vec![0usize; attributes.len()]),
    }
}

/// The Bell number B(n): how many set partitions an `n`-attribute set
/// has. Computed with the Bell triangle; saturates at `u64::MAX`.
pub fn bell_number(n: usize) -> u64 {
    if n == 0 {
        return 1;
    }
    let mut row = vec![1u64];
    for _ in 1..n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().expect("non-empty row"));
        for &x in &row {
            let prev = *next.last().expect("non-empty");
            next.push(prev.saturating_add(x));
        }
        row = next;
    }
    *row.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttributeId {
        AttributeId::new(i)
    }

    #[test]
    fn canonicalization() {
        let p1 = AttributePartition::new(vec![vec![a(3), a(1)], vec![a(0), a(2)]]);
        let p2 = AttributePartition::new(vec![vec![a(2), a(0)], vec![a(1), a(3)]]);
        assert_eq!(p1, p2);
        assert_eq!(p1.groups()[0], vec![a(0), a(2)]);
        assert_eq!(p1.len(), 2);
        assert_eq!(p1.n_attributes(), 4);
    }

    #[test]
    fn empty_groups_are_dropped() {
        let p = AttributePartition::new(vec![vec![], vec![a(0)], vec![]]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn group_of_lookup() {
        let p = AttributePartition::new(vec![vec![a(0), a(1)], vec![a(2)]]);
        assert_eq!(p.group_of(a(1)), Some(0));
        assert_eq!(p.group_of(a(2)), Some(1));
        assert_eq!(p.group_of(a(9)), None);
    }

    #[test]
    fn from_assignments_mirrors_clustering_output() {
        let attrs = [a(0), a(1), a(2), a(3)];
        let p = AttributePartition::from_assignments(&attrs, &[1, 0, 1, 2]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.group_of(a(0)), p.group_of(a(2)));
        assert_ne!(p.group_of(a(1)), p.group_of(a(3)));
    }

    #[test]
    fn display_is_paper_style_one_based() {
        let p = AttributePartition::new(vec![vec![a(0), a(1)], vec![a(3), a(5)], vec![a(2), a(4)]]);
        assert_eq!(p.to_string(), "[(1,2),(3,5),(4,6)]");
    }

    #[test]
    fn bell_numbers_match_oeis() {
        let expect = [1u64, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975];
        for (n, &b) in expect.iter().enumerate() {
            assert_eq!(bell_number(n), b, "B({n})");
        }
    }

    #[test]
    fn enumeration_count_is_bell() {
        for n in 0..=7 {
            let attrs: Vec<AttributeId> = (0..n as u32).map(a).collect();
            let parts: Vec<AttributePartition> = partitions_iter(&attrs).collect();
            assert_eq!(parts.len() as u64, bell_number(n), "n = {n}");
        }
    }

    #[test]
    fn enumeration_has_no_duplicates_and_is_exhaustive() {
        let attrs: Vec<AttributeId> = (0..5u32).map(a).collect();
        let parts: Vec<AttributePartition> = partitions_iter(&attrs).collect();
        let unique: std::collections::HashSet<_> = parts.iter().cloned().collect();
        assert_eq!(unique.len(), parts.len());
        for p in &parts {
            assert_eq!(p.n_attributes(), 5);
        }
        // The two extremes are present.
        assert!(parts.iter().any(|p| p.len() == 1));
        assert!(parts.iter().any(|p| p.len() == 5));
    }

    #[test]
    fn lazy_iterator_order_is_stable() {
        // The RGS order is a documented contract (oracle replay depends
        // on it): pin the first few partitions of n = 3 explicitly.
        let attrs: Vec<AttributeId> = (0..3u32).map(a).collect();
        let lazy: Vec<AttributePartition> = partitions_iter(&attrs).collect();
        let expect = [
            "[(1,2,3)]",
            "[(1,2),(3)]",
            "[(1,3),(2)]",
            "[(1),(2,3)]",
            "[(1),(2),(3)]",
        ];
        let got: Vec<String> = lazy.iter().map(|p| p.to_string()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn lazy_iterator_is_resumable_midstream() {
        let attrs: Vec<AttributeId> = (0..6u32).map(a).collect();
        let mut it = partitions_iter(&attrs);
        let head: Vec<_> = it.by_ref().take(100).collect();
        let tail: Vec<_> = it.collect();
        assert_eq!(head.len(), 100);
        assert_eq!(head.len() as u64 + tail.len() as u64, bell_number(6));
    }

    #[test]
    fn rand_index_behaviour() {
        let p1 = AttributePartition::new(vec![vec![a(0), a(1)], vec![a(2), a(3)]]);
        let p2 = AttributePartition::new(vec![vec![a(0), a(1)], vec![a(2), a(3)]]);
        assert_eq!(p1.rand_index(&p2), 1.0);
        let p3 = AttributePartition::new(vec![vec![a(0), a(2)], vec![a(1), a(3)]]);
        let ri = p1.rand_index(&p3);
        assert!(ri < 1.0);
        assert!(ri >= 0.0);
        // Singleton partition vs itself.
        let s = AttributePartition::new(vec![vec![a(0)]]);
        assert_eq!(s.rand_index(&s), 1.0);
    }

    #[test]
    fn whole_partition() {
        let p = AttributePartition::whole(&[a(2), a(0), a(1)]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.groups()[0], vec![a(0), a(1), a(2)]);
    }
}
