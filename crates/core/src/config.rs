//! Configuration of the TD-AC pipeline.

use clustering::{Cosine, Euclidean, Hamming, Linkage, Metric};
use serde::{Deserialize, Serialize};

/// Which distance the silhouette model selection uses.
///
/// The paper defines attribute similarity with the Hamming distance
/// (Eq. 2) — the default — but the inner k-means always optimizes
/// Euclidean inertia (Eq. 3), exactly as in the paper. On 0/1 truth
/// vectors, Hamming = L1 = squared L2, so the choices coincide there and
/// only diverge on the fractional centroids; the variants exist for the
/// ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Hamming / L1 (the paper's Eq. 2).
    Hamming,
    /// Euclidean (L2).
    Euclidean,
    /// Cosine distance.
    Cosine,
}

impl MetricKind {
    /// The metric object behind the kind.
    pub fn as_metric(self) -> &'static dyn Metric {
        match self {
            MetricKind::Hamming => &Hamming,
            MetricKind::Euclidean => &Euclidean,
            MetricKind::Cosine => &Cosine,
        }
    }
}

/// How much of the machine the pipeline may use.
///
/// The paper's future-work perspective (ii) proposes parallelizing the
/// per-group truth-discovery runs; this setting governs that and every
/// other data-parallel kernel (distance matrices, the k-sweep, k-means
/// restarts, PAM swaps, AccuGen's partition scan). All parallel
/// reductions are index-deterministic, so the outcome is bit-identical
/// at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use rayon's default pool (all available cores, or
    /// `RAYON_NUM_THREADS` when set).
    Auto,
    /// Pin to exactly this many worker threads; `Threads(1)` runs
    /// everything sequentially.
    Threads(usize),
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::Auto
    }
}

impl Parallelism {
    /// The pinned thread count, or `None` for [`Parallelism::Auto`].
    pub fn threads(self) -> Option<usize> {
        match self {
            Parallelism::Auto => None,
            Parallelism::Threads(n) => Some(n.max(1)),
        }
    }

    /// Runs `f` under this parallelism setting: `Auto` uses the global
    /// pool; `Threads(n)` installs a pool pinned to `n` workers for the
    /// duration of the call.
    pub fn install<R>(self, f: impl FnOnce() -> R) -> R {
        match self.threads() {
            None => f(),
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("build thread pool")
                .install(f),
        }
    }
}

/// Which clusterer groups the attribute truth vectors.
///
/// The paper uses k-means; PAM and agglomerative clustering are provided
/// for the design-choice ablations called out in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Lloyd's k-means with k-means++ (the paper's choice).
    KMeans,
    /// k-medoids (PAM) under the silhouette metric.
    Pam,
    /// Agglomerative clustering with the given linkage.
    Hierarchical(Linkage),
}

/// Full TD-AC configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TdacConfig {
    /// Smallest k to try (Algorithm 1: 2).
    pub k_min: usize,
    /// Largest k to try; `None` means `|A| - 1` as in Algorithm 1.
    pub k_max: Option<usize>,
    /// Distance used by the silhouette index.
    pub metric: MetricKind,
    /// Clustering algorithm.
    pub method: ClusterMethod,
    /// k-means restarts per k.
    pub n_init: u32,
    /// RNG seed for the clusterer.
    pub seed: u64,
    /// If the silhouette of the best partition falls at or below this
    /// value, TD-AC falls back to the un-partitioned run (no structure
    /// found ⇒ partitioning would only starve the base algorithm of
    /// evidence). `None` disables the fallback — strict Algorithm 1.
    pub min_silhouette: Option<f64>,
    /// Missing-data-aware mode (the paper's future-work perspective (i)):
    /// cluster with the *masked* Hamming distance over co-observed
    /// coordinates (see [`crate::masked`]) using PAM, instead of plain
    /// k-means over Eq. 1 vectors. Helps on sparse data (low DCR).
    pub missing_aware: bool,
    /// Thread budget for every parallel kernel in the pipeline —
    /// per-group base-algorithm runs (the paper's future-work
    /// perspective (ii)), the shared distance matrix, the k-sweep, and
    /// the clusterers. Deterministic at any setting.
    pub parallelism: Parallelism,
}

impl Default for TdacConfig {
    fn default() -> Self {
        Self {
            k_min: 2,
            k_max: None,
            metric: MetricKind::Hamming,
            method: ClusterMethod::KMeans,
            n_init: 10,
            seed: 42,
            min_silhouette: None,
            missing_aware: false,
            parallelism: Parallelism::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_kinds_resolve() {
        assert_eq!(MetricKind::Hamming.as_metric().name(), "hamming");
        assert_eq!(MetricKind::Euclidean.as_metric().name(), "euclidean");
        assert_eq!(MetricKind::Cosine.as_metric().name(), "cosine");
    }

    #[test]
    fn default_matches_algorithm_one() {
        let c = TdacConfig::default();
        assert_eq!(c.k_min, 2);
        assert_eq!(c.k_max, None);
        assert_eq!(c.metric, MetricKind::Hamming);
        assert_eq!(c.method, ClusterMethod::KMeans);
        assert!(c.min_silhouette.is_none());
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = TdacConfig {
            method: ClusterMethod::Hierarchical(Linkage::Average),
            parallelism: Parallelism::Threads(3),
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: TdacConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.method, c.method);
        assert_eq!(back.parallelism, c.parallelism);
    }

    #[test]
    fn parallelism_resolves_threads() {
        assert_eq!(Parallelism::Auto.threads(), None);
        assert_eq!(Parallelism::Threads(4).threads(), Some(4));
        // Threads(0) is clamped to one worker rather than "auto".
        assert_eq!(Parallelism::Threads(0).threads(), Some(1));
    }

    #[test]
    fn parallelism_install_pins_pool() {
        Parallelism::Threads(2).install(|| {
            assert_eq!(rayon::current_num_threads(), 2);
        });
        let out = Parallelism::Auto.install(|| 7);
        assert_eq!(out, 7);
    }
}
