//! Configuration of the TD-AC pipeline.

use clustering::{Cosine, Euclidean, Hamming, KernelPolicy, Linkage, Metric};
use serde::{Deserialize, Serialize};
use td_obs::{ExecutionLimits, Observer};

use crate::backend::ExecutionBackend;
use crate::tdac::TdacError;

/// Which distance the silhouette model selection uses.
///
/// The paper defines attribute similarity with the Hamming distance
/// (Eq. 2) — the default — but the inner k-means always optimizes
/// Euclidean inertia (Eq. 3), exactly as in the paper. On 0/1 truth
/// vectors, Hamming = L1 = squared L2, so the choices coincide there and
/// only diverge on the fractional centroids; the variants exist for the
/// ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Hamming / L1 (the paper's Eq. 2).
    Hamming,
    /// Euclidean (L2).
    Euclidean,
    /// Cosine distance.
    Cosine,
}

impl MetricKind {
    /// The metric object behind the kind.
    pub fn as_metric(self) -> &'static dyn Metric {
        match self {
            MetricKind::Hamming => &Hamming,
            MetricKind::Euclidean => &Euclidean,
            MetricKind::Cosine => &Cosine,
        }
    }
}

/// How much of the machine the pipeline may use.
///
/// The paper's future-work perspective (ii) proposes parallelizing the
/// per-group truth-discovery runs; this setting governs that and every
/// other data-parallel kernel (distance matrices, the k-sweep, k-means
/// restarts, PAM swaps, AccuGen's partition scan). All parallel
/// reductions are index-deterministic, so the outcome is bit-identical
/// at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use rayon's default pool (all available cores, or
    /// `RAYON_NUM_THREADS` when set).
    Auto,
    /// Pin to exactly this many worker threads; `Threads(1)` runs
    /// everything sequentially.
    Threads(usize),
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::Auto
    }
}

impl Parallelism {
    /// The pinned thread count, or `None` for [`Parallelism::Auto`].
    pub fn threads(self) -> Option<usize> {
        match self {
            Parallelism::Auto => None,
            Parallelism::Threads(n) => Some(n.max(1)),
        }
    }

    /// Runs `f` under this parallelism setting: `Auto` uses the global
    /// pool; `Threads(n)` installs a pool pinned to `n` workers for the
    /// duration of the call.
    pub fn install<R>(self, f: impl FnOnce() -> R) -> R {
        match self.threads() {
            None => f(),
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("build thread pool")
                .install(f),
        }
    }
}

/// Which clusterer groups the attribute truth vectors.
///
/// The paper uses k-means; PAM and agglomerative clustering are provided
/// for the design-choice ablations called out in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Lloyd's k-means with k-means++ (the paper's choice).
    KMeans,
    /// k-medoids (PAM) under the silhouette metric.
    Pam,
    /// Agglomerative clustering with the given linkage.
    Hierarchical(Linkage),
}

/// Full TD-AC configuration.
///
/// Construct it as a plain struct (every field is public, and
/// `..Default::default()` fills the rest), or through the validating
/// [`TdacConfig::builder`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TdacConfig {
    /// Smallest k to try (Algorithm 1: 2).
    pub k_min: usize,
    /// Largest k to try; `None` means `|A| - 1` as in Algorithm 1.
    pub k_max: Option<usize>,
    /// Distance used by the silhouette index.
    pub metric: MetricKind,
    /// Clustering algorithm.
    pub method: ClusterMethod,
    /// k-means restarts per k.
    pub n_init: u32,
    /// RNG seed for the clusterer.
    pub seed: u64,
    /// If the silhouette of the best partition falls at or below this
    /// value, TD-AC falls back to the un-partitioned run (no structure
    /// found ⇒ partitioning would only starve the base algorithm of
    /// evidence). `None` disables the fallback — strict Algorithm 1.
    pub min_silhouette: Option<f64>,
    /// Missing-data-aware mode (the paper's future-work perspective (i)):
    /// cluster with the *masked* Hamming distance over co-observed
    /// coordinates (see [`crate::masked`]) using PAM, instead of plain
    /// k-means over Eq. 1 vectors. Helps on sparse data (low DCR).
    pub missing_aware: bool,
    /// **Deprecated shim** — use [`TdacConfig::backend`] with
    /// [`ExecutionBackend::InProcess`] instead; this field will be
    /// removed after one release. Which distance kernel the shared
    /// pairwise matrix may use: [`KernelPolicy::Auto`] (default) picks
    /// the bit-packed popcount kernel whenever the truth vectors are
    /// binary and the metric counts bit disagreements; `Dense` pins the
    /// `f64` reference path; `Packed` insists on packing where
    /// representable. All three are bit-identical — this is a
    /// performance/verification knob, never a semantics switch (see
    /// `docs/KERNELS.md`). Absent in serialized configs from before the
    /// knob existed, so it deserializes via `Default`. Still honoured
    /// whenever the backend carries the default kernel policy (see
    /// [`TdacConfig::effective_kernel`]).
    #[serde(default)]
    pub kernel: KernelPolicy,
    /// Where runs of this config execute: in-process under a rayon pool
    /// (the default) or distributed across worker processes by the
    /// `td-shard` coordinator. This is the *unified* parallelism knob —
    /// the loose `parallelism` / `kernel` fields above are deprecated
    /// shims that only apply while the backend carries the
    /// corresponding defaults. Absent in serialized configs from before
    /// the knob existed, so legacy configs deserialize to the
    /// in-process default. [`crate::Tdac::run`] rejects a sharded
    /// backend with a typed error; use `td_shard::ShardRunner` (or
    /// `tdc shard`) to execute one.
    #[serde(default)]
    pub backend: ExecutionBackend,
    /// Execution budgets and cooperative cancellation for every run of
    /// this config: wall-clock deadline, distance-evaluation / fixpoint
    /// / partition caps, and an optional [`td_obs::CancelToken`]. The
    /// default is unlimited (no budget machinery is armed at all). On
    /// exhaustion the run returns its best-so-far outcome flagged with a
    /// [`td_obs::Degradation`] record — see `docs/ROBUSTNESS.md`. Absent
    /// in configs serialized before limits existed, so it deserializes
    /// via `Default` (unlimited); the cancel token itself is never
    /// serialized.
    #[serde(default)]
    pub limits: ExecutionLimits,
    /// Instrumentation handle. The default is disabled (near-zero
    /// overhead); clone an [`Observer::enabled`] handle in to collect
    /// per-phase timings and work-unit counters on the outcome's
    /// `profile` field. Observation never changes results — see
    /// `docs/OBSERVABILITY.md`. Not serialized: configs deserialize with
    /// observation off.
    #[serde(skip)]
    pub observer: Observer,
}

impl Default for TdacConfig {
    fn default() -> Self {
        Self {
            k_min: 2,
            k_max: None,
            metric: MetricKind::Hamming,
            method: ClusterMethod::KMeans,
            n_init: 10,
            seed: 42,
            min_silhouette: None,
            missing_aware: false,
            kernel: KernelPolicy::default(),
            backend: ExecutionBackend::default(),
            limits: ExecutionLimits::default(),
            observer: Observer::disabled(),
        }
    }
}

impl TdacConfig {
    /// A [`TdacConfigBuilder`] initialized with the defaults.
    ///
    /// The builder's [`TdacConfigBuilder::build`] validates the
    /// combination (`k_min >= 2`, `k_max >= k_min`, `n_init >= 1`) and
    /// returns [`TdacError::InvalidConfig`] on nonsense, which plain
    /// struct construction cannot catch until run time.
    pub fn builder() -> TdacConfigBuilder {
        TdacConfigBuilder {
            config: TdacConfig::default(),
        }
    }

    /// The thread budget every in-process kernel actually runs under.
    ///
    /// [`ExecutionBackend::InProcess`] resolves to its own parallelism;
    /// a sharded backend resolves to [`Parallelism::default`] — that is
    /// what the coordinator's own sequential phases (model selection,
    /// reassembly) use, while each worker runs under the plan's
    /// `worker_parallelism`. The bare `parallelism` field this method
    /// once shimmed is gone; old serialized configs that still carry the
    /// key load fine (unknown keys are ignored) but the backend is the
    /// sole authority.
    pub fn effective_parallelism(&self) -> Parallelism {
        match &self.backend {
            ExecutionBackend::InProcess { parallelism, .. } => *parallelism,
            ExecutionBackend::Sharded(_) => Parallelism::default(),
        }
    }

    /// The distance-kernel policy the shared pairwise matrix actually
    /// uses; same resolution rule as
    /// [`TdacConfig::effective_parallelism`].
    pub fn effective_kernel(&self) -> KernelPolicy {
        match &self.backend {
            ExecutionBackend::InProcess { kernels, .. } if *kernels != KernelPolicy::Auto => {
                *kernels
            }
            _ => self.kernel,
        }
    }
}

/// Validating builder for [`TdacConfig`]; see [`TdacConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct TdacConfigBuilder {
    config: TdacConfig,
}

impl TdacConfigBuilder {
    /// Smallest k of the sweep (Algorithm 1 starts at 2).
    pub fn k_min(mut self, k_min: usize) -> Self {
        self.config.k_min = k_min;
        self
    }

    /// Largest k of the sweep; unset means `|A| - 1` as in Algorithm 1.
    pub fn k_max(mut self, k_max: usize) -> Self {
        self.config.k_max = Some(k_max);
        self
    }

    /// Distance used by the silhouette index.
    pub fn metric(mut self, metric: MetricKind) -> Self {
        self.config.metric = metric;
        self
    }

    /// Clustering algorithm.
    pub fn method(mut self, method: ClusterMethod) -> Self {
        self.config.method = method;
        self
    }

    /// k-means restarts per k (must be at least 1).
    pub fn n_init(mut self, n_init: u32) -> Self {
        self.config.n_init = n_init;
        self
    }

    /// RNG seed for the clusterer.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Silhouette floor below which TD-AC falls back to the
    /// un-partitioned run.
    pub fn min_silhouette(mut self, floor: f64) -> Self {
        self.config.min_silhouette = Some(floor);
        self
    }

    /// Missing-data-aware mode (masked distances + PAM).
    pub fn missing_aware(mut self, on: bool) -> Self {
        self.config.missing_aware = on;
        self
    }

    /// Thread budget for every parallel kernel — a convenience that
    /// rewrites the backend to [`ExecutionBackend::InProcess`] with the
    /// given parallelism, preserving an in-process backend's kernel
    /// policy (a previously set sharded backend is replaced; set
    /// parallelism through the [`crate::ShardPlan`] in that case).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        let kernels = match self.config.backend {
            ExecutionBackend::InProcess { kernels, .. } => kernels,
            ExecutionBackend::Sharded(_) => KernelPolicy::default(),
        };
        self.config.backend = ExecutionBackend::InProcess { parallelism, kernels };
        self
    }

    /// Distance-kernel policy for the shared pairwise matrix
    /// (bit-identical under every setting).
    ///
    /// **Deprecated shim** — prefer [`TdacConfigBuilder::backend`] with
    /// [`ExecutionBackend::InProcess`]; kept for one release so
    /// existing callers migrate without breakage.
    pub fn kernel(mut self, kernel: KernelPolicy) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Execution backend: in-process (with its parallelism and kernel
    /// policy in one place) or sharded across worker processes. The
    /// unified replacement for the deprecated `parallelism` / `kernel`
    /// knobs; validated by `build()` (zero shards are rejected).
    pub fn backend(mut self, backend: ExecutionBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Instrumentation handle (clone of an [`Observer::enabled`] to
    /// collect a profile).
    pub fn observer(mut self, observer: Observer) -> Self {
        self.config.observer = observer;
        self
    }

    /// Execution budgets + cancellation (see
    /// [`TdacConfig::limits`]); validated by `build()`.
    pub fn limits(mut self, limits: ExecutionLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`TdacError::InvalidConfig`] when `k_min < 2` (a 1-cluster
    /// "partition" defeats Algorithm 1), `k_max < k_min` (empty sweep),
    /// `n_init == 0` (no k-means restart would run), the backend is
    /// invalid (a sharded plan with zero shards or a zero worker
    /// deadline), or any execution limit is a zero budget.
    pub fn build(self) -> Result<TdacConfig, TdacError> {
        let c = &self.config;
        if c.k_min < 2 {
            return Err(TdacError::InvalidConfig(format!(
                "k_min must be at least 2, got {}",
                c.k_min
            )));
        }
        if let Some(k_max) = c.k_max {
            if k_max < c.k_min {
                return Err(TdacError::InvalidConfig(format!(
                    "k_max ({k_max}) must not be below k_min ({})",
                    c.k_min
                )));
            }
        }
        if c.n_init == 0 {
            return Err(TdacError::InvalidConfig(
                "n_init must be at least 1".to_string(),
            ));
        }
        if let Some(floor) = c.min_silhouette {
            // A NaN floor would make `silhouette <= floor` always false
            // and silently disable the fallback it was meant to arm.
            if !floor.is_finite() {
                return Err(TdacError::InvalidConfig(format!(
                    "min_silhouette must be finite, got {floor}"
                )));
            }
        }
        c.backend.validate().map_err(TdacError::InvalidConfig)?;
        c.limits.validate().map_err(TdacError::InvalidConfig)?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_kinds_resolve() {
        assert_eq!(MetricKind::Hamming.as_metric().name(), "hamming");
        assert_eq!(MetricKind::Euclidean.as_metric().name(), "euclidean");
        assert_eq!(MetricKind::Cosine.as_metric().name(), "cosine");
    }

    #[test]
    fn default_matches_algorithm_one() {
        let c = TdacConfig::default();
        assert_eq!(c.k_min, 2);
        assert_eq!(c.k_max, None);
        assert_eq!(c.metric, MetricKind::Hamming);
        assert_eq!(c.method, ClusterMethod::KMeans);
        assert!(c.min_silhouette.is_none());
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = TdacConfig {
            method: ClusterMethod::Hierarchical(Linkage::Average),
            backend: ExecutionBackend::in_process(Parallelism::Threads(3)),
            kernel: KernelPolicy::Packed,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: TdacConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.method, c.method);
        assert_eq!(back.backend, c.backend);
        assert_eq!(back.effective_parallelism(), Parallelism::Threads(3));
        assert_eq!(back.kernel, c.kernel);
        // Configs serialized before the kernel knob existed still load.
        let legacy: TdacConfig =
            serde_json::from_str(&json.replace(",\"kernel\":\"Packed\"", "")).unwrap();
        assert_eq!(legacy.kernel, KernelPolicy::Auto);
    }

    #[test]
    fn parallelism_resolves_threads() {
        assert_eq!(Parallelism::Auto.threads(), None);
        assert_eq!(Parallelism::Threads(4).threads(), Some(4));
        // Threads(0) is clamped to one worker rather than "auto".
        assert_eq!(Parallelism::Threads(0).threads(), Some(1));
    }

    #[test]
    fn builder_defaults_match_plain_default() {
        let built = TdacConfig::builder().build().unwrap();
        let plain = TdacConfig::default();
        assert_eq!(built.k_min, plain.k_min);
        assert_eq!(built.k_max, plain.k_max);
        assert_eq!(built.metric, plain.metric);
        assert_eq!(built.method, plain.method);
        assert_eq!(built.n_init, plain.n_init);
        assert_eq!(built.seed, plain.seed);
        assert_eq!(built.min_silhouette, plain.min_silhouette);
        assert_eq!(built.missing_aware, plain.missing_aware);
        assert_eq!(built.backend, plain.backend);
        assert_eq!(built.effective_parallelism(), Parallelism::Auto);
        assert_eq!(built.kernel, plain.kernel);
        assert_eq!(built.kernel, KernelPolicy::Auto);
        assert_eq!(built.limits, plain.limits);
        assert!(!built.limits.is_active());
        assert!(!built.observer.is_enabled());
    }

    #[test]
    fn builder_sets_every_field() {
        let obs = Observer::enabled();
        let c = TdacConfig::builder()
            .k_min(3)
            .k_max(5)
            .metric(MetricKind::Euclidean)
            .method(ClusterMethod::Pam)
            .n_init(4)
            .seed(7)
            .min_silhouette(0.25)
            .missing_aware(true)
            .parallelism(Parallelism::Threads(2))
            .kernel(KernelPolicy::Dense)
            .limits(ExecutionLimits::none().with_max_distance_evals(1_000))
            .observer(obs)
            .build()
            .unwrap();
        assert_eq!(c.k_min, 3);
        assert_eq!(c.k_max, Some(5));
        assert_eq!(c.metric, MetricKind::Euclidean);
        assert_eq!(c.method, ClusterMethod::Pam);
        assert_eq!(c.n_init, 4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.min_silhouette, Some(0.25));
        assert!(c.missing_aware);
        // `.parallelism()` rewrites the backend in place.
        assert_eq!(
            c.backend,
            ExecutionBackend::in_process(Parallelism::Threads(2))
        );
        assert_eq!(c.effective_parallelism(), Parallelism::Threads(2));
        assert_eq!(c.kernel, KernelPolicy::Dense);
        assert_eq!(c.limits.max_distance_evals, Some(1_000));
        assert!(c.limits.is_active());
        assert!(c.observer.is_enabled());
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        for (builder, needle) in [
            (TdacConfig::builder().k_min(1), "k_min"),
            (TdacConfig::builder().k_min(0), "k_min"),
            (TdacConfig::builder().k_min(4).k_max(3), "k_max"),
            (TdacConfig::builder().n_init(0), "n_init"),
            (TdacConfig::builder().min_silhouette(f64::NAN), "min_silhouette"),
            (TdacConfig::builder().min_silhouette(f64::INFINITY), "min_silhouette"),
        ] {
            let err = builder.build().unwrap_err();
            match &err {
                TdacError::InvalidConfig(msg) => {
                    assert!(msg.contains(needle), "{err} should mention {needle}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        // The k_max check only fires against the configured k_min.
        assert!(TdacConfig::builder().k_min(3).k_max(3).build().is_ok());
    }

    #[test]
    fn builder_rejects_zero_budgets() {
        for limits in [
            ExecutionLimits { deadline_ms: Some(0), ..Default::default() },
            ExecutionLimits { max_distance_evals: Some(0), ..Default::default() },
            ExecutionLimits { max_fixpoint_iterations: Some(0), ..Default::default() },
            ExecutionLimits { max_partitions: Some(0), ..Default::default() },
        ] {
            let err = TdacConfig::builder().limits(limits).build().unwrap_err();
            match &err {
                TdacError::InvalidConfig(msg) => {
                    assert!(msg.contains("limits."), "{err} should name the limit field")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        // Real budgets pass, and so does an attached cancel token.
        assert!(TdacConfig::builder()
            .limits(
                ExecutionLimits::none()
                    .with_max_partitions(10)
                    .with_cancel(td_obs::CancelToken::new())
            )
            .build()
            .is_ok());
    }

    #[test]
    fn legacy_config_json_deserializes_unlimited() {
        // Configs serialized before the limits field existed still load.
        let json = serde_json::to_string(&TdacConfig::default()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let serde_json::Value::Object(map) = value else {
            panic!("config serializes as an object")
        };
        assert!(map.contains_key("limits"));
        let stripped: serde_json::Map = map.into_iter().filter(|(k, _)| k != "limits").collect();
        let back: TdacConfig =
            serde_json::from_value(&serde_json::Value::Object(stripped)).unwrap();
        assert!(!back.limits.is_active());
    }

    #[test]
    fn config_deserializes_with_observation_off() {
        // `observer` is #[serde(skip)]: round-tripping an enabled config
        // comes back disabled, so persisted configs never observe.
        let c = TdacConfig {
            observer: Observer::enabled(),
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("observer"));
        let back: TdacConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.observer.is_enabled());
    }

    #[test]
    fn builder_rejects_zero_shard_backends() {
        use crate::backend::{ShardPlan, ShardStrategy};
        let err = TdacConfig::builder()
            .backend(ExecutionBackend::Sharded(ShardPlan::new(
                ShardStrategy::HashByObject,
                0,
            )))
            .build()
            .unwrap_err();
        match &err {
            TdacError::InvalidConfig(msg) => {
                assert!(msg.contains("backend.shards"), "{err}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // A real plan passes.
        assert!(TdacConfig::builder()
            .backend(ExecutionBackend::Sharded(ShardPlan::new(
                ShardStrategy::ByAttributeGroup,
                4,
            )))
            .build()
            .is_ok());
    }

    #[test]
    fn legacy_config_json_defaults_to_in_process_backend() {
        // Configs serialized before the backend knob existed still load:
        // no "backend" key → in-process default, and a stale bare
        // "parallelism" key (removed after its one-release deprecation
        // window) is ignored rather than rejected.
        let json = serde_json::to_string(&TdacConfig {
            kernel: KernelPolicy::Packed,
            ..Default::default()
        })
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let serde_json::Value::Object(map) = value else {
            panic!("config serializes as an object")
        };
        assert!(map.contains_key("backend"));
        let mut stripped: serde_json::Map =
            map.into_iter().filter(|(k, _)| k != "backend").collect();
        stripped.insert(
            "parallelism".to_string(),
            serde_json::from_str(r#"{"Threads":2}"#).unwrap(),
        );
        let back: TdacConfig =
            serde_json::from_value(&serde_json::Value::Object(stripped)).unwrap();
        assert_eq!(back.backend, ExecutionBackend::default());
        assert!(!back.backend.is_sharded());
        // The removed field no longer steers anything; the kernel shim
        // (still in its deprecation window) does.
        assert_eq!(back.effective_parallelism(), Parallelism::Auto);
        assert_eq!(back.effective_kernel(), KernelPolicy::Packed);
    }

    #[test]
    fn backend_wins_over_legacy_kernel_field_when_explicit() {
        let c = TdacConfig {
            kernel: KernelPolicy::Packed, // legacy shim, overridden
            backend: ExecutionBackend::InProcess {
                parallelism: Parallelism::Threads(2),
                kernels: KernelPolicy::Dense,
            },
            ..Default::default()
        };
        assert_eq!(c.effective_parallelism(), Parallelism::Threads(2));
        assert_eq!(c.effective_kernel(), KernelPolicy::Dense);
        // A default backend defers to the legacy kernel shim, and a
        // sharded backend resolves coordinator parallelism to Auto.
        let c = TdacConfig {
            kernel: KernelPolicy::Packed,
            backend: ExecutionBackend::Sharded(crate::backend::ShardPlan::new(
                crate::backend::ShardStrategy::ByAttributeGroup,
                2,
            )),
            ..Default::default()
        };
        assert_eq!(c.effective_parallelism(), Parallelism::Auto);
        assert_eq!(c.effective_kernel(), KernelPolicy::Packed);
    }

    #[test]
    fn sharded_backend_round_trips_through_serde() {
        use crate::backend::{ShardPlan, ShardStrategy};
        let c = TdacConfig::builder()
            .backend(ExecutionBackend::Sharded(ShardPlan {
                worker_deadline_ms: Some(30_000),
                ..ShardPlan::new(ShardStrategy::HashByObject, 8)
            }))
            .build()
            .unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: TdacConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.backend, c.backend);
        assert_eq!(back.backend.shard_plan().unwrap().shards, 8);
    }

    #[test]
    fn parallelism_install_pins_pool() {
        Parallelism::Threads(2).install(|| {
            assert_eq!(rayon::current_num_threads(), 2);
        });
        let out = Parallelism::Auto.install(|| 7);
        assert_eq!(out, 7);
    }
}
