#![warn(missing_docs)]

//! # td-serve — a batched, deadline-aware serving front end for TD-AC
//!
//! A long-lived TCP service answering truth queries against a shared
//! incremental [`TdacSession`](tdac_core::TdacSession), typically
//! seeded from a `.tds` store via
//! [`TdacSession::start_store`](tdac_core::TdacSession::start_store).
//! The protocol is line-delimited JSON (one request per line, one
//! response per line) built from the workspace's typed query surface —
//! [`tdac_core::TruthQuery`] in, [`tdac_core::QueryResponse`] out.
//!
//! The serving contract, in one paragraph: reads coalesce against the
//! current *generation snapshot* (an immutable `Arc` swapped in after
//! each successful ingest) while ingests serialize through the session;
//! every request may carry a deadline that maps onto
//! [`td_obs::ExecutionLimits`], so an over-budget ingest produces a
//! *flagged* best-so-far generation ([`td_obs::Degradation`]) instead
//! of stalling the queue; admission is bounded — at most `max_inflight`
//! requests execute at once and the rest are rejected with a typed
//! overload error, never queued without bound; and every response
//! carries per-request [`td_obs::RunProfile`] counter deltas when
//! observation is on. See `docs/SERVING.md` for the full protocol.
//!
//! ```no_run
//! use td_algorithms::algorithm_by_name;
//! use td_model::{DatasetBuilder, Value};
//! use tdac_core::{RepartitionPolicy, TdacConfig, TdacSession, TruthQuery};
//! use td_serve::{Client, ServeConfig, Server};
//!
//! let mut b = DatasetBuilder::new();
//! b.claim("s1", "o", "a", Value::text("x")).unwrap();
//! b.claim("s2", "o", "a", Value::text("y")).unwrap();
//! let session = TdacSession::start(
//!     algorithm_by_name("majorityvote").unwrap(),
//!     TdacConfig::default(),
//!     RepartitionPolicy::Always,
//!     b.build(),
//! ).unwrap();
//!
//! let server = Server::bind("127.0.0.1:0", session, ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let response = client.query(TruthQuery::All, Some(1000)).unwrap();
//! println!("{:?}", response.body);
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    claims_to_batch, IngestAck, Request, RequestOp, Response, ResponseBody,
    ServerStats, WireClaim, WireError, WireErrorKind,
};
pub use server::{BoxedBase, ServeConfig, Server};

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::algorithm_by_name;
    use td_model::{DatasetBuilder, Value};
    use tdac_core::{RepartitionPolicy, TdacConfig, TdacSession, TruthQuery};

    fn session() -> TdacSession<BoxedBase> {
        let mut b = DatasetBuilder::new();
        for o in ["o1", "o2", "o3"] {
            for a in ["a1", "a2"] {
                b.claim("s1", o, a, Value::text("x")).unwrap();
                b.claim("s2", o, a, Value::text("x")).unwrap();
                b.claim("s3", o, a, Value::text("y")).unwrap();
            }
        }
        TdacSession::start(
            algorithm_by_name("majorityvote").unwrap(),
            TdacConfig::default(),
            RepartitionPolicy::Always,
            b.build(),
        )
        .unwrap()
    }

    fn serve() -> (Server, Client) {
        let server = Server::bind(
            "127.0.0.1:0",
            session(),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let client = Client::connect(server.local_addr()).unwrap();
        (server, client)
    }

    #[test]
    fn query_ingest_stats_round_trip() {
        let (mut server, mut client) = serve();

        let resp = client.query(TruthQuery::All, Some(5_000)).unwrap();
        assert_eq!(resp.generation, 0);
        let ResponseBody::Query(q) = resp.body else {
            panic!("expected query body, got {:?}", resp.body);
        };
        assert_eq!(q.predictions.len(), 6);
        assert_eq!(q.sources.len(), 3);
        assert!(q.degradation.is_none());
        assert!(q.profile.is_some(), "per-request metrics must be attached");

        let resp = client
            .ingest(
                vec![WireClaim {
                    source: "s4".into(),
                    object: "o1".into(),
                    attribute: "a1".into(),
                    value: Value::text("x"),
                }],
                Some(60_000),
            )
            .unwrap();
        assert_eq!(resp.generation, 1);
        let ResponseBody::Ingest(ack) = resp.body else {
            panic!("expected ingest ack, got {:?}", resp.body);
        };
        assert_eq!(ack.appended_claims, 1);
        assert!(ack.degradation.is_none());

        let resp = client.stats().unwrap();
        let ResponseBody::Stats(stats) = resp.body else {
            panic!("expected stats body, got {:?}", resp.body);
        };
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.n_sources, 4);
        assert_eq!(stats.n_claims, 19);

        server.shutdown();
    }

    #[test]
    fn unknown_entity_and_malformed_lines_are_typed_errors() {
        let (mut server, mut client) = serve();

        let resp = client
            .query(TruthQuery::Source("nobody".into()), None)
            .unwrap();
        let ResponseBody::Error(err) = resp.body else {
            panic!("expected error body, got {:?}", resp.body);
        };
        assert_eq!(err.kind, WireErrorKind::UnknownEntity);
        assert_eq!(err.source.as_deref(), Some("nobody"));

        let resp = client.send_raw(b"this is not json\n").unwrap();
        let ResponseBody::Error(err) = resp.body else {
            panic!("expected error body, got {:?}", resp.body);
        };
        assert_eq!(err.kind, WireErrorKind::BadRequest);

        // The connection survives bad lines: the next request works.
        let resp = client.query(TruthQuery::Object("o2".into()), None).unwrap();
        assert!(matches!(resp.body, ResponseBody::Query(_)));

        server.shutdown();
    }

    #[test]
    fn conflicting_batch_is_rejected_with_entity_names() {
        let (mut server, mut client) = serve();
        let resp = client
            .ingest(
                vec![WireClaim {
                    source: "s1".into(),
                    object: "o1".into(),
                    attribute: "a1".into(),
                    value: Value::text("contradiction"),
                }],
                None,
            )
            .unwrap();
        let ResponseBody::Error(err) = resp.body else {
            panic!("expected error body, got {:?}", resp.body);
        };
        assert_eq!(err.kind, WireErrorKind::RejectedBatch);
        assert_eq!(err.source.as_deref(), Some("s1"));
        assert_eq!(err.object.as_deref(), Some("o1"));
        assert_eq!(err.attribute.as_deref(), Some("a1"));
        // The dataset is unchanged and the server still answers.
        let resp = client.stats().unwrap();
        let ResponseBody::Stats(stats) = resp.body else {
            panic!("expected stats body");
        };
        assert_eq!(stats.generation, 0);
        assert_eq!(stats.n_claims, 18);
        server.shutdown();
    }

    #[test]
    fn zero_deadline_is_a_bad_request() {
        let (mut server, mut client) = serve();
        let resp = client.query(TruthQuery::All, Some(0)).unwrap();
        let ResponseBody::Error(err) = resp.body else {
            panic!("expected error body, got {:?}", resp.body);
        };
        assert_eq!(err.kind, WireErrorKind::BadRequest);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_is_clean() {
        let (mut server, _client) = serve();
        server.shutdown();
        server.shutdown();
        drop(server);
    }
}
