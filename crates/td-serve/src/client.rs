//! A minimal blocking client for the td-serve protocol.
//!
//! One TCP connection, synchronous request/response. `tdc query`, the
//! integration tests and the throughput bench all drive the server
//! through this type, so the wire framing lives in exactly one place
//! per direction.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tdac_core::TruthQuery;

use crate::protocol::{Request, RequestOp, Response, WireClaim};

/// Client-side failures: transport errors, or a response line that is
/// not valid protocol JSON (a server bug or a non-td-serve endpoint).
#[derive(Debug)]
pub enum ClientError {
    /// The underlying socket failed (including EOF mid-response).
    Io(std::io::Error),
    /// The server's bytes did not parse as a [`Response`].
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => {
                write!(f, "malformed server response: {msg}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            next_id: 0,
        })
    }

    /// Sends one request and blocks for its response. Ids are assigned
    /// sequentially per connection and verified on the way back.
    pub fn request(
        &mut self,
        op: RequestOp,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.next_id += 1;
        let request = Request {
            id: self.next_id,
            deadline_ms,
            op,
        };
        let mut line = serde_json::to_string(&request)
            .expect("protocol requests always serialize");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )));
        }
        let response: Response = serde_json::from_str(reply.trim())
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        if response.id != request.id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {}",
                response.id, request.id
            )));
        }
        Ok(response)
    }

    /// Sends a truth query.
    pub fn query(
        &mut self,
        query: TruthQuery,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.request(RequestOp::Query(query), deadline_ms)
    }

    /// Sends an ingest batch.
    pub fn ingest(
        &mut self,
        claims: Vec<WireClaim>,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.request(RequestOp::Ingest(claims), deadline_ms)
    }

    /// Requests server statistics.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(RequestOp::Stats, None)
    }

    /// Sends raw bytes (not necessarily valid protocol) and reads one
    /// response line back. Test hook for malformed-input coverage.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<Response, ClientError> {
        self.writer.write_all(bytes)?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )));
        }
        serde_json::from_str(reply.trim())
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }
}
