//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a plain TCP
//! stream. Requests are externally tagged by operation:
//!
//! ```text
//! {"id":1,"deadline_ms":250,"op":{"Query":{"Attribute":["o1","a1"]}}}
//! {"id":2,"op":{"Ingest":[{"source":"s9","object":"o1","attribute":"a1",
//!                          "value":{"t":"Text","v":"x"}}]}}
//! {"id":3,"op":"Stats"}
//! ```
//!
//! Responses echo the request `id`, carry the snapshot `generation`
//! they were answered against, and are tagged by body kind — `Query`,
//! `Ingest`, `Stats` or `Error`. Every failure is a typed
//! [`WireError`]; the server never answers a parseable request with
//! silence or a closed connection. See `docs/SERVING.md` for the full
//! contract (deadline semantics, admission control, degradation).

use serde::{Deserialize, Serialize};

use td_model::{ClaimBatch, ModelError, Value};
use td_obs::{Degradation, RunProfile};
use tdac_core::{QueryResponse, SessionError, TruthQuery};

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    #[serde(default)]
    pub id: u64,
    /// Per-request deadline in milliseconds, measured from the moment
    /// the server reads the line. `None` uses the server's default (if
    /// any); `Some(0)` is rejected as a bad request.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// The operation to perform.
    pub op: RequestOp,
}

/// The operation carried by a [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestOp {
    /// Answer a truth query against the current generation snapshot.
    Query(TruthQuery),
    /// Ingest a claim batch through the shared session, producing the
    /// next generation.
    Ingest(Vec<WireClaim>),
    /// Report server and dataset statistics.
    Stats,
}

/// One claim row of an ingest batch, name-addressed like
/// [`td_model::ClaimBatch::claim`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireClaim {
    /// Source name.
    pub source: String,
    /// Object name.
    pub object: String,
    /// Attribute name.
    pub attribute: String,
    /// The asserted value.
    pub value: Value,
}

/// Converts wire claim rows into a model-layer batch.
pub fn claims_to_batch(claims: &[WireClaim]) -> ClaimBatch {
    let mut batch = ClaimBatch::new();
    for c in claims {
        batch.claim(&c.source, &c.object, &c.attribute, c.value.clone());
    }
    batch
}

/// One server response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (0 when the request line could not
    /// be parsed far enough to recover one).
    pub id: u64,
    /// The dataset generation this response was computed against:
    /// the number of successfully ingested batches since the server
    /// started. Queries report the generation of the snapshot they
    /// read; ingests report the generation they *produced*.
    pub generation: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// The payload of a [`Response`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Answer to [`RequestOp::Query`].
    Query(QueryResponse),
    /// Acknowledgement of [`RequestOp::Ingest`].
    Ingest(IngestAck),
    /// Answer to [`RequestOp::Stats`].
    Stats(ServerStats),
    /// Any failure, typed.
    Error(WireError),
}

/// What an accepted ingest did. Mirrors the interesting parts of
/// [`tdac_core::IngestReport`], minus the full outcome (query for it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestAck {
    /// Claims actually appended (batch rows minus duplicates).
    pub appended_claims: usize,
    /// Attributes recomputed by this ingest.
    pub dirty_attributes: usize,
    /// Whether the k-sweep re-ran.
    pub repartitioned: bool,
    /// Whether vectors/distances were rebuilt from scratch.
    pub rebuilt: bool,
    /// Groups whose cached partial was reused verbatim.
    pub groups_reused: usize,
    /// Total groups in the new partition.
    pub groups_total: usize,
    /// `Some` when the ingest ran out of budget (deadline) and the new
    /// generation is best-so-far rather than complete. Never silent:
    /// a degraded generation is flagged here *and* on every query
    /// response answered from it.
    #[serde(default)]
    pub degradation: Option<Degradation>,
    /// Profile counter deltas for this ingest, when the session's
    /// observer is enabled.
    #[serde(default)]
    pub profile: Option<RunProfile>,
}

/// Server and dataset statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Current dataset generation (successful ingests since start).
    pub generation: u64,
    /// Requests currently admitted and executing.
    pub inflight: usize,
    /// The admission bound (`--max-inflight`).
    pub max_inflight: usize,
    /// Sources in the current snapshot.
    pub n_sources: usize,
    /// Objects in the current snapshot.
    pub n_objects: usize,
    /// Attributes in the current snapshot.
    pub n_attributes: usize,
    /// Claims in the current snapshot.
    pub n_claims: usize,
}

/// The kind of a [`WireError`] — stable, matchable, documented in
/// `docs/SERVING.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireErrorKind {
    /// Admission control rejected the request: `max_inflight` requests
    /// were already executing. Back off and retry.
    Overloaded,
    /// The request's deadline expired before the server could start
    /// (or finish admitting) the work. Nothing was changed.
    DeadlineExceeded,
    /// The request line was not valid protocol JSON, or carried an
    /// invalid field (e.g. `deadline_ms: 0`).
    BadRequest,
    /// A query named a source/object/attribute the dataset does not
    /// have; the offending name is in the matching field.
    UnknownEntity,
    /// An ingest batch was rejected by the model layer (e.g. a source
    /// contradicting its own earlier claim); the dataset is unchanged
    /// and the offending entity names are in the matching fields.
    RejectedBatch,
    /// The dataset (or the batch's effect on it) is degenerate for
    /// truth discovery.
    Degenerate,
    /// The pipeline failed internally (isolated worker panic, invalid
    /// config). The server stays up; the dataset may have kept the
    /// batch — check `Stats`.
    Internal,
}

/// A typed wire error. `source` / `object` / `attribute` name the
/// offending entities when the underlying error identifies them —
/// the serve-path contract for `Dataset::validate_for_discovery` and
/// friends (a client must never have to parse `message` to learn
/// *which* entity was at fault).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// The stable error kind.
    pub kind: WireErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Offending source name, when identified.
    #[serde(default)]
    pub source: Option<String>,
    /// Offending object name, when identified.
    #[serde(default)]
    pub object: Option<String>,
    /// Offending attribute name, when identified.
    #[serde(default)]
    pub attribute: Option<String>,
}

impl WireError {
    /// A bare error with no entity attribution.
    pub fn new(kind: WireErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
            source: None,
            object: None,
            attribute: None,
        }
    }

    /// Maps a model-layer error onto the wire, hoisting every entity
    /// name the typed variant carries into the structured fields.
    pub fn from_model(e: &ModelError) -> Self {
        let mut w = WireError::new(WireErrorKind::Internal, e.to_string());
        match e {
            ModelError::ConflictingClaim {
                source,
                object,
                attribute,
            } => {
                w.kind = WireErrorKind::RejectedBatch;
                w.source = Some(source.clone());
                w.object = Some(object.clone());
                w.attribute = Some(attribute.clone());
            }
            ModelError::UnknownEntity { kind, name } => {
                w.kind = WireErrorKind::UnknownEntity;
                match *kind {
                    "source" => w.source = Some(name.clone()),
                    "object" => w.object = Some(name.clone()),
                    "attribute" => w.attribute = Some(name.clone()),
                    _ => {}
                }
            }
            ModelError::TruthForUnknownCell { object, attribute } => {
                w.kind = WireErrorKind::RejectedBatch;
                w.object = Some(object.clone());
                w.attribute = Some(attribute.clone());
            }
            ModelError::DegenerateDataset { lone_source, .. } => {
                w.kind = WireErrorKind::Degenerate;
                w.source = lone_source.clone();
            }
            ModelError::Parse(_) => {
                w.kind = WireErrorKind::BadRequest;
            }
        }
        w
    }

    /// Maps a session-layer error onto the wire: model rejections keep
    /// their entity attribution, pipeline failures become `Internal`.
    pub fn from_session(e: &SessionError) -> Self {
        match e {
            SessionError::Model(m) => WireError::from_model(m),
            SessionError::Tdac(t) => {
                WireError::new(WireErrorKind::Internal, t.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 7,
            deadline_ms: Some(250),
            op: RequestOp::Query(TruthQuery::Attribute("o1".into(), "a1".into())),
        };
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'));
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_id_and_deadline_default() {
        let req: Request =
            serde_json::from_str(r#"{"op":"Stats"}"#).unwrap();
        assert_eq!(req.id, 0);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.op, RequestOp::Stats);
    }

    #[test]
    fn ingest_request_parses_claims() {
        let req: Request = serde_json::from_str(
            r#"{"id":2,"op":{"Ingest":[
                {"source":"s9","object":"o1","attribute":"a1",
                 "value":{"t":"Text","v":"x"}}]}}"#,
        )
        .unwrap();
        let RequestOp::Ingest(claims) = &req.op else {
            panic!("expected ingest, got {:?}", req.op);
        };
        assert_eq!(claims.len(), 1);
        assert_eq!(claims[0].value, Value::text("x"));
        let batch = claims_to_batch(claims);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn conflicting_claim_names_all_three_entities() {
        let w = WireError::from_model(&ModelError::ConflictingClaim {
            source: "s1".into(),
            object: "o1".into(),
            attribute: "a1".into(),
        });
        assert_eq!(w.kind, WireErrorKind::RejectedBatch);
        assert_eq!(w.source.as_deref(), Some("s1"));
        assert_eq!(w.object.as_deref(), Some("o1"));
        assert_eq!(w.attribute.as_deref(), Some("a1"));
    }

    #[test]
    fn unknown_entity_fills_the_matching_field() {
        for (kind, field) in [("source", 0), ("object", 1), ("attribute", 2)] {
            let w = WireError::from_model(&ModelError::UnknownEntity {
                kind,
                name: "ghost".into(),
            });
            assert_eq!(w.kind, WireErrorKind::UnknownEntity);
            let fields = [&w.source, &w.object, &w.attribute];
            for (i, f) in fields.iter().enumerate() {
                assert_eq!(f.as_deref(), (i == field).then_some("ghost"));
            }
        }
    }

    #[test]
    fn degenerate_error_carries_the_lone_source() {
        let w = WireError::from_model(&ModelError::DegenerateDataset {
            n_sources: 1,
            n_objects: 3,
            n_claims: 5,
            lone_source: Some("only-feed".into()),
        });
        assert_eq!(w.kind, WireErrorKind::Degenerate);
        assert_eq!(w.source.as_deref(), Some("only-feed"));
        assert!(w.message.contains("only-feed"));
    }

    #[test]
    fn error_response_round_trips() {
        let resp = Response {
            id: 3,
            generation: 4,
            body: ResponseBody::Error(WireError::new(
                WireErrorKind::Overloaded,
                "admission queue full",
            )),
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.generation, 4);
        let ResponseBody::Error(w) = back.body else {
            panic!("expected error body");
        };
        assert_eq!(w.kind, WireErrorKind::Overloaded);
    }
}
