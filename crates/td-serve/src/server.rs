//! The thread-per-core TCP server.
//!
//! N worker threads (default: one per core) each own a clone of the
//! listening socket and run a blocking accept loop — no async runtime,
//! no cross-thread connection handoff. A connection is served by the
//! worker that accepted it, one line-delimited request at a time.
//!
//! Three pieces of shared state implement the serving contract:
//!
//! * an **admission gate** — an atomic in-flight counter bounded by
//!   [`ServeConfig::max_inflight`]; a request that would exceed it is
//!   rejected immediately with [`WireErrorKind::Overloaded`] instead of
//!   queuing without bound;
//! * a **generation snapshot** — an `RwLock<Arc<Snapshot>>` holding the
//!   dataset + outcome of the latest successful ingest. Queries clone
//!   the `Arc` (the lock is held only for the clone) and answer lock-free
//!   against it, so any number of concurrent readers coalesce on one
//!   immutable snapshot;
//! * the **session mutex** — ingests serialize through the shared
//!   [`TdacSession`]; each ingest maps its request's remaining deadline
//!   onto [`ExecutionLimits::with_deadline`] before running, so a slow
//!   batch degrades (flagged, best-so-far) rather than stalling the
//!   queue indefinitely.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use td_algorithms::TruthDiscovery;
use td_model::Dataset;
use td_obs::{ExecutionLimits, Observer};
use tdac_core::{TdacOutcome, TdacSession};

use crate::protocol::{
    claims_to_batch, IngestAck, Request, RequestOp, Response, ResponseBody,
    ServerStats, WireError, WireErrorKind,
};

/// The base-algorithm type the server hosts: any registered algorithm,
/// boxed ([`td_algorithms::algorithm_by_name`] produces exactly this).
pub type BoxedBase = Box<dyn TruthDiscovery + Send + Sync>;

/// How long a blocked connection read waits before re-checking the
/// shutdown flag. Bounds shutdown latency for idle connections.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests admitted concurrently; the `--max-inflight`
    /// bound of the admission gate. Must be at least 1.
    pub max_inflight: usize,
    /// Accept-loop worker threads (thread-per-core by default).
    pub workers: usize,
    /// Deadline applied to requests that carry none. `None` means such
    /// requests run unbounded (minus whatever limits the session's own
    /// config imposes).
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: 64,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            default_deadline_ms: None,
        }
    }
}

/// The immutable state one generation's queries answer against.
struct Snapshot {
    generation: u64,
    dataset: Dataset,
    outcome: TdacOutcome,
}

/// State shared by every worker.
struct Shared {
    session: Mutex<TdacSession<BoxedBase>>,
    snapshot: RwLock<Arc<Snapshot>>,
    inflight: AtomicUsize,
    max_inflight: usize,
    default_deadline_ms: Option<u64>,
    /// The session config's own limits, the base every per-request
    /// deadline is layered onto.
    base_limits: ExecutionLimits,
    shutdown: AtomicBool,
    generation: AtomicU64,
}

/// RAII admission slot: releases the in-flight count on drop, even if
/// request handling panics.
struct AdmissionGuard<'a>(&'a AtomicUsize);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Shared {
    /// Tries to claim an admission slot.
    fn admit(&self) -> Option<AdmissionGuard<'_>> {
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if current >= self.max_inflight {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(AdmissionGuard(&self.inflight)),
                Err(actual) => current = actual,
            }
        }
    }

    fn current_snapshot(&self) -> Arc<Snapshot> {
        self.snapshot
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn publish(&self, snapshot: Snapshot) {
        *self.snapshot.write().unwrap_or_else(|e| e.into_inner()) =
            Arc::new(snapshot);
    }
}

/// A running server: workers accepting on a shared listener. Dropping
/// the handle shuts the server down (see [`Server::shutdown`]).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr`, seeds the generation-0 snapshot from the session's
    /// current outcome, and spawns the worker threads.
    ///
    /// # Errors
    /// Propagates socket errors; rejects `max_inflight == 0` and
    /// `workers == 0` as [`ErrorKind::InvalidInput`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: TdacSession<BoxedBase>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        if config.max_inflight == 0 {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "max_inflight must be at least 1",
            ));
        }
        if config.workers == 0 {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "workers must be at least 1",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let snapshot = Snapshot {
            generation: 0,
            dataset: session.dataset().clone(),
            outcome: session.outcome().clone(),
        };
        let base_limits = session.config().limits.clone();
        let shared = Arc::new(Shared {
            session: Mutex::new(session),
            snapshot: RwLock::new(Arc::new(snapshot)),
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight,
            default_deadline_ms: config.default_deadline_ms,
            base_limits,
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let listener = listener.try_clone()?;
                Ok(std::thread::Builder::new()
                    .name(format!("td-serve-{i}"))
                    .spawn(move || accept_loop(listener, shared))
                    .expect("spawning a serve worker thread"))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            shared,
            local_addr,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The current dataset generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// Signals every worker to stop, unblocks their accept calls, and
    /// joins them. Idempotent. In-flight requests finish first (their
    /// connections observe the flag at the next read poll).
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // One wake-up connection per worker: accept() has no timeout,
        // so each blocked worker needs a nudge to re-check the flag.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.local_addr);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Blocks until shutdown is requested from another thread (or
    /// forever). Used by `tdc serve` to park the main thread.
    pub fn join(mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = listener.accept();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream {
            Ok((stream, _)) => serve_connection(stream, &shared),
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): brief pause
                // instead of a hot error loop.
                std::thread::sleep(READ_POLL);
            }
        }
    }
}

/// Serves one connection: reads request lines, writes response lines,
/// until the client closes, a write fails, or the server shuts down.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            // EOF: serve a final unterminated line, then close.
            Ok(0) => return,
            Ok(_) if !line.ends_with(b"\n") => {
                let _ = respond(&mut writer, handle_line(shared, &line));
                return;
            }
            Ok(_) => {
                let response = handle_line(shared, &line);
                line.clear();
                if respond(&mut writer, response).is_err() {
                    return;
                }
            }
            // Read timeout: poll the shutdown flag, keep accumulated
            // partial-line bytes in `line` and continue reading.
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn respond(writer: &mut TcpStream, response: Response) -> std::io::Result<()> {
    let mut out = serde_json::to_string(&response)
        .expect("protocol responses always serialize");
    out.push('\n');
    writer.write_all(out.as_bytes())
}

/// Parses and executes one request line. Every outcome — including a
/// line that is not valid JSON — is a [`Response`].
fn handle_line(shared: &Shared, line: &[u8]) -> Response {
    let received = Instant::now();
    let text = match std::str::from_utf8(line) {
        Ok(t) => t.trim(),
        Err(_) => {
            return error_response(
                shared,
                0,
                WireError::new(WireErrorKind::BadRequest, "request is not UTF-8"),
            )
        }
    };
    if text.is_empty() {
        return error_response(
            shared,
            0,
            WireError::new(WireErrorKind::BadRequest, "empty request line"),
        );
    }
    let request: Request = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => {
            return error_response(
                shared,
                0,
                WireError::new(
                    WireErrorKind::BadRequest,
                    format!("malformed request: {e}"),
                ),
            )
        }
    };
    let id = request.id;

    // Admission control: claim a slot or reject immediately — the
    // "never unbounded queuing" half of the contract.
    let Some(_guard) = shared.admit() else {
        return error_response(
            shared,
            id,
            WireError::new(
                WireErrorKind::Overloaded,
                format!(
                    "admission gate full: {} requests in flight",
                    shared.max_inflight
                ),
            ),
        );
    };

    let deadline_ms = request.deadline_ms.or(shared.default_deadline_ms);
    if deadline_ms == Some(0) {
        return error_response(
            shared,
            id,
            WireError::new(
                WireErrorKind::BadRequest,
                "deadline_ms must be at least 1 (omit it for no deadline)",
            ),
        );
    }
    let deadline = deadline_ms.map(Duration::from_millis);

    match request.op {
        RequestOp::Query(query) => {
            handle_query(shared, id, &query, received, deadline)
        }
        RequestOp::Ingest(claims) => {
            handle_ingest(shared, id, &claims, received, deadline)
        }
        RequestOp::Stats => handle_stats(shared, id),
    }
}

fn handle_query(
    shared: &Shared,
    id: u64,
    query: &tdac_core::TruthQuery,
    received: Instant,
    deadline: Option<Duration>,
) -> Response {
    if let Some(d) = deadline {
        if received.elapsed() >= d {
            return error_response(
                shared,
                id,
                WireError::new(
                    WireErrorKind::DeadlineExceeded,
                    "deadline expired before the query started",
                ),
            );
        }
    }
    // Clone the Arc under the read lock, answer outside it: concurrent
    // queries coalesce on the same immutable generation snapshot.
    let snapshot = shared.current_snapshot();
    let obs = Observer::enabled();
    let answered = {
        let _span = obs.span("serve/query");
        query.answer(&snapshot.dataset, &snapshot.outcome)
    };
    match answered {
        Ok(mut resp) => {
            // The outcome-level profile describes the ingest that built
            // this generation; per-request metrics are this query's own
            // deltas (the `serve/query` span and its counters).
            resp.profile = obs.profile();
            Response {
                id,
                generation: snapshot.generation,
                body: ResponseBody::Query(resp),
            }
        }
        Err(e) => Response {
            id,
            generation: snapshot.generation,
            body: ResponseBody::Error(WireError::from_model(&e)),
        },
    }
}

fn handle_ingest(
    shared: &Shared,
    id: u64,
    claims: &[crate::protocol::WireClaim],
    received: Instant,
    deadline: Option<Duration>,
) -> Response {
    if claims.is_empty() {
        return error_response(
            shared,
            id,
            WireError::new(WireErrorKind::BadRequest, "empty ingest batch"),
        );
    }
    let batch = claims_to_batch(claims);
    let mut session = shared.session.lock().unwrap_or_else(|e| e.into_inner());
    // Re-check the deadline *after* acquiring the session: time queued
    // behind earlier ingests counts against this request.
    let limits = match deadline {
        Some(d) => {
            let Some(remaining) = d.checked_sub(received.elapsed()) else {
                return error_response(
                    shared,
                    id,
                    WireError::new(
                        WireErrorKind::DeadlineExceeded,
                        "deadline expired while queued for the session",
                    ),
                );
            };
            // `with_deadline` rounds sub-millisecond remainders up to
            // 1ms, so a nearly-expired request still runs (and then
            // degrades) instead of tripping limit validation.
            shared.base_limits.clone().with_deadline(remaining)
        }
        None => shared.base_limits.clone(),
    };
    if let Err(e) = session.set_limits(limits) {
        return error_response(
            shared,
            id,
            WireError::new(WireErrorKind::Internal, e.to_string()),
        );
    }
    match session.ingest(&batch) {
        Ok(report) => {
            let generation =
                shared.generation.fetch_add(1, Ordering::AcqRel) + 1;
            shared.publish(Snapshot {
                generation,
                dataset: session.dataset().clone(),
                outcome: report.outcome.clone(),
            });
            drop(session);
            Response {
                id,
                generation,
                body: ResponseBody::Ingest(IngestAck {
                    appended_claims: report.summary.appended_claims,
                    dirty_attributes: report.dirty_attributes.len(),
                    repartitioned: report.repartitioned,
                    rebuilt: report.rebuilt,
                    groups_reused: report.groups_reused,
                    groups_total: report.groups_total,
                    degradation: report.outcome.degradation.clone(),
                    profile: report.outcome.profile.clone(),
                }),
            }
        }
        Err(e) => {
            drop(session);
            error_response(shared, id, WireError::from_session(&e))
        }
    }
}

fn handle_stats(shared: &Shared, id: u64) -> Response {
    let snapshot = shared.current_snapshot();
    Response {
        id,
        generation: snapshot.generation,
        body: ResponseBody::Stats(ServerStats {
            generation: snapshot.generation,
            inflight: shared.inflight.load(Ordering::Acquire),
            max_inflight: shared.max_inflight,
            n_sources: snapshot.dataset.n_sources(),
            n_objects: snapshot.dataset.n_objects(),
            n_attributes: snapshot.dataset.n_attributes(),
            n_claims: snapshot.dataset.n_claims(),
        }),
    }
}

fn error_response(shared: &Shared, id: u64, error: WireError) -> Response {
    Response {
        id,
        generation: shared.generation.load(Ordering::Acquire),
        body: ResponseBody::Error(error),
    }
}
