//! Typed load/save failures. A hostile `.tds` file can produce any of
//! these, but never a panic and never an allocation sized by
//! unvalidated input.

use std::error::Error;
use std::fmt;

use td_model::ModelError;

/// Everything that can go wrong opening, validating, or decoding a
/// `.tds` store. Every variant that concerns file contents names the
/// section it was detected in, so corruption reports point at bytes,
/// not at symptoms.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The underlying file could not be read or written. The original
    /// [`std::io::Error`] is flattened to its kind and message so the
    /// error stays `Clone + PartialEq` (the workspace-level `TdError`
    /// carries it by value).
    Io {
        /// The i/o error kind as reported by the OS.
        kind: std::io::ErrorKind,
        /// The rendered i/o error message.
        detail: String,
    },
    /// The file is shorter than the fixed header (or its section
    /// table): nothing past this point is trustworthy.
    TruncatedHeader {
        /// Actual file length in bytes.
        len: usize,
    },
    /// The first four bytes are not `TDS1`.
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The header declares a format version this build cannot decode.
    UnsupportedVersion {
        /// The version field as read.
        found: u32,
    },
    /// A section's FNV-1a checksum does not match its payload.
    ChecksumMismatch {
        /// Section name (`"sources"`, `"claims"`, …).
        section: &'static str,
    },
    /// A section's declared `[offset, offset+len)` range escapes the
    /// file (or overflows).
    SectionOutOfBounds {
        /// Section name, or `"header"` for the section table itself.
        section: &'static str,
    },
    /// A section's payload is internally inconsistent: counts that
    /// don't fit the byte length, duplicate interned names, ids out of
    /// range, non-canonical packed words, …
    Corrupt {
        /// Section name the inconsistency was detected in.
        section: &'static str,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The decoded parts were well-formed bytes but do not assemble
    /// into a valid [`td_model::Dataset`].
    Model(ModelError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { detail, .. } => write!(f, "i/o: {detail}"),
            StoreError::TruncatedHeader { len } => {
                write!(f, "truncated header: file is only {len} bytes")
            }
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected \"TDS1\")")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found} (this build reads version 1)")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            StoreError::SectionOutOfBounds { section } => {
                write!(f, "section {section:?} extends past the end of the file")
            }
            StoreError::Corrupt { section, detail } => {
                write!(f, "corrupt section {section:?}: {detail}")
            }
            StoreError::Model(e) => write!(f, "decoded dataset is invalid: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        StoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_section() {
        let e = StoreError::ChecksumMismatch { section: "claims" };
        assert!(e.to_string().contains("claims"));
        let e = StoreError::Corrupt {
            section: "values",
            detail: "NaN float".into(),
        };
        assert!(e.to_string().contains("values") && e.to_string().contains("NaN"));
        let e = StoreError::BadMagic { found: *b"NOPE" };
        assert!(e.to_string().contains("TDS1"));
    }

    #[test]
    fn implements_std_error_with_sources() {
        let io = StoreError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert_eq!(
            io,
            StoreError::Io {
                kind: std::io::ErrorKind::NotFound,
                detail: "gone".into()
            }
        );
        assert!(io.to_string().contains("gone"));
        let model = StoreError::from(ModelError::Parse("bad".into()));
        assert!(model.source().is_some());
        assert!(StoreError::TruncatedHeader { len: 3 }.source().is_none());
    }
}
