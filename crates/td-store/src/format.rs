//! Byte-level plumbing for the `.tds` format: the little-endian
//! writer, the 8-byte-aligned load buffer, bounds-checked cursors, and
//! the FNV-1a section checksum.
//!
//! Everything on the read side is defensive: every length and offset is
//! validated against the bytes actually present *before* any
//! allocation, so a hostile file can produce a [`StoreError`] but never
//! a panic or an attacker-sized `Vec`.

use crate::error::StoreError;

/// Bytes per alignment unit: every section (and every packed word run
/// inside the truth-page section) starts on an 8-byte boundary so the
/// loader can hand out `&[u64]` views without copying.
pub const ALIGN: usize = 8;

/// FNV-1a 64-bit over a byte slice — the per-section checksum. Chosen
/// for being dependency-free and fully specified, not for cryptographic
/// strength; the checksum catches corruption, not adversaries (the
/// decoder's validation handles those).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian append-only byte writer with explicit 8-byte padding.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far (also the offset of the next write).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    /// Pads with zero bytes up to the next multiple of [`ALIGN`].
    pub fn align8(&mut self) {
        while self.buf.len() % ALIGN != 0 {
            self.buf.push(0);
        }
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a run of little-endian `u64` words.
    pub fn put_words(&mut self, words: &[u64]) {
        for &w in words {
            self.put_u64(w);
        }
    }

    /// Overwrites `ALIGN`-many… no: overwrites bytes at `offset` (used
    /// to back-patch the section table once payload offsets are known).
    pub fn patch(&mut self, offset: usize, bytes: &[u8]) {
        self.buf[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Consumes the writer, yielding the finished byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// The whole file, loaded into an 8-byte-aligned allocation.
///
/// The backing storage is a `Vec<u64>`, so the buffer's base address is
/// always 8-byte aligned without any `unsafe`: a section whose file
/// offset is a multiple of 8 can be viewed as a plain subslice of the
/// word vector ([`AlignedBuf::word_slice`]) — the zero-copy path. Byte
/// granular reads extract from the words arithmetically.
///
/// The format is little-endian on disk; on a little-endian target the
/// in-memory words *are* the on-disk words, which is what makes the
/// subslice view exact. (On a big-endian target [`AlignedBuf::word_slice`]
/// reports misalignment so callers take the decode fallback — see
/// `docs/STORAGE.md`.)
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Copies `bytes` into a fresh aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(ALIGN)];
        for (i, &b) in bytes.iter().enumerate() {
            words[i / ALIGN] |= u64::from(b) << ((i % ALIGN) * 8);
        }
        Self {
            words,
            len: bytes.len(),
        }
    }

    /// Total byte length of the file.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file was empty.
    /// Byte at `i`, or `None` past the end.
    #[inline]
    pub fn byte(&self, i: usize) -> Option<u8> {
        if i >= self.len {
            return None;
        }
        Some((self.words[i / ALIGN] >> ((i % ALIGN) * 8)) as u8)
    }

    /// A borrowed `&[u64]` view of `n_words` words starting at byte
    /// `offset` — **no copy** — when the offset is 8-byte aligned, the
    /// range is in bounds, and the target is little-endian. `None`
    /// means "take the decode fallback", never "error".
    pub fn word_slice(&self, offset: usize, n_words: usize) -> Option<&[u64]> {
        if cfg!(target_endian = "big") || offset % ALIGN != 0 {
            return None;
        }
        let start = offset / ALIGN;
        let end = start.checked_add(n_words)?;
        let byte_end = offset.checked_add(n_words.checked_mul(ALIGN)?)?;
        if byte_end > self.len || end > self.words.len() {
            return None;
        }
        Some(&self.words[start..end])
    }

    /// Copies the byte range into a fresh vector (bounds-checked).
    pub fn copy_bytes(&self, offset: usize, len: usize) -> Option<Vec<u8>> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        Some((offset..end).map(|i| self.byte(i).unwrap_or(0)).collect())
    }

    /// FNV-1a over the byte range (bounds-checked).
    pub fn checksum(&self, offset: usize, len: usize) -> Option<u64> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in offset..end {
            h ^= u64::from(self.byte(i).unwrap_or(0));
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Some(h)
    }
}

/// Bounds-checked sequential reader over one section of an
/// [`AlignedBuf`]. Every read that would escape the section yields a
/// [`StoreError::Corrupt`] naming the section.
pub struct SectionReader<'a> {
    buf: &'a AlignedBuf,
    /// Absolute byte offset of the next read.
    pos: usize,
    /// Absolute byte offset one past the section's last byte.
    end: usize,
    /// Section name for error reporting.
    pub section: &'static str,
}

impl<'a> SectionReader<'a> {
    /// A reader over `[offset, offset + len)` of `buf`. The range is
    /// assumed already validated against the file length (the section
    /// table check does that).
    pub fn new(buf: &'a AlignedBuf, offset: usize, len: usize, section: &'static str) -> Self {
        Self {
            buf,
            pos: offset,
            end: offset + len,
            section,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            section: self.section,
            detail: detail.into(),
        }
    }

    /// Bytes left in the section.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Skips zero padding up to the next multiple of [`ALIGN`].
    pub fn align8(&mut self) -> Result<(), StoreError> {
        while self.pos % ALIGN != 0 {
            let b = self.read_u8()?;
            if b != 0 {
                return Err(self.corrupt("non-zero padding byte"));
            }
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, StoreError> {
        if self.pos >= self.end {
            return Err(self.corrupt("unexpected end of section"));
        }
        let b = self.buf.byte(self.pos).ok_or_else(|| self.corrupt("read past file end"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, StoreError> {
        let mut v = 0u32;
        for i in 0..4 {
            v |= u32::from(self.read_u8()?) << (i * 8);
        }
        Ok(v)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, StoreError> {
        let mut v = 0u64;
        for i in 0..8 {
            v |= u64::from(self.read_u8()?) << (i * 8);
        }
        Ok(v)
    }

    /// Reads `len` raw bytes. `len` is checked against the section
    /// remainder *before* allocating.
    pub fn read_bytes(&mut self, len: usize) -> Result<Vec<u8>, StoreError> {
        if len > self.remaining() {
            return Err(self.corrupt(format!(
                "declared byte run of {len} exceeds the {} bytes left in the section",
                self.remaining()
            )));
        }
        let out = self
            .buf
            .copy_bytes(self.pos, len)
            .ok_or_else(|| self.corrupt("read past file end"))?;
        self.pos += len;
        Ok(out)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn read_string(&mut self) -> Result<String, StoreError> {
        let len = self.read_u32()? as usize;
        let bytes = self.read_bytes(len)?;
        String::from_utf8(bytes).map_err(|_| self.corrupt("non-UTF-8 string"))
    }

    /// Reads `n_words` little-endian `u64` words. Prefers the aligned
    /// zero-copy view (reported via `zero_copy`), falling back to a
    /// word-by-word decode on misalignment. `n_words` is validated
    /// against the section remainder before any allocation.
    pub fn read_words(&mut self, n_words: usize, zero_copy: &mut bool) -> Result<Vec<u64>, StoreError> {
        let bytes = n_words
            .checked_mul(ALIGN)
            .ok_or_else(|| self.corrupt("word count overflows"))?;
        if bytes > self.remaining() {
            return Err(self.corrupt(format!(
                "declared word run of {n_words} words exceeds the {} bytes left in the section",
                self.remaining()
            )));
        }
        if let Some(view) = self.buf.word_slice(self.pos, n_words) {
            *zero_copy = true;
            let out = view.to_vec();
            self.pos += bytes;
            return Ok(out);
        }
        let mut out = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            out.push(self.read_u64()?);
        }
        Ok(out)
    }

    /// Checks the section was consumed exactly.
    pub fn expect_exhausted(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        w.put_u8(0xAB);
        w.align8();
        w.put_words(&[u64::MAX, 42]);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len() % ALIGN, 0);

        let buf = AlignedBuf::from_bytes(&bytes);
        let mut r = SectionReader::new(&buf, 0, bytes.len(), "test");
        assert_eq!(r.read_u32().unwrap(), 7);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        r.align8().unwrap();
        let mut zc = false;
        assert_eq!(r.read_words(2, &mut zc).unwrap(), vec![u64::MAX, 42]);
        assert!(zc, "aligned word run should be a zero-copy view");
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn misaligned_words_fall_back_to_decode() {
        let mut w = ByteWriter::new();
        w.put_u32(0); // 4-byte prefix => words start misaligned
        w.put_words(&[0x0102_0304_0506_0708]);
        let bytes = w.into_bytes();
        let buf = AlignedBuf::from_bytes(&bytes);
        let mut r = SectionReader::new(&buf, 0, bytes.len(), "test");
        r.read_u32().unwrap();
        let mut zc = false;
        assert_eq!(r.read_words(1, &mut zc).unwrap(), vec![0x0102_0304_0506_0708]);
        assert!(!zc, "misaligned run must decode, not view");
    }

    #[test]
    fn oversized_declared_lengths_error_before_allocating() {
        let buf = AlignedBuf::from_bytes(&[0xFF; 16]);
        let mut r = SectionReader::new(&buf, 0, 16, "test");
        // u32::MAX-length byte run: must error, not try to allocate 4 GiB.
        assert!(r.read_bytes(u32::MAX as usize).is_err());
        let mut zc = false;
        assert!(r.read_words(usize::MAX / 2, &mut zc).is_err());
    }

    #[test]
    fn checksum_over_subrange_matches_slice_fnv() {
        let bytes: Vec<u8> = (0..64u8).collect();
        let buf = AlignedBuf::from_bytes(&bytes);
        assert_eq!(buf.checksum(5, 20), Some(fnv1a(&bytes[5..25])));
        assert_eq!(buf.checksum(60, 10), None, "range past end");
    }
}
