#![warn(missing_docs)]

//! # td-store — the persistent `.tds` binary dataset store
//!
//! An interned, memory-mappable columnar format for truth-discovery
//! datasets, so repeated runs and stream restarts skip the dataset
//! build phase entirely. One `.tds` file holds:
//!
//! * the three **interner tables** (sources, objects, attributes) and
//!   the **value table**, preserving ids exactly;
//! * the **claim vector**, 16 bytes per claim, already in the canonical
//!   `(attribute, object, source)` sort;
//! * optional **truth-vector pages**: the Eq. 1 attribute truth vectors
//!   of a named base algorithm, stored *already bit-packed in
//!   [`BitMatrix`] word layout* together with the reference
//!   [`TruthResult`] that produced them, so `tdac_core` can skip the
//!   whole reference run and rebuild its vectors without a scatter
//!   pass.
//!
//! The file layout is a fixed header (magic `TDS1`, version, section
//! table with per-section FNV-1a checksums) followed by 8-byte-aligned
//! sections — see `docs/STORAGE.md` for the byte-level diagram. The
//! loader reads the file into an 8-byte-aligned buffer and hands out
//! packed word runs as **zero-copy `&[u64]` views** when aligned
//! (bumping [`Counter::ZeroCopyLoads`]), falling back to a word-by-word
//! decode on misalignment rather than erroring.
//!
//! Every failure is a typed [`StoreError`] naming the offending
//! section; hostile bytes can never panic the loader or provoke an
//! allocation sized by unvalidated input (td-verify's corruption
//! matrix gates this).
//!
//! ```
//! use td_model::{DatasetBuilder, Value};
//! use td_store::DatasetStore;
//!
//! let mut b = DatasetBuilder::new();
//! b.claim("s1", "o", "a", Value::int(1)).unwrap();
//! b.claim("s2", "o", "a", Value::int(2)).unwrap();
//! let store = DatasetStore::new(b.build());
//! let bytes = store.to_bytes();
//! let back = DatasetStore::from_bytes(&bytes).unwrap();
//! assert_eq!(back.dataset.n_claims(), 2);
//! assert_eq!(bytes, back.to_bytes(), "byte-stable round trip");
//! ```

use std::path::Path;

use clustering::BitMatrix;
use td_algorithms::TruthResult;
use td_model::{AttributeId, Claim, Dataset, Interner, ObjectId, SourceId, Value, ValueId};
use td_obs::{Counter, Observer};

mod error;
mod format;

pub use error::StoreError;
pub use format::fnv1a;

use format::{AlignedBuf, ByteWriter, SectionReader};

/// The four magic bytes opening every `.tds` file.
pub const MAGIC: [u8; 4] = *b"TDS1";

/// The (only) format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Hard cap on the section count a header may declare. Version 1
/// writes exactly [`SECTION_NAMES`]`.len()` sections; the cap bounds
/// the table allocation for hostile headers.
pub const MAX_SECTIONS: u32 = 16;

/// Section kinds in file order: `sources`, `objects`, `attributes`,
/// `values`, `claims`, `truth_pages` (kind = index + 1).
pub const SECTION_NAMES: [&str; 6] =
    ["sources", "objects", "attributes", "values", "claims", "truth_pages"];

const K_SOURCES: u32 = 1;
const K_OBJECTS: u32 = 2;
const K_ATTRIBUTES: u32 = 3;
const K_VALUES: u32 = 4;
const K_CLAIMS: u32 = 5;
const K_TRUTH_PAGES: u32 = 6;

fn section_name(kind: u32) -> Option<&'static str> {
    match kind {
        K_SOURCES => Some("sources"),
        K_OBJECTS => Some("objects"),
        K_ATTRIBUTES => Some("attributes"),
        K_VALUES => Some("values"),
        K_CLAIMS => Some("claims"),
        K_TRUTH_PAGES => Some("truth_pages"),
        _ => None,
    }
}

/// One persisted truth-vector page: the packed Eq. 1 attribute truth
/// vectors a named base algorithm produced over the stored dataset,
/// plus the reference [`TruthResult`] behind them. Loading a page lets
/// `tdac_core` skip the reference run *and* the scatter pass — the
/// expensive front half of every TD-AC invocation.
#[derive(Debug, Clone)]
pub struct TruthPage {
    /// Base-algorithm name ([`td_algorithms::TruthDiscovery::name`])
    /// the page was computed with.
    pub algorithm: String,
    /// Whether the page holds missing-aware (masked) vectors; masked
    /// pages carry validity words alongside the value words.
    pub masked: bool,
    /// The packed truth vectors — one row per attribute, one column
    /// per `(object, source)` pair.
    pub matrix: BitMatrix,
    /// The reference run that produced the vectors.
    pub reference: TruthResult,
}

/// A dataset (plus any truth-vector pages) with `.tds` save/load.
///
/// Saving is deterministic: the same store always produces the same
/// bytes (`save → load → save` is byte-stable), which is what lets
/// td-verify commit a golden `.tds` fixture.
#[derive(Debug, Clone)]
pub struct DatasetStore {
    /// The stored dataset.
    pub dataset: Dataset,
    /// Truth-vector pages, keyed by `(algorithm, masked)`.
    pub pages: Vec<TruthPage>,
}

impl DatasetStore {
    /// Wraps a dataset with no truth-vector pages.
    pub fn new(dataset: Dataset) -> Self {
        Self {
            dataset,
            pages: Vec::new(),
        }
    }

    /// Adds (or replaces) the page for `(page.algorithm, page.masked)`.
    pub fn push_page(&mut self, page: TruthPage) {
        match self
            .pages
            .iter_mut()
            .find(|p| p.algorithm == page.algorithm && p.masked == page.masked)
        {
            Some(slot) => *slot = page,
            None => self.pages.push(page),
        }
    }

    /// Looks up the page for a base algorithm and maskedness.
    pub fn page(&self, algorithm: &str, masked: bool) -> Option<&TruthPage> {
        self.pages
            .iter()
            .find(|p| p.algorithm == algorithm && p.masked == masked)
    }

    /// Packs the subset of claims `keep` accepts into a fresh store —
    /// the shard-slice primitive behind `td-shard`. The slice keeps the
    /// parent's full interner tables (ids stay global, so worker
    /// partials merge without translation), re-canonicalizes the claim
    /// sort to `(attribute, object, source)` via
    /// [`td_model::Dataset::subset_where`], and **drops every truth
    /// page**: pages were computed over the *full* claim set, so their
    /// dimensions would still match the subset's interners while their
    /// content silently described claims the slice no longer holds —
    /// exactly the stale seed a worker must never load.
    pub fn subset_where(
        &self,
        keep: impl FnMut(&td_model::Claim) -> bool,
    ) -> Result<DatasetStore, td_model::ModelError> {
        Ok(DatasetStore::new(self.dataset.subset_where(keep)?))
    }

    /// Serializes to the `.tds` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payloads = [
            (K_SOURCES, encode_names(&self.dataset, Table::Sources)),
            (K_OBJECTS, encode_names(&self.dataset, Table::Objects)),
            (K_ATTRIBUTES, encode_names(&self.dataset, Table::Attributes)),
            (K_VALUES, encode_values(&self.dataset)),
            (K_CLAIMS, encode_claims(&self.dataset)),
            (K_TRUTH_PAGES, encode_pages(&self.pages)),
        ];

        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(VERSION);
        w.put_u32(payloads.len() as u32);
        w.put_u32(0); // reserved
        let table_at = w.len();
        for _ in &payloads {
            w.put_bytes(&[0u8; 32]); // patched below
        }
        for (i, (kind, payload)) in payloads.iter().enumerate() {
            w.align8();
            let offset = w.len();
            w.put_bytes(payload);
            let mut entry = ByteWriter::new();
            entry.put_u32(*kind);
            entry.put_u32(0); // reserved
            entry.put_u64(offset as u64);
            entry.put_u64(payload.len() as u64);
            entry.put_u64(fnv1a(payload));
            w.patch(table_at + i * 32, &entry.into_bytes());
        }
        w.align8();
        w.into_bytes()
    }

    /// Deserializes from `.tds` bytes without observability (see
    /// [`DatasetStore::from_bytes_observed`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::from_bytes_observed(bytes, &Observer::disabled())
    }

    /// Deserializes from `.tds` bytes, recording
    /// [`Counter::BytesMapped`] (total bytes brought in) and
    /// [`Counter::ZeroCopyLoads`] (packed word runs viewed in place
    /// rather than decoded) on `observer`.
    pub fn from_bytes_observed(bytes: &[u8], observer: &Observer) -> Result<Self, StoreError> {
        observer.incr(Counter::BytesMapped, bytes.len() as u64);
        let buf = AlignedBuf::from_bytes(bytes);
        decode_store(&buf, observer)
    }

    /// Writes the store to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a store from a file without observability.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::load_observed(path, &Observer::disabled())
    }

    /// Reads a store from a file, recording the load counters on
    /// `observer` (see [`DatasetStore::from_bytes_observed`]).
    pub fn load_observed(path: impl AsRef<Path>, observer: &Observer) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes_observed(&bytes, observer)
    }
}

/// One row of the decoded section table (exposed for `tdc inspect`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name (see [`SECTION_NAMES`]).
    pub name: &'static str,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a checksum as stored in the header.
    pub checksum: u64,
}

/// Parses and validates just the header + section table of `.tds`
/// bytes — the cheap front half of a load, used by `tdc inspect`.
/// Checksums are verified against the payloads.
pub fn section_table(bytes: &[u8]) -> Result<Vec<SectionInfo>, StoreError> {
    let buf = AlignedBuf::from_bytes(bytes);
    let sections = read_section_table(&buf)?;
    Ok(sections
        .into_iter()
        .map(|s| SectionInfo {
            name: s.name,
            offset: s.offset as u64,
            len: s.len as u64,
            checksum: s.checksum,
        })
        .collect())
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

enum Table {
    Sources,
    Objects,
    Attributes,
}

fn encode_names(dataset: &Dataset, table: Table) -> Vec<u8> {
    let names: Vec<&str> = match table {
        Table::Sources => (0..dataset.n_sources() as u32)
            .map(|i| dataset.source_name(SourceId::new(i)))
            .collect(),
        Table::Objects => (0..dataset.n_objects() as u32)
            .map(|i| dataset.object_name(ObjectId::new(i)))
            .collect(),
        Table::Attributes => (0..dataset.n_attributes() as u32)
            .map(|i| dataset.attribute_name(AttributeId::new(i)))
            .collect(),
    };
    let mut w = ByteWriter::new();
    w.put_u32(names.len() as u32);
    for n in names {
        w.put_u32(n.len() as u32);
        w.put_bytes(n.as_bytes());
    }
    w.into_bytes()
}

fn encode_values(dataset: &Dataset) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(dataset.n_values() as u32);
    for i in 0..dataset.n_values() as u32 {
        match dataset.value(ValueId::new(i)) {
            Value::Text(s) => {
                w.put_u8(0);
                w.put_u32(s.len() as u32);
                w.put_bytes(s.as_bytes());
            }
            Value::Int(v) => {
                w.put_u8(1);
                w.put_u64(*v as u64);
            }
            Value::Float(v) => {
                w.put_u8(2);
                w.put_u64(v.to_bits());
            }
            Value::Bool(v) => {
                w.put_u8(3);
                w.put_u8(u8::from(*v));
            }
        }
    }
    w.into_bytes()
}

fn encode_claims(dataset: &Dataset) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(dataset.n_claims() as u32);
    w.put_u32(0); // pad so each 16-byte claim row starts 8-aligned
    for c in dataset.claims() {
        w.put_u32(c.source.0);
        w.put_u32(c.object.0);
        w.put_u32(c.attribute.0);
        w.put_u32(c.value.0);
    }
    w.into_bytes()
}

fn encode_pages(pages: &[TruthPage]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(pages.len() as u32);
    for p in pages {
        w.put_u32(p.algorithm.len() as u32);
        w.put_bytes(p.algorithm.as_bytes());
        w.put_u32(u32::from(p.masked));
        w.put_u32(p.matrix.n_rows() as u32);
        w.put_u32(p.matrix.n_cols() as u32);
        w.put_u32(p.reference.iterations);
        w.put_u32(p.reference.source_trust.len() as u32);
        let mut predictions: Vec<_> = p.reference.iter().collect();
        predictions.sort_by_key(|&(o, a, _, _)| (o, a));
        w.put_u32(predictions.len() as u32);
        for &t in &p.reference.source_trust {
            w.put_u64(t.to_bits());
        }
        for (o, a, v, c) in predictions {
            w.put_u32(o.0);
            w.put_u32(a.0);
            w.put_u32(v.0);
            w.put_u64(c.to_bits());
        }
        w.align8();
        w.put_words(p.matrix.words());
        if let Some(mask) = p.matrix.mask_words_all() {
            w.put_words(mask);
        }
    }
    w.into_bytes()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Section {
    name: &'static str,
    offset: usize,
    len: usize,
    checksum: u64,
}

/// Reads and fully validates the header + section table: magic,
/// version, section count, per-section bounds and checksums, and that
/// every required section appears exactly once.
fn read_section_table(buf: &AlignedBuf) -> Result<Vec<Section>, StoreError> {
    const HEADER: usize = 16;
    const ENTRY: usize = 32;
    if buf.len() < HEADER {
        return Err(StoreError::TruncatedHeader { len: buf.len() });
    }
    let mut r = SectionReader::new(buf, 0, buf.len(), "header");
    let magic = r.read_bytes(4).expect("header length checked");
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            found: [magic[0], magic[1], magic[2], magic[3]],
        });
    }
    let version = r.read_u32().expect("header length checked");
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let n_sections = r.read_u32().expect("header length checked");
    let _reserved = r.read_u32().expect("header length checked");
    if n_sections == 0 || n_sections > MAX_SECTIONS {
        return Err(StoreError::Corrupt {
            section: "header",
            detail: format!("implausible section count {n_sections}"),
        });
    }
    let table_bytes = n_sections as usize * ENTRY;
    if buf.len() < HEADER + table_bytes {
        return Err(StoreError::TruncatedHeader { len: buf.len() });
    }

    let mut sections = Vec::with_capacity(n_sections as usize);
    for _ in 0..n_sections {
        let kind = r.read_u32().expect("table length checked");
        let _reserved = r.read_u32().expect("table length checked");
        let offset = r.read_u64().expect("table length checked");
        let len = r.read_u64().expect("table length checked");
        let checksum = r.read_u64().expect("table length checked");
        let name = section_name(kind).ok_or_else(|| StoreError::Corrupt {
            section: "header",
            detail: format!("unknown section kind {kind}"),
        })?;
        if sections.iter().any(|s: &Section| s.name == name) {
            return Err(StoreError::Corrupt {
                section: "header",
                detail: format!("duplicate section {name:?}"),
            });
        }
        let (offset, len) = (usize::try_from(offset), usize::try_from(len));
        let (offset, len) = match (offset, len) {
            (Ok(o), Ok(l)) => (o, l),
            _ => return Err(StoreError::SectionOutOfBounds { section: name }),
        };
        let end = offset
            .checked_add(len)
            .ok_or(StoreError::SectionOutOfBounds { section: name })?;
        if offset < HEADER + table_bytes || end > buf.len() {
            return Err(StoreError::SectionOutOfBounds { section: name });
        }
        if buf.checksum(offset, len) != Some(checksum) {
            return Err(StoreError::ChecksumMismatch { section: name });
        }
        sections.push(Section {
            name,
            offset,
            len,
            checksum,
        });
    }
    for required in SECTION_NAMES {
        if !sections.iter().any(|s| s.name == required) {
            return Err(StoreError::Corrupt {
                section: "header",
                detail: format!("missing section {required:?}"),
            });
        }
    }
    Ok(sections)
}

fn decode_store(buf: &AlignedBuf, observer: &Observer) -> Result<DatasetStore, StoreError> {
    let sections = read_section_table(buf)?;
    let reader = |name: &'static str| -> SectionReader<'_> {
        let s = sections.iter().find(|s| s.name == name).expect("presence checked");
        SectionReader::new(buf, s.offset, s.len, name)
    };

    let sources = decode_names(reader("sources"))?;
    let objects = decode_names(reader("objects"))?;
    let attributes = decode_names(reader("attributes"))?;
    let values = decode_values(reader("values"))?;
    let claims = decode_claims(reader("claims"))?;
    let dataset = Dataset::from_interned_parts(sources, objects, attributes, values, claims)?;
    let pages = decode_pages(reader("truth_pages"), &dataset, observer)?;
    Ok(DatasetStore { dataset, pages })
}

fn decode_names(mut r: SectionReader<'_>) -> Result<Interner, StoreError> {
    let count = r.read_u32()? as usize;
    // Each entry is at least a 4-byte length prefix, so `count` is
    // bounded by the section's remaining bytes before anything grows.
    if count * 4 > r.remaining() {
        return Err(StoreError::Corrupt {
            section: r.section,
            detail: format!("declared {count} names exceed the section length"),
        });
    }
    let mut interner = Interner::default();
    for i in 0..count {
        let name = r.read_string()?;
        interner.intern(&name);
        if interner.len() != i + 1 {
            return Err(StoreError::Corrupt {
                section: r.section,
                detail: format!("duplicate name {name:?}"),
            });
        }
    }
    r.expect_exhausted()?;
    Ok(interner)
}

fn decode_values(mut r: SectionReader<'_>) -> Result<Vec<Value>, StoreError> {
    let count = r.read_u32()? as usize;
    // Smallest encoding is a bool: tag + payload = 2 bytes.
    if count * 2 > r.remaining() {
        return Err(StoreError::Corrupt {
            section: r.section,
            detail: format!("declared {count} values exceed the section length"),
        });
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        let value = match r.read_u8()? {
            0 => {
                let len = r.read_u32()? as usize;
                let bytes = r.read_bytes(len)?;
                let s = String::from_utf8(bytes).map_err(|_| StoreError::Corrupt {
                    section: r.section,
                    detail: "non-UTF-8 text value".into(),
                })?;
                Value::text(s)
            }
            1 => Value::int(r.read_u64()? as i64),
            2 => Value::try_float(f64::from_bits(r.read_u64()?)).ok_or_else(|| {
                StoreError::Corrupt {
                    section: r.section,
                    detail: "NaN float value".into(),
                }
            })?,
            3 => Value::bool(r.read_u8()? != 0),
            tag => {
                return Err(StoreError::Corrupt {
                    section: r.section,
                    detail: format!("unknown value tag {tag}"),
                })
            }
        };
        values.push(value);
    }
    r.expect_exhausted()?;
    Ok(values)
}

fn decode_claims(mut r: SectionReader<'_>) -> Result<Vec<Claim>, StoreError> {
    let count = r.read_u32()? as usize;
    let _pad = r.read_u32()?;
    if count.checked_mul(16) != Some(r.remaining()) {
        return Err(StoreError::Corrupt {
            section: r.section,
            detail: format!(
                "declared {count} claims but {} payload bytes remain",
                r.remaining()
            ),
        });
    }
    let mut claims = Vec::with_capacity(count);
    for _ in 0..count {
        let s = SourceId::new(r.read_u32()?);
        let o = ObjectId::new(r.read_u32()?);
        let a = AttributeId::new(r.read_u32()?);
        let v = ValueId::new(r.read_u32()?);
        claims.push(Claim::new(s, o, a, v));
    }
    r.expect_exhausted()?;
    Ok(claims)
}

fn decode_pages(
    mut r: SectionReader<'_>,
    dataset: &Dataset,
    observer: &Observer,
) -> Result<Vec<TruthPage>, StoreError> {
    let corrupt = |r: &SectionReader<'_>, detail: String| StoreError::Corrupt {
        section: r.section,
        detail,
    };
    let n_pages = r.read_u32()? as usize;
    // Each page needs at least its seven fixed u32 fields.
    if n_pages * 28 > r.remaining() {
        return Err(corrupt(&r, format!("declared {n_pages} pages exceed the section length")));
    }
    let mut pages = Vec::with_capacity(n_pages);
    for _ in 0..n_pages {
        let algorithm = r.read_string()?;
        let flags = r.read_u32()?;
        if flags > 1 {
            return Err(corrupt(&r, format!("unknown page flags {flags:#x}")));
        }
        let masked = flags == 1;
        let rows = r.read_u32()? as usize;
        let cols = r.read_u32()? as usize;
        let iterations = r.read_u32()?;
        let n_trust = r.read_u32()? as usize;
        let n_predictions = r.read_u32()? as usize;

        if n_trust != dataset.n_sources() {
            return Err(corrupt(
                &r,
                format!("page trust length {n_trust} != {} sources", dataset.n_sources()),
            ));
        }
        if n_trust * 8 + n_predictions * 20 > r.remaining() {
            return Err(corrupt(&r, "declared trust/prediction counts exceed the section".into()));
        }
        let mut reference = TruthResult::with_sources(n_trust, 0.0);
        for t in reference.source_trust.iter_mut() {
            *t = f64::from_bits(r.read_u64()?);
        }
        reference.iterations = iterations;
        for _ in 0..n_predictions {
            let o = ObjectId::new(r.read_u32()?);
            let a = AttributeId::new(r.read_u32()?);
            let v = ValueId::new(r.read_u32()?);
            let c = f64::from_bits(r.read_u64()?);
            if o.index() >= dataset.n_objects()
                || a.index() >= dataset.n_attributes()
                || v.index() >= dataset.n_values()
            {
                return Err(corrupt(
                    &r,
                    format!("prediction ids ({}, {}, {}) out of range", o.0, a.0, v.0),
                ));
            }
            reference.set_prediction(o, a, v, c);
        }
        if reference.len() != n_predictions {
            return Err(corrupt(&r, "duplicate prediction cell".into()));
        }

        r.align8()?;
        let words_per_row = cols.div_ceil(64);
        let n_words = rows
            .checked_mul(words_per_row)
            .ok_or_else(|| corrupt(&r, "page dimensions overflow".into()))?;
        let mut zero_copy = false;
        let bits = r.read_words(n_words, &mut zero_copy)?;
        let mask = if masked {
            Some(r.read_words(n_words, &mut zero_copy)?)
        } else {
            None
        };
        if zero_copy {
            observer.incr(Counter::ZeroCopyLoads, 1);
        }
        let matrix = BitMatrix::from_words(rows, cols, bits, mask)
            .ok_or_else(|| corrupt(&r, "non-canonical packed words (tail bits set)".into()))?;
        pages.push(TruthPage {
            algorithm,
            masked,
            matrix,
            reference,
        });
    }
    r.expect_exhausted()?;
    Ok(pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::DatasetBuilder;

    fn sample_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o1", "a1", Value::text("x")).unwrap();
        b.claim("s2", "o1", "a1", Value::text("y")).unwrap();
        b.claim("s1", "o2", "a2", Value::int(-3)).unwrap();
        b.claim("s2", "o2", "a2", Value::float(2.5)).unwrap();
        b.claim("s3", "o2", "a1", Value::bool(true)).unwrap();
        b.build()
    }

    fn sample_page(dataset: &Dataset, masked: bool) -> TruthPage {
        let rows = dataset.n_attributes();
        let cols = dataset.n_objects() * dataset.n_sources();
        let mut matrix = if masked {
            BitMatrix::zeros_masked(rows, cols)
        } else {
            BitMatrix::zeros(rows, cols)
        };
        matrix.set_bit(0, 1, true);
        if masked {
            matrix.set_observed(0, 1);
        }
        let mut reference = TruthResult::with_sources(dataset.n_sources(), 0.8);
        reference.iterations = 3;
        reference.set_prediction(ObjectId::new(0), AttributeId::new(0), ValueId::new(0), 0.75);
        TruthPage {
            algorithm: "majority".into(),
            masked,
            matrix,
            reference,
        }
    }

    #[test]
    fn roundtrip_preserves_dataset_and_pages() {
        let dataset = sample_dataset();
        let mut store = DatasetStore::new(dataset.clone());
        store.push_page(sample_page(&dataset, false));
        store.push_page(sample_page(&dataset, true));
        let bytes = store.to_bytes();
        let back = DatasetStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.dataset.n_claims(), dataset.n_claims());
        assert_eq!(back.dataset.claims(), dataset.claims());
        for (i, v) in (0..dataset.n_values() as u32).map(ValueId::new).enumerate() {
            assert_eq!(back.dataset.value(ValueId::new(i as u32)), dataset.value(v));
        }
        assert_eq!(back.pages.len(), 2);
        let p = back.page("majority", false).unwrap();
        assert_eq!(p.matrix, store.page("majority", false).unwrap().matrix);
        assert_eq!(p.reference.iterations, 3);
        assert_eq!(p.reference.source_trust, vec![0.8; 3]);
        let pm = back.page("majority", true).unwrap();
        assert!(pm.matrix.has_mask());
        // Byte stability: save → load → save is the identity.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn load_counters_record_bytes_and_zero_copy() {
        let dataset = sample_dataset();
        let mut store = DatasetStore::new(dataset.clone());
        store.push_page(sample_page(&dataset, false));
        let bytes = store.to_bytes();
        let obs = Observer::enabled();
        DatasetStore::from_bytes_observed(&bytes, &obs).unwrap();
        let profile = obs.profile().unwrap();
        assert_eq!(profile.counter("bytes_mapped"), Some(bytes.len() as u64));
        assert_eq!(profile.counter("zero_copy_loads"), Some(1));
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let store = DatasetStore::new(DatasetBuilder::new().build());
        let bytes = store.to_bytes();
        let back = DatasetStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.dataset.n_claims(), 0);
        assert!(back.pages.is_empty());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn subset_where_recanonicalizes_order_and_drops_pages() {
        let dataset = sample_dataset();
        let mut store = DatasetStore::new(dataset.clone());
        store.push_page(sample_page(&dataset, false));
        let a1 = dataset.attribute_id("a1").unwrap();

        let slice = store.subset_where(|c| c.attribute == a1).unwrap();
        // The ordering invariant: slice claims are (attribute, object,
        // source)-sorted no matter what order the filter visited them in.
        let keys: Vec<_> = slice
            .dataset
            .claims()
            .iter()
            .map(|c| (c.attribute, c.object, c.source))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(slice.dataset.claims().iter().all(|c| c.attribute == a1));
        // Ids stay global: the full interner tables ride along.
        assert_eq!(slice.dataset.n_sources(), dataset.n_sources());
        assert_eq!(slice.dataset.n_values(), dataset.n_values());
        // Truth pages are dropped — they described the *full* claim set,
        // and their dimensions would still pass a shape check against
        // the subset's (unchanged) interners.
        assert!(slice.pages.is_empty());

        // Byte stability per shard: two differently-expressed filters
        // selecting the same claims pack to identical bytes.
        let objs: Vec<_> = dataset
            .claims()
            .iter()
            .filter(|c| c.attribute == a1)
            .map(|c| c.object)
            .collect();
        let slice2 = store
            .subset_where(|c| c.attribute == a1 && objs.contains(&c.object))
            .unwrap();
        assert_eq!(slice.to_bytes(), slice2.to_bytes());
        // And the slice round-trips like any store.
        let back = DatasetStore::from_bytes(&slice.to_bytes()).unwrap();
        assert_eq!(back.to_bytes(), slice.to_bytes());
    }

    #[test]
    fn header_corruptions_yield_typed_errors() {
        let bytes = DatasetStore::new(sample_dataset()).to_bytes();
        assert!(matches!(
            DatasetStore::from_bytes(&bytes[..8]),
            Err(StoreError::TruncatedHeader { len: 8 })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(DatasetStore::from_bytes(&bad), Err(StoreError::BadMagic { .. })));
        let mut v2 = bytes.clone();
        v2[4] = 2;
        assert!(matches!(
            DatasetStore::from_bytes(&v2),
            Err(StoreError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let bytes = DatasetStore::new(sample_dataset()).to_bytes();
        let table = section_table(&bytes).unwrap();
        let claims = table.iter().find(|s| s.name == "claims").unwrap();
        let mut bad = bytes.clone();
        bad[claims.offset as usize] ^= 0xFF;
        assert!(matches!(
            DatasetStore::from_bytes(&bad),
            Err(StoreError::ChecksumMismatch { section: "claims" })
        ));
    }

    #[test]
    fn section_table_reports_all_sections() {
        let bytes = DatasetStore::new(sample_dataset()).to_bytes();
        let table = section_table(&bytes).unwrap();
        let names: Vec<_> = table.iter().map(|s| s.name).collect();
        assert_eq!(names, SECTION_NAMES);
        for s in &table {
            assert_eq!(
                s.offset % crate::format::ALIGN as u64,
                0,
                "section {} misaligned",
                s.name
            );
        }
    }
}
