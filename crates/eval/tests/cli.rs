//! End-to-end tests of the `repro` and `tdc` binaries.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tdc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdc"))
}

#[test]
fn repro_help_prints_usage() {
    let out = repro().arg("--help").output().expect("spawn repro");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repro"));
    assert!(text.contains("table4"));
}

#[test]
fn repro_rejects_unknown_experiment() {
    let out = repro().arg("tableX").output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn repro_rejects_bad_scale() {
    let out = repro()
        .args(["table4", "--scale", "enormous"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}

#[test]
fn repro_ablation_small_produces_table_and_json() {
    let dir = std::env::temp_dir().join(format!("tdac-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("ablation.json");
    let out = repro()
        .args([
            "ablation",
            "--scale",
            "small",
            "--json",
            json_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ablation"));
    assert!(text.contains("paper default"));
    let body = std::fs::read_to_string(&json_path).expect("json written");
    let parsed: serde_json::Value = serde_json::from_str(&body).expect("valid json");
    assert!(parsed.get("ablation").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tdc_lists_algorithms() {
    let out = tdc().arg("algos").output().expect("spawn tdc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["MajorityVote", "TruthFinder", "Accu", "3-Estimates"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn tdc_runs_on_a_json_dataset_and_evaluates() {
    use td_model::{json, DatasetBuilder, Value};
    let mut b = DatasetBuilder::new();
    for o in 0..3 {
        let obj = format!("o{o}");
        for a in ["a1", "a2", "a3"] {
            b.claim("good1", &obj, a, Value::int(o)).unwrap();
            b.claim("good2", &obj, a, Value::int(o)).unwrap();
            b.claim("bad", &obj, a, Value::int(100 + o)).unwrap();
            b.truth(&obj, a, Value::int(o));
        }
    }
    let (d, t) = b.build_with_truth();
    let dir = std::env::temp_dir().join(format!("tdac-tdc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let data_path = dir.join("data.json");
    std::fs::write(&data_path, json::to_json(&d, Some(&t))).expect("write dataset");

    // stats subcommand
    let out = tdc()
        .args(["stats", "--input", data_path.to_str().expect("utf-8")])
        .output()
        .expect("spawn tdc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sources      : 3"));
    assert!(text.contains("9 cells"));

    // run subcommand, plain algorithm
    let out = tdc()
        .args([
            "run",
            "--input",
            data_path.to_str().expect("utf-8"),
            "--algo",
            "vote",
        ])
        .output()
        .expect("spawn tdc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let preds: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("predictions json");
    assert_eq!(preds.as_array().expect("array").len(), 9);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("evaluation"), "truth present ⇒ report: {stderr}");

    // run subcommand with TD-AC wrapping and output file
    let preds_path = dir.join("preds.json");
    let out = tdc()
        .args([
            "run",
            "--input",
            data_path.to_str().expect("utf-8"),
            "--algo",
            "accu",
            "--tdac",
            "--output",
            preds_path.to_str().expect("utf-8"),
        ])
        .output()
        .expect("spawn tdc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("partition"));
    let body = std::fs::read_to_string(&preds_path).expect("predictions written");
    let preds: serde_json::Value = serde_json::from_str(&body).expect("valid json");
    assert_eq!(preds.as_array().expect("array").len(), 9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tdc_accepts_csv_claims_and_truth() {
    let dir = std::env::temp_dir().join(format!("tdac-csv-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let claims = dir.join("claims.csv");
    let truth = dir.join("truth.csv");
    std::fs::write(
        &claims,
        "source,object,attribute,value\n\
         s1,o,a,1\ns2,o,a,1\ns3,o,a,2\n\
         s1,o,b,5\ns2,o,b,6\ns3,o,b,6\n",
    )
    .expect("write claims");
    std::fs::write(&truth, "object,attribute,value\no,a,1\no,b,6\n").expect("write truth");

    let out = tdc()
        .args([
            "run",
            "--input",
            claims.to_str().expect("utf-8"),
            "--truth",
            truth.to_str().expect("utf-8"),
            "--algo",
            "vote",
        ])
        .output()
        .expect("spawn tdc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 / 2 cells exact"), "{stderr}");

    // stats on CSV works too.
    let out = tdc()
        .args(["stats", "--input", claims.to_str().expect("utf-8")])
        .output()
        .expect("spawn tdc");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sources      : 3"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tdc_fails_cleanly_on_missing_input() {
    let out = tdc()
        .args(["run", "--input", "/nonexistent.json", "--algo", "vote"])
        .output()
        .expect("spawn tdc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn tdc_rejects_unknown_algorithm() {
    let out = tdc()
        .args(["run", "--input", "x.json", "--algo", "nonsense"])
        .output()
        .expect("spawn tdc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}
