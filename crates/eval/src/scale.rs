//! Experiment scaling: paper-size vs. test-size workloads.

use serde::{Deserialize, Serialize};

/// How big the generated workloads are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Scaled-down sizes for CI and integration tests (seconds).
    Small,
    /// A medium size that preserves all qualitative effects (tens of
    /// seconds).
    Medium,
    /// The paper's exact sizes (minutes, dominated by AccuGenPartition —
    /// which is the point).
    Full,
}

impl Scale {
    /// Objects per synthetic dataset (paper: 1000).
    pub fn synthetic_objects(self) -> usize {
        match self {
            Scale::Small => 60,
            Scale::Medium => 250,
            Scale::Full => 1000,
        }
    }

    /// Students in the Exam simulation (paper: 248).
    pub fn exam_students(self) -> usize {
        match self {
            Scale::Small => 60,
            Scale::Medium => 120,
            Scale::Full => 248,
        }
    }

    /// Objects in the Stocks simulation (paper: 100).
    pub fn stocks_objects(self) -> usize {
        match self {
            Scale::Small => 20,
            Scale::Medium => 50,
            Scale::Full => 100,
        }
    }

    /// Objects in the Flights simulation (paper: 100).
    pub fn flights_objects(self) -> usize {
        match self {
            Scale::Small => 25,
            Scale::Medium => 50,
            Scale::Full => 100,
        }
    }

    /// Parses a CLI scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" | "s" => Some(Scale::Small),
            "medium" | "m" => Some(Scale::Medium),
            "full" | "f" | "paper" => Some(Scale::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Small => write!(f, "small"),
            Scale::Medium => write!(f, "medium"),
            Scale::Full => write!(f, "full"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("M"), Some(Scale::Medium));
        assert_eq!(Scale::parse("paper"), Some(Scale::Full));
        assert_eq!(Scale::parse("gigantic"), None);
    }

    #[test]
    fn full_scale_matches_paper() {
        assert_eq!(Scale::Full.synthetic_objects(), 1000);
        assert_eq!(Scale::Full.exam_students(), 248);
        assert_eq!(Scale::Full.stocks_objects(), 100);
        assert_eq!(Scale::Full.flights_objects(), 100);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.synthetic_objects() < Scale::Medium.synthetic_objects());
        assert!(Scale::Medium.synthetic_objects() < Scale::Full.synthetic_objects());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [Scale::Small, Scale::Medium, Scale::Full] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
    }
}
