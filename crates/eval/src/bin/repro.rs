//! `repro` — regenerate every table and figure of the TD-AC paper.
//!
//! ```text
//! repro <experiment> [--scale small|medium|full] [--json <path>]
//!
//! experiments:
//!   table3 table4 table5 fig1   (synthetic group; any one runs the group)
//!   table6 fig2                 (semi-synthetic, 62 attributes)
//!   table7 fig3                 (semi-synthetic, 124 attributes)
//!   table8 table9 fig4 fig5     (real-data group)
//!   ablation                    (design-choice ablations)
//!   missing                     (sparse-data extension comparison)
//!   scalability                 (runtime growth sweeps)
//!   extended                    (full algorithm roster incl. DART/Ensemble)
//!   seeds                       (stability across fresh generator seeds)
//!   all                         (everything)
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use tdac_eval::experiments::{ablation, extended, missing, real, scalability, seeds, semisynth, synthetic};
use tdac_eval::figures::render_figure;
use tdac_eval::scale::Scale;
use tdac_eval::tables::render_table;

const USAGE: &str = "usage: repro <experiment> [--scale small|medium|full] [--json <path>]\n\
experiments: table3 table4 table5 fig1 table6 fig2 table7 fig3 table8 table9 fig4 fig5 ablation missing scalability extended seeds all";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|v| Scale::parse(v)) else {
                    eprintln!("invalid --scale (small|medium|full)\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                scale = s;
            }
            "--json" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--json needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                json_path = Some(p.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let Some(experiment) = experiment else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    eprintln!("# repro {experiment} --scale {scale}");
    let mut json_blobs: Vec<(String, serde_json::Value)> = Vec::new();

    let run_synthetic = |json: &mut Vec<(String, serde_json::Value)>| {
        let exp = synthetic::run(scale, true);
        print!("{}", synthetic::render_table3(&exp.table3));
        println!();
        for t in &exp.table4 {
            print!("{}", render_table(t));
            println!();
        }
        print!("{}", exp.table5.render());
        println!();
        print!("{}", render_figure(&exp.fig1, 50));
        json.push(("synthetic".into(), serde_json::to_value(&exp).expect("serialize")));
    };
    let run_semisynth = |json: &mut Vec<(String, serde_json::Value)>, n_attrs: usize| {
        let exp = semisynth::run(scale, n_attrs);
        for t in &exp.tables {
            print!("{}", render_table(t));
            println!();
        }
        print!("{}", render_figure(&exp.figure, 50));
        json.push((
            format!("semisynth{n_attrs}"),
            serde_json::to_value(&exp).expect("serialize"),
        ));
    };
    let run_real = |json: &mut Vec<(String, serde_json::Value)>| {
        let exp = real::run(scale);
        print!("{}", real::render_table8(&exp.table8));
        println!();
        for t in &exp.table9 {
            print!("{}", render_table(t));
            println!();
        }
        print!("{}", render_figure(&exp.fig4, 50));
        println!();
        print!("{}", render_figure(&exp.fig5, 50));
        json.push(("real".into(), serde_json::to_value(&exp).expect("serialize")));
    };
    let run_ablation = |json: &mut Vec<(String, serde_json::Value)>| {
        let exp = ablation::run(scale);
        print!("{}", ablation::render(&exp));
        json.push(("ablation".into(), serde_json::to_value(&exp).expect("serialize")));
    };
    let run_scalability = |json: &mut Vec<(String, serde_json::Value)>| {
        let exp = scalability::run(scale);
        print!("{}", scalability::render(&exp));
        json.push(("scalability".into(), serde_json::to_value(&exp).expect("serialize")));
    };
    let run_extended = |json: &mut Vec<(String, serde_json::Value)>| {
        let exp = extended::run(scale);
        for t in &exp.tables {
            print!("{}", render_table(t));
            println!();
        }
        json.push(("extended".into(), serde_json::to_value(&exp).expect("serialize")));
    };
    let run_seeds = |json: &mut Vec<(String, serde_json::Value)>| {
        let exp = seeds::run(scale);
        print!("{}", seeds::render(&exp));
        json.push(("seeds".into(), serde_json::to_value(&exp).expect("serialize")));
    };
    let run_missing = |json: &mut Vec<(String, serde_json::Value)>| {
        let exp = missing::run(scale);
        for t in &exp.tables {
            print!("{}", render_table(t));
            println!();
        }
        json.push(("missing".into(), serde_json::to_value(&exp).expect("serialize")));
    };

    match experiment.as_str() {
        "table3" | "table4" | "table5" | "fig1" | "synthetic" => run_synthetic(&mut json_blobs),
        "table6" | "fig2" => run_semisynth(&mut json_blobs, 62),
        "table7" | "fig3" => run_semisynth(&mut json_blobs, 124),
        "table8" | "table9" | "fig4" | "fig5" | "real" => run_real(&mut json_blobs),
        "ablation" => run_ablation(&mut json_blobs),
        "missing" => run_missing(&mut json_blobs),
        "scalability" => run_scalability(&mut json_blobs),
        "extended" => run_extended(&mut json_blobs),
        "seeds" => run_seeds(&mut json_blobs),
        "all" => {
            run_synthetic(&mut json_blobs);
            println!();
            run_semisynth(&mut json_blobs, 62);
            println!();
            run_semisynth(&mut json_blobs, 124);
            println!();
            run_real(&mut json_blobs);
            println!();
            run_ablation(&mut json_blobs);
            println!();
            run_missing(&mut json_blobs);
            println!();
            run_scalability(&mut json_blobs);
            println!();
            run_extended(&mut json_blobs);
            println!();
            run_seeds(&mut json_blobs);
        }
        other => {
            eprintln!("unknown experiment {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = json_path {
        let map: serde_json::Map<String, serde_json::Value> = json_blobs.into_iter().collect();
        let body = serde_json::to_string_pretty(&serde_json::Value::Object(map))
            .expect("serialize experiment output");
        if let Err(e) = fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("# wrote {path}");
    }

    ExitCode::SUCCESS
}
