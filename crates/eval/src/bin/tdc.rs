//! `tdc` — run truth discovery on a JSON dataset from the command line.
//!
//! ```text
//! tdc run     --input data.json|claims.csv|store.tds [--truth truth.csv] --algo accu
//!             [--tdac] [--parallel] [--masked] [--backend inprocess|sharded]
//!             [--shards n] [--strategy attr-group|hash-object] [--output predictions.json]
//! tdc shard   --input data.json|claims.csv|store.tds --algo accu [--shards n]
//!             [--strategy attr-group|hash-object] [--worker-deadline-ms n]
//!             [--retry-attempts n] [--retry-backoff-ms b]
//!             [--masked] [--parallel] [--output predictions.json]
//! tdc worker  (internal: one shard-job line on stdin, partial stream on stdout)
//! tdc stream  --input base.json|base.csv|base.tds --algo accu --batch b1.csv [--batch b2.csv ...]
//!             [--policy always|never|drift:<threshold>] [--parallel]
//!             [--deadline-ms <n>] [--truth truth.csv] [--output predictions.json]
//! tdc pack    --input data.json|claims.csv --algo accu [--masked] --output store.tds
//! tdc inspect --input store.tds
//! tdc stats   --input data.json|claims.csv|store.tds [--truth truth.csv]
//! tdc serve   --input base.json|base.csv|base.tds --algo accu [--addr 127.0.0.1:7431]
//!             [--max-inflight n] [--workers n] [--deadline-ms n]
//!             [--policy always|never|drift:<threshold>] [--parallel]
//! tdc query   --addr 127.0.0.1:7431 [--object o [--attribute a] | --source s]
//!             [--ingest claims.csv]... [--deadline-ms n] [--output predictions.json]
//! tdc algos
//! ```
//!
//! Inputs ending in `.csv` are parsed as claims tables
//! (`source,object,attribute,value` with header; see `td_model::csv`),
//! optionally with a `--truth` CSV (`object,attribute,value`). Inputs
//! ending in `.tds` are loaded as `td-store` binary stores; when the
//! store carries a truth page for the selected algorithm and mode,
//! `run --tdac` and `stream` skip the build phase entirely (see
//! `docs/STORAGE.md`). Anything else is read as the `td-model` JSON
//! bundle. When ground truth is available an evaluation report is
//! printed after the predictions.
//!
//! `stream` runs the incremental engine: the base input starts a
//! `TdacSession`, each `--batch` file (same claim formats) is ingested
//! in order with a per-batch report on stderr, and the final accumulated
//! predictions are emitted like `run`. See `docs/STREAMING.md`.
//!
//! `serve` turns the same session into a long-lived TCP service
//! speaking the td-serve line-delimited JSON protocol; `query` is its
//! client (the default query is "everything", so `tdc query --addr …
//! --output p.json` against a freshly served store emits exactly what
//! `tdc run --tdac` would). See `docs/SERVING.md`.
//!
//! `shard` is `run --tdac` with a sharded execution backend forced on:
//! the per-group base runs execute in `tdc worker` child processes
//! (fork-of-self) and the merged outcome — and therefore the emitted
//! predictions — is bit-identical to the in-process run. `run` accepts
//! the same `--backend/--shards/--strategy` flags; `stream` and
//! `serve` reject a sharded backend (the incremental session is
//! in-process only). See `docs/SHARDING.md`.

use std::env;
use std::fs;
use std::process::ExitCode;

use td_algorithms::{algorithm_by_name, registry::all_algorithms, TruthDiscovery};
use td_metrics::{evaluate_fn, Stopwatch};
use td_model::{csv, json, ClaimBatch, Dataset, DatasetStats, GroundTruth};
use td_store::{section_table, DatasetStore};
use td_serve::{Client, ResponseBody, ServeConfig, Server, WireClaim};
use td_shard::ShardRunner;
use tdac_core::{
    ExecutionBackend, ExecutionLimits, KernelPolicy, Parallelism, QueryResponse,
    RepartitionPolicy, ShardPlan, ShardStrategy, Tdac, TdacConfig, TdacOutcome, TdacSession,
    TruthQuery,
};

const USAGE: &str = "usage:\n  tdc run --input <data.json|claims.csv|store.tds> [--truth <truth.csv>] \
--algo <name> [--tdac] [--masked] [--parallel] [--deadline-ms <n>] \
[--backend inprocess|sharded] [--shards <n>] [--strategy attr-group|hash-object] \
[--output <predictions.json>]\n  \
tdc shard --input <data.json|claims.csv|store.tds> --algo <name> [--shards <n>] \
[--strategy attr-group|hash-object] [--worker-deadline-ms <n>] [--retry-attempts <n>] \
[--retry-backoff-ms <b>] [--masked] [--parallel] \
[--deadline-ms <n>] [--output <predictions.json>]\n  \
tdc stream --input <base.json|base.csv|base.tds> --algo <name> --batch <claims.csv|data.json> \
[--batch ...] [--policy always|never|drift:<threshold>] [--parallel] [--deadline-ms <n>] \
[--truth <truth.csv>] [--output <predictions.json>]\n  \
tdc pack --input <data.json|claims.csv> --algo <name> [--masked] --output <store.tds>\n  \
tdc inspect --input <store.tds>\n  \
tdc stats --input <data.json|claims.csv|store.tds> [--truth <truth.csv>]\n  \
tdc serve --input <base.json|base.csv|base.tds> --algo <name> [--addr <host:port>] \
[--max-inflight <n>] [--workers <n>] [--deadline-ms <n>] \
[--policy always|never|drift:<threshold>] [--parallel]\n  \
tdc query --addr <host:port> [--object <o> [--attribute <a>] | --source <s>] \
[--ingest <claims.csv|data.json>]... [--deadline-ms <n>] [--output <predictions.json>]\n  \
tdc algos";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("shard") => cmd_run(&args[1..], true),
        // The worker half of `tdc shard` — fork-of-self, so the shard
        // coordinator needs no separate worker binary on PATH.
        Some("worker") => ExitCode::from(td_shard::worker_main().clamp(0, 255) as u8),
        Some("stream") => cmd_stream(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("algos") => {
            for algo in all_algorithms() {
                println!("{}", algo.name());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a `.tds` input when the path says so; `None` for other formats.
/// Surfaced separately from [`load`] because the store carries more than
/// a dataset (truth pages let `run`/`stream` skip the build phase).
fn load_store(path: &str, truth_path: Option<&str>) -> Option<Result<DatasetStore, String>> {
    if !path.ends_with(".tds") {
        return None;
    }
    if truth_path.is_some() {
        return Some(Err(
            "--truth is not supported with a .tds input (pack the claims and keep the \
             truth CSV alongside a claims table instead)"
                .to_string(),
        ));
    }
    Some(DatasetStore::load(path).map_err(|e| format!("cannot load {path}: {e}")))
}

fn load(path: &str, truth_path: Option<&str>) -> Result<(Dataset, Option<GroundTruth>), String> {
    if let Some(store) = load_store(path, truth_path) {
        return store.map(|s| (s.dataset, None));
    }
    let body = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".csv") {
        match truth_path {
            Some(tp) => {
                let truth_body =
                    fs::read_to_string(tp).map_err(|e| format!("cannot read {tp}: {e}"))?;
                let (d, t) = csv::dataset_from_csv_with_truth(&body, &truth_body)
                    .map_err(|e| e.to_string())?;
                Ok((d, Some(t)))
            }
            None => csv::dataset_from_csv(&body)
                .map(|d| (d, None))
                .map_err(|e| e.to_string()),
        }
    } else {
        json::from_json(&body).map_err(|e| e.to_string())
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let Some(input) = flag_value(args, "--input") else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let truth_path = flag_value(args, "--truth");
    match load(&input, truth_path.as_deref()) {
        Ok((dataset, truth)) => {
            let st = DatasetStats::of(&dataset);
            println!("sources      : {}", st.n_sources);
            println!("objects      : {}", st.n_objects);
            println!("attributes   : {}", st.n_attributes);
            println!("observations : {}", st.n_observations);
            println!("DCR          : {:.1} %", st.dcr);
            println!(
                "ground truth : {}",
                truth.map_or("absent".to_string(), |t| format!("{} cells", t.len()))
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `tdc run` and `tdc shard` — one code path; `shard` just forces the
/// sharded backend on (and implies `--tdac`: sharding distributes
/// TD-AC's per-group runs, so there is nothing to shard without the
/// wrapper).
fn cmd_run(args: &[String], force_sharded: bool) -> ExitCode {
    let Some(input) = flag_value(args, "--input") else {
        eprintln!("--input is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo_name) = flag_value(args, "--algo") else {
        eprintln!("--algo is required (see `tdc algos`)\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo) = algorithm_by_name(&algo_name) else {
        eprintln!("unknown algorithm {algo_name:?}; see `tdc algos`");
        return ExitCode::FAILURE;
    };
    let backend = match parse_backend(args, force_sharded) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // A sharded backend implies the TD-AC wrapper: sharding distributes
    // the per-group runs, so a bare base-algorithm pass has nothing to
    // distribute.
    let wrap_tdac =
        has_flag(args, "--tdac") || has_flag(args, "--masked") || backend.is_sharded();
    let output = flag_value(args, "--output");

    let truth_path = flag_value(args, "--truth");
    let store = match load_store(&input, truth_path.as_deref()) {
        Some(Ok(s)) => Some(s),
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let (dataset, truth) = match &store {
        Some(s) => (s.dataset.clone(), None),
        None => match load(&input, truth_path.as_deref()) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // Reject degenerate inputs (empty, single-source, objectless) at the
    // door, with the typed model error's message — not a confusing
    // downstream failure.
    if let Err(e) = dataset.validate_for_discovery() {
        eprintln!("{input}: {e}");
        return ExitCode::FAILURE;
    }
    let limits = match parse_limits(args) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let sw = Stopwatch::start();
    let sharded = backend.is_sharded();
    let (result, partition, degradation) = if wrap_tdac {
        let config = TdacConfig {
            missing_aware: has_flag(args, "--masked"),
            backend,
            limits,
            ..Default::default()
        };
        // A store-backed input reuses its truth page (when one matches
        // the algorithm and mode) to skip the reference run — the
        // outcome is bit-identical either way. So is the backend: the
        // sharded path's predictions byte-match the in-process ones
        // (td-verify's shard oracle holds it to that).
        let run: Result<TdacOutcome, String> = if sharded {
            ShardRunner::new(config)
                .and_then(|runner| match &store {
                    Some(s) => runner.run_store(algo.name(), s),
                    None => runner.run(algo.name(), &dataset),
                })
                .map_err(|e| e.to_string())
        } else {
            let tdac = Tdac::new(config);
            match &store {
                Some(s) => tdac.run_store(algo.as_ref(), s),
                None => tdac.run(algo.as_ref(), &dataset),
            }
            .map_err(|e| e.to_string())
        };
        match run {
            Ok(out) => (out.result, Some(out.partition.to_string()), out.degradation),
            Err(e) => {
                eprintln!("TD-AC failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (algo.discover(&dataset.view_all()), None, None)
    };
    let elapsed = sw.elapsed_secs();

    eprintln!(
        "# {}{} on {}: {} predictions in {elapsed:.3}s",
        algo.name(),
        if wrap_tdac {
            if sharded {
                " (TD-AC, sharded)"
            } else {
                " (TD-AC)"
            }
        } else {
            ""
        },
        input,
        result.len()
    );
    if let Some(p) = &partition {
        eprintln!("# partition: {p}");
    }
    if let Some(deg) = &degradation {
        eprintln!("# DEGRADED: {deg} (best-so-far result below)");
    }

    if let Err(e) = emit_predictions(&dataset, &result, output) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }

    if let Some(truth) = truth {
        let report = evaluate_fn(&dataset, &truth, |o, a| result.prediction(o, a));
        eprintln!("# evaluation: {report}");
    }
    ExitCode::SUCCESS
}

fn cmd_stream(args: &[String]) -> ExitCode {
    let Some(input) = flag_value(args, "--input") else {
        eprintln!("--input is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo_name) = flag_value(args, "--algo") else {
        eprintln!("--algo is required (see `tdc algos`)\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo) = algorithm_by_name(&algo_name) else {
        eprintln!("unknown algorithm {algo_name:?}; see `tdc algos`");
        return ExitCode::FAILURE;
    };
    let batch_paths = flag_values(args, "--batch");
    if batch_paths.is_empty() {
        eprintln!("stream wants at least one --batch\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let policy = match flag_value(args, "--policy").as_deref() {
        // Default to the mode whose outcome is bit-identical to a
        // from-scratch `tdc run --tdac` on the accumulated claims.
        None | Some("always") => RepartitionPolicy::Always,
        Some("never") => RepartitionPolicy::Never,
        Some(p) => match p.strip_prefix("drift:").and_then(|t| t.parse::<f64>().ok()) {
            Some(t) => RepartitionPolicy::OnDrift(t),
            None => {
                eprintln!("--policy wants always, never, or drift:<threshold>, got {p:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    let output = flag_value(args, "--output");

    let truth_path = flag_value(args, "--truth");
    let store = match load_store(&input, truth_path.as_deref()) {
        Some(Ok(s)) => Some(s),
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let (dataset, truth) = match &store {
        Some(s) => (s.dataset.clone(), None),
        None => match load(&input, truth_path.as_deref()) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let limits = match parse_limits(args) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let backend = match parse_backend(args, false) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if backend.is_sharded() {
        eprintln!(
            "stream executes in-process only (the incremental session cannot shard); \
             use `tdc shard` for batch runs"
        );
        return ExitCode::FAILURE;
    }
    let config = TdacConfig {
        backend,
        limits,
        ..Default::default()
    };

    let sw = Stopwatch::start();
    // Store-backed restarts reuse the packed truth page so the initial
    // full pass skips the reference base run (bit-identical outcome).
    let started = match &store {
        Some(s) => TdacSession::start_store(algo, config, policy, s),
        None => TdacSession::start(algo, config, policy, dataset),
    };
    let mut session = match started {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{input}: session start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# session on {input}: partition {} over {} claims",
        session.partition(),
        session.dataset().n_claims()
    );
    for path in &batch_paths {
        let batch = match batch_from_file(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match session.ingest(&batch) {
            Ok(report) => eprintln!(
                "# {path}: +{} claims, {} dirty attrs, reused {}/{} groups{}{}{}",
                report.summary.appended_claims,
                report.dirty_attributes.len(),
                report.groups_reused,
                report.groups_total,
                if report.rebuilt { ", rebuilt" } else { "" },
                if report.repartitioned { ", re-partitioned" } else { "" },
                if report.outcome.degradation.is_some() { ", DEGRADED" } else { "" },
            ),
            Err(e) => {
                eprintln!("{path}: ingest failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = sw.elapsed_secs();

    let outcome = session.outcome();
    eprintln!(
        "# {algo_name} (streaming) on {} batches: {} predictions in {elapsed:.3}s",
        session.batches_applied(),
        outcome.result.len()
    );
    eprintln!("# partition: {}", outcome.partition);
    if let Some(deg) = &outcome.degradation {
        eprintln!("# DEGRADED: {deg} (best-so-far result below)");
    }
    if let Err(e) = emit_predictions(session.dataset(), &outcome.result, output) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Some(truth) = truth {
        let report = evaluate_fn(session.dataset(), &truth, |o, a| {
            outcome.result.prediction(o, a)
        });
        eprintln!("# evaluation: {report}");
    }
    ExitCode::SUCCESS
}

/// `tdc pack`: parse a claims input, run the base algorithm once, and
/// save dataset + truth page as a `.tds` store. A later
/// `tdc run --tdac --input store.tds` (or `tdc stream`) with the same
/// algorithm and mode skips the build phase entirely.
fn cmd_pack(args: &[String]) -> ExitCode {
    let Some(input) = flag_value(args, "--input") else {
        eprintln!("--input is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(output) = flag_value(args, "--output") else {
        eprintln!("pack wants --output <store.tds>\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo_name) = flag_value(args, "--algo") else {
        eprintln!("--algo is required (see `tdc algos`)\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo) = algorithm_by_name(&algo_name) else {
        eprintln!("unknown algorithm {algo_name:?}; see `tdc algos`");
        return ExitCode::FAILURE;
    };
    if input.ends_with(".tds") {
        eprintln!("pack reads claims inputs (.json/.csv), not an existing .tds store");
        return ExitCode::FAILURE;
    }
    let (dataset, _) = match load(&input, None) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = dataset.validate_for_discovery() {
        eprintln!("{input}: {e}");
        return ExitCode::FAILURE;
    }
    let config = TdacConfig {
        missing_aware: has_flag(args, "--masked"),
        ..Default::default()
    };
    let sw = Stopwatch::start();
    let store = Tdac::new(config).pack(algo.as_ref(), &dataset);
    if let Err(e) = store.save(&output) {
        eprintln!("cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    let bytes = store.to_bytes().len();
    eprintln!(
        "# packed {input} with {} ({}) in {:.3}s: {bytes} bytes -> {output}",
        algo.name(),
        if has_flag(args, "--masked") { "masked" } else { "dense" },
        sw.elapsed_secs(),
    );
    ExitCode::SUCCESS
}

/// `tdc inspect`: print a `.tds` store's section table (offsets,
/// lengths, checksums — validated) and the decoded dataset + truth-page
/// summary.
fn cmd_inspect(args: &[String]) -> ExitCode {
    let Some(input) = flag_value(args, "--input") else {
        eprintln!("--input is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let bytes = match fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sections = match section_table(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("file         : {input} ({} bytes)", bytes.len());
    println!("sections     :");
    for s in &sections {
        println!(
            "  {:<12} offset {:>8}  len {:>8}  fnv1a {:016x}",
            s.name, s.offset, s.len, s.checksum
        );
    }
    let store = match DatasetStore::from_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let st = DatasetStats::of(&store.dataset);
    println!("sources      : {}", st.n_sources);
    println!("objects      : {}", st.n_objects);
    println!("attributes   : {}", st.n_attributes);
    println!("observations : {}", st.n_observations);
    println!("truth pages  : {}", store.pages.len());
    for p in &store.pages {
        println!(
            "  {:<14} {}  {}x{} bits, {} predictions, {} iterations",
            p.algorithm,
            if p.masked { "masked" } else { "dense " },
            p.matrix.n_rows(),
            p.matrix.n_cols(),
            p.reference.len(),
            p.reference.iterations,
        );
    }
    ExitCode::SUCCESS
}

/// Reads a batch file (same formats as `--input`) into a [`ClaimBatch`]
/// by entity name — the session re-interns against its own dataset.
fn batch_from_file(path: &str) -> Result<ClaimBatch, String> {
    let (d, _) = load(path, None)?;
    let mut batch = ClaimBatch::new();
    for c in d.claims() {
        batch.claim(
            d.source_name(c.source),
            d.object_name(c.object),
            d.attribute_name(c.attribute),
            d.value(c.value).clone(),
        );
    }
    Ok(batch)
}

/// The one grammar for `--backend`, `--shards`, `--strategy`,
/// `--worker-deadline-ms` and `--parallel`, shared by `run`, `shard`,
/// `stream` and `serve` — the execution backend is parsed in exactly
/// one place.
///
/// `--backend sharded` (or any of `--shards`/`--strategy`, or the
/// `tdc shard` subcommand via `force_sharded`) selects a sharded
/// backend; `--parallel` then governs each *worker's* thread pool.
/// Otherwise the flags build the in-process backend the old
/// `--parallel`-only grammar built.
fn parse_backend(args: &[String], force_sharded: bool) -> Result<ExecutionBackend, String> {
    let parallelism = if has_flag(args, "--parallel") {
        Parallelism::Auto
    } else {
        Parallelism::Threads(1)
    };
    let kind = flag_value(args, "--backend");
    match kind.as_deref() {
        None | Some("inprocess") | Some("in-process") | Some("sharded") => {}
        Some(k) => return Err(format!("--backend wants inprocess or sharded, got {k:?}")),
    }
    let shard_flags = flag_value(args, "--shards").is_some()
        || flag_value(args, "--strategy").is_some()
        || flag_value(args, "--retry-attempts").is_some()
        || flag_value(args, "--retry-backoff-ms").is_some();
    let sharded = force_sharded
        || matches!(kind.as_deref(), Some("sharded"))
        || (kind.is_none() && shard_flags);
    if !sharded {
        if shard_flags {
            return Err(
                "--shards/--strategy/--retry-attempts/--retry-backoff-ms make no sense with \
                 --backend inprocess"
                    .to_string(),
            );
        }
        return Ok(ExecutionBackend::InProcess {
            parallelism,
            kernels: KernelPolicy::Auto,
        });
    }
    let shards = match flag_value(args, "--shards") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return Err(format!("--shards wants a positive integer, got {n:?}")),
        },
        None => 2,
    };
    let strategy = match flag_value(args, "--strategy").as_deref() {
        // Attribute-group dealing is exact for any base algorithm, so
        // it is the default; object hashing needs the algorithm's
        // trust_from_predictions hook.
        None | Some("attr-group") => ShardStrategy::ByAttributeGroup,
        Some("hash-object") => ShardStrategy::HashByObject,
        Some(s) => return Err(format!("--strategy wants attr-group or hash-object, got {s:?}")),
    };
    let mut plan = ShardPlan::new(strategy, shards);
    plan.worker_parallelism = parallelism;
    if let Some(ms) = flag_value(args, "--worker-deadline-ms") {
        match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => plan.worker_deadline_ms = Some(ms),
            _ => {
                return Err(format!(
                    "--worker-deadline-ms wants a positive integer, got {ms:?}"
                ))
            }
        }
    }
    // --retry-attempts <n> arms the fault supervisor: n-1 re-spawns of
    // a faulted shard, then the flagged in-process fallback. The
    // default (1) keeps today's fail-fast semantics.
    if let Some(n) = flag_value(args, "--retry-attempts") {
        match n.parse::<u32>() {
            Ok(n) if n > 0 => plan.retry.max_attempts = n,
            _ => {
                return Err(format!(
                    "--retry-attempts wants a positive integer, got {n:?}"
                ))
            }
        }
    }
    if let Some(ms) = flag_value(args, "--retry-backoff-ms") {
        match ms.parse::<u64>() {
            Ok(ms) => {
                plan.retry.backoff_base_ms = ms;
                plan.retry.backoff_cap_ms = ms.saturating_mul(10).max(ms);
            }
            _ => {
                return Err(format!(
                    "--retry-backoff-ms wants a non-negative integer, got {ms:?}"
                ))
            }
        }
    }
    Ok(ExecutionBackend::Sharded(plan))
}

fn parse_limits(args: &[String]) -> Result<ExecutionLimits, String> {
    match flag_value(args, "--deadline-ms") {
        Some(ms) => match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => {
                Ok(ExecutionLimits::none().with_deadline(std::time::Duration::from_millis(ms)))
            }
            _ => Err(format!("--deadline-ms wants a positive integer, got {ms:?}")),
        },
        None => Ok(ExecutionLimits::none()),
    }
}

/// Emits predictions (stdout or `--output`) as a JSON array of
/// `{object, attribute, value, confidence}` rows sorted by cell, going
/// through the shared [`TruthQuery`] surface — the same path `tdc
/// query` takes over the wire, so local and served output are
/// byte-identical on identical results.
fn emit_predictions(
    dataset: &Dataset,
    result: &td_algorithms::TruthResult,
    output: Option<String>,
) -> Result<(), String> {
    let response = TruthQuery::All
        .answer_result(dataset, result)
        .map_err(|e| e.to_string())?;
    emit_response(&response, output)
}

/// Emits a [`QueryResponse`]'s predictions (or, for source queries, its
/// trust scores) as pretty JSON to stdout or `--output`.
fn emit_response(response: &QueryResponse, output: Option<String>) -> Result<(), String> {
    let rows: Vec<serde_json::Value> =
        if response.predictions.is_empty() && !response.sources.is_empty() {
            response
                .sources
                .iter()
                .map(|s| {
                    serde_json::json!({
                        "source": s.source,
                        "trust": s.trust,
                    })
                })
                .collect()
        } else {
            response
                .predictions
                .iter()
                .map(|p| {
                    serde_json::json!({
                        "object": p.object,
                        "attribute": p.attribute,
                        "value": p.value.to_string(),
                        "confidence": p.confidence,
                    })
                })
                .collect()
        };
    let body = serde_json::to_string_pretty(&rows).expect("serialize predictions");
    match output {
        Some(path) => {
            fs::write(&path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("# wrote {path}");
        }
        None => println!("{body}"),
    }
    Ok(())
}

/// `tdc serve`: start a session (like `stream`, store-backed inputs
/// skip the build phase) and serve it over TCP until killed. The bound
/// address is printed as the first stdout line so scripts can pick it
/// up even with `--addr 127.0.0.1:0`.
fn cmd_serve(args: &[String]) -> ExitCode {
    let Some(input) = flag_value(args, "--input") else {
        eprintln!("--input is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo_name) = flag_value(args, "--algo") else {
        eprintln!("--algo is required (see `tdc algos`)\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(algo) = algorithm_by_name(&algo_name) else {
        eprintln!("unknown algorithm {algo_name:?}; see `tdc algos`");
        return ExitCode::FAILURE;
    };
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7431".to_string());
    let mut serve_config = ServeConfig::default();
    if let Some(n) = flag_value(args, "--max-inflight") {
        match n.parse::<usize>() {
            Ok(n) if n > 0 => serve_config.max_inflight = n,
            _ => {
                eprintln!("--max-inflight wants a positive integer, got {n:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(n) = flag_value(args, "--workers") {
        match n.parse::<usize>() {
            Ok(n) if n > 0 => serve_config.workers = n,
            _ => {
                eprintln!("--workers wants a positive integer, got {n:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    // For `serve`, --deadline-ms is the *default per-request* deadline
    // (requests may override); the session's own limits stay unbounded.
    if let Some(ms) = flag_value(args, "--deadline-ms") {
        match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => serve_config.default_deadline_ms = Some(ms),
            _ => {
                eprintln!("--deadline-ms wants a positive integer, got {ms:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let policy = match flag_value(args, "--policy").as_deref() {
        None | Some("always") => RepartitionPolicy::Always,
        Some("never") => RepartitionPolicy::Never,
        Some(p) => match p.strip_prefix("drift:").and_then(|t| t.parse::<f64>().ok()) {
            Some(t) => RepartitionPolicy::OnDrift(t),
            None => {
                eprintln!("--policy wants always, never, or drift:<threshold>, got {p:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    let store = match load_store(&input, None) {
        Some(Ok(s)) => Some(s),
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let backend = match parse_backend(args, false) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if backend.is_sharded() {
        eprintln!(
            "serve executes in-process only (the serving session cannot shard); \
             use `tdc shard` for batch runs"
        );
        return ExitCode::FAILURE;
    }
    let config = TdacConfig {
        backend,
        ..Default::default()
    };
    let started = match &store {
        Some(s) => TdacSession::start_store(algo, config, policy, s),
        None => match load(&input, None) {
            Ok((dataset, _)) => TdacSession::start(algo, config, policy, dataset),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let session = match started {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{input}: session start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n_claims = session.dataset().n_claims();
    let server = match Server::bind(addr.as_str(), session, serve_config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // First stdout line: the resolved address, for scripts.
    println!("{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "# serving {algo_name} on {} ({n_claims} claims, max_inflight={}, workers={}, \
         default deadline {})",
        server.local_addr(),
        serve_config.max_inflight,
        serve_config.workers,
        serve_config
            .default_deadline_ms
            .map_or("none".to_string(), |ms| format!("{ms}ms")),
    );
    server.join();
    ExitCode::SUCCESS
}

/// `tdc query`: drive a running `tdc serve` instance. `--ingest` files
/// are sent first (in order), then the query — default "everything" —
/// is answered and emitted like `tdc run`.
fn cmd_query(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("--addr is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let deadline_ms = match flag_value(args, "--deadline-ms") {
        Some(ms) => match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => Some(ms),
            _ => {
                eprintln!("--deadline-ms wants a positive integer, got {ms:?}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let query = match (
        flag_value(args, "--object"),
        flag_value(args, "--attribute"),
        flag_value(args, "--source"),
    ) {
        (Some(o), Some(a), None) => TruthQuery::Attribute(o, a),
        (Some(o), None, None) => TruthQuery::Object(o),
        (None, None, Some(s)) => TruthQuery::Source(s),
        (None, None, None) => TruthQuery::All,
        _ => {
            eprintln!(
                "--attribute wants --object, and --source excludes both\n{USAGE}"
            );
            return ExitCode::FAILURE;
        }
    };
    let output = flag_value(args, "--output");
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for path in flag_values(args, "--ingest") {
        let batch = match batch_from_file(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let claims: Vec<WireClaim> = batch
            .rows()
            .map(|(s, o, a, v)| WireClaim {
                source: s.clone(),
                object: o.clone(),
                attribute: a.clone(),
                value: v.clone(),
            })
            .collect();
        match client.ingest(claims, deadline_ms) {
            Ok(resp) => match resp.body {
                ResponseBody::Ingest(ack) => eprintln!(
                    "# {path}: +{} claims -> generation {}{}",
                    ack.appended_claims,
                    resp.generation,
                    if ack.degradation.is_some() { ", DEGRADED" } else { "" },
                ),
                ResponseBody::Error(err) => {
                    eprintln!("{path}: ingest rejected ({:?}): {}", err.kind, err.message);
                    return ExitCode::FAILURE;
                }
                other => {
                    eprintln!("{path}: unexpected response {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("{path}: ingest failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match client.query(query, deadline_ms) {
        Ok(resp) => match resp.body {
            ResponseBody::Query(q) => {
                eprintln!(
                    "# generation {}: {} predictions, {} trust scores",
                    resp.generation,
                    q.predictions.len(),
                    q.sources.len()
                );
                if let Some(deg) = &q.degradation {
                    eprintln!("# DEGRADED: {deg} (best-so-far answer below)");
                }
                if let Err(e) = emit_response(&q, output) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            ResponseBody::Error(err) => {
                eprintln!("query rejected ({:?}): {}", err.kind, err.message);
                ExitCode::FAILURE
            }
            other => {
                eprintln!("unexpected response {other:?}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_values(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}
