//! Rendering experiment results as aligned text tables (the shape of the
//! paper's Tables 4, 6, 7, 9) and as JSON.

use serde::{Deserialize, Serialize};

use crate::runner::AlgoRow;

/// One reproduced table (or sub-table) of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableResult {
    /// Paper artifact id, e.g. `"table4a"`.
    pub id: String,
    /// Human title, e.g. `"Performance measures on DS1"`.
    pub title: String,
    /// The rows.
    pub rows: Vec<AlgoRow>,
}

impl TableResult {
    /// Looks up a row by its algorithm label.
    pub fn row(&self, algorithm: &str) -> Option<&AlgoRow> {
        self.rows.iter().find(|r| r.algorithm == algorithm)
    }
}

/// Renders a table in the paper's column layout.
pub fn render_table(table: &TableResult) -> String {
    let mut headers = vec![
        "Algorithm".to_string(),
        "Precision".to_string(),
        "Recall".to_string(),
        "Accuracy".to_string(),
        "F1-measure".to_string(),
        "Time(s)".to_string(),
        "#Iteration".to_string(),
    ];
    let with_partition = table.rows.iter().any(|r| r.partition.is_some());
    if with_partition {
        headers.push("Partition".to_string());
    }

    let mut grid: Vec<Vec<String>> = vec![headers];
    for r in &table.rows {
        let mut row = vec![
            r.algorithm.clone(),
            format!("{:.3}", r.precision),
            format!("{:.3}", r.recall),
            format!("{:.3}", r.accuracy),
            format!("{:.3}", r.f1),
            format_time(r.time_s),
            r.iterations.map_or_else(|| "-".to_string(), |i| i.to_string()),
        ];
        if with_partition {
            row.push(r.partition.clone().unwrap_or_else(|| "-".to_string()));
        }
        grid.push(row);
    }

    let n_cols = grid[0].len();
    let widths: Vec<usize> = (0..n_cols)
        .map(|c| grid.iter().map(|row| row[c].len()).max().unwrap_or(0))
        .collect();

    let mut out = String::new();
    out.push_str(&format!("== {} — {} ==\n", table.id, table.title));
    for (ri, row) in grid.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:<width$}", width = widths[c]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Seconds with adaptive precision (paper prints integers above 1 s).
fn format_time(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.1}")
    } else {
        format!("{t:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableResult {
        TableResult {
            id: "table4a".into(),
            title: "Performance measures on DS1".into(),
            rows: vec![
                AlgoRow {
                    algorithm: "MajorityVote".into(),
                    precision: 0.602,
                    recall: 0.667,
                    accuracy: 0.806,
                    f1: 0.633,
                    time_s: 0.4521,
                    iterations: Some(1),
                    partition: None,
                },
                AlgoRow {
                    algorithm: "TD-AC (F=Accu)".into(),
                    precision: 0.853,
                    recall: 0.870,
                    accuracy: 0.930,
                    f1: 0.861,
                    time_s: 3.2,
                    iterations: Some(1),
                    partition: Some("[(1,2),(4,6),(3,5)]".into()),
                },
            ],
        }
    }

    #[test]
    fn renders_all_columns() {
        let s = render_table(&sample());
        assert!(s.contains("Algorithm"));
        assert!(s.contains("Precision"));
        assert!(s.contains("MajorityVote"));
        assert!(s.contains("0.602"));
        assert!(s.contains("[(1,2),(4,6),(3,5)]"));
        assert!(s.contains("table4a"));
    }

    #[test]
    fn columns_align() {
        let s = render_table(&sample());
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two data rows (plus the title line).
        assert_eq!(lines.len(), 5);
        // The numeric columns start at the same offset in both data rows.
        let header_prec = lines[1].find("Precision");
        assert!(header_prec.is_some());
    }

    #[test]
    fn time_formatting_is_adaptive() {
        assert_eq!(format_time(0.1234), "0.123");
        assert_eq!(format_time(12.34), "12.3");
        assert_eq!(format_time(1234.6), "1235");
    }

    #[test]
    fn row_lookup() {
        let t = sample();
        assert!(t.row("MajorityVote").is_some());
        assert!(t.row("Nope").is_none());
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: TableResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.id, "table4a");
    }
}
