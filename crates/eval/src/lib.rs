#![warn(missing_docs)]
// Numeric kernels index several parallel arrays in lockstep; iterator
// rewrites obscure them without gain.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::vec_init_then_push)]

//! # tdac-eval — the experiment harness
//!
//! Regenerates every table and figure of the TD-AC paper's evaluation
//! (§4) on the simulated workloads from `tdac-datagen`:
//!
//! | Paper artifact | Module | `repro` subcommand |
//! |---|---|---|
//! | Table 3 (synthetic configs) | [`experiments::synthetic`] | `table3` |
//! | Tables 4a–c (DS1–3 performance) | [`experiments::synthetic`] | `table4` |
//! | Table 5 (chosen partitions) | [`experiments::synthetic`] | `table5` |
//! | Figure 1 (accuracy bars) | [`experiments::synthetic`] | `fig1` |
//! | Tables 6a–d (semi-synth, 62 attrs) | [`experiments::semisynth`] | `table6` |
//! | Tables 7a–d (semi-synth, 124 attrs) | [`experiments::semisynth`] | `table7` |
//! | Figures 2–3 (pairwise impact) | [`experiments::semisynth`] | `fig2`, `fig3` |
//! | Table 8 (real dataset statistics) | [`experiments::real`] | `table8` |
//! | Tables 9a–e (real datasets) | [`experiments::real`] | `table9` |
//! | Figures 4–5 (impact by DCR) | [`experiments::real`] | `fig4`, `fig5` |
//! | Design ablations (ours) | [`experiments::ablation`] | `ablation` |
//! | Sparse-data extension (masked TD-AC) | [`experiments::missing`] | `missing` |
//! | Runtime growth sweeps | [`experiments::scalability`] | `scalability` |
//! | Extended roster incl. DART / Ensemble / greedy exploration | [`experiments::extended`] | `extended` |
//!
//! Every experiment takes a [`Scale`] so integration tests can exercise
//! the full pipeline on scaled-down workloads, while `--scale full`
//! reproduces the paper's sizes. All output is both human-readable
//! (aligned text tables, ASCII bar charts) and machine-readable (JSON).

pub mod experiments;
pub mod figures;
pub mod runner;
pub mod scale;
pub mod tables;

pub use runner::{run_accugen, run_accugen_oracle, run_standard, run_tdac, AlgoRow};
pub use scale::Scale;
pub use tables::{render_table, TableResult};
