//! The synthetic-data experiments: Tables 3, 4a–c, 5 and Figure 1.

use serde::{Deserialize, Serialize};

use datagen::{generate_synthetic, SyntheticConfig, SyntheticDataset};
use td_algorithms::{standard_algorithms, Accu};
use tdac_core::{AttributePartition, TdacConfig, Weighting};

use crate::figures::FigureResult;
use crate::runner::{run_accugen, run_accugen_oracle, run_standard, run_tdac};
use crate::scale::Scale;
use crate::tables::TableResult;

/// Everything the synthetic experiment group produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticExperiment {
    /// Table 3: the three configurations' reliability levels.
    pub table3: Vec<(String, Vec<f64>)>,
    /// Tables 4a–c: full performance comparisons on DS1–3.
    pub table4: Vec<TableResult>,
    /// Table 5: partitions chosen by each strategy per dataset.
    pub table5: PartitionTable,
    /// Figure 1: accuracy of every algorithm on DS1–3.
    pub fig1: FigureResult,
}

/// Table 5's shape: one row per partitioning strategy, one column per
/// dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionTable {
    /// `(strategy, [partition string per dataset])` rows.
    pub rows: Vec<(String, Vec<String>)>,
    /// Dataset column labels.
    pub datasets: Vec<String>,
}

impl PartitionTable {
    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::from("== table5 — Partitions chosen by each strategy ==\n");
        let w0 = self
            .rows
            .iter()
            .map(|(s, _)| s.len())
            .max()
            .unwrap_or(8)
            .max("Strategy".len());
        let widths: Vec<usize> = self
            .datasets
            .iter()
            .enumerate()
            .map(|(i, d)| {
                self.rows
                    .iter()
                    .map(|(_, cols)| cols.get(i).map_or(0, String::len))
                    .max()
                    .unwrap_or(0)
                    .max(d.len())
            })
            .collect();
        out.push_str(&format!("{:<w0$}", "Strategy"));
        for (i, d) in self.datasets.iter().enumerate() {
            out.push_str(&format!("  {:<width$}", d, width = widths[i]));
        }
        out.push('\n');
        for (strategy, cols) in &self.rows {
            out.push_str(&format!("{strategy:<w0$}"));
            for (i, c) in cols.iter().enumerate() {
                out.push_str(&format!("  {:<width$}", c, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Generates DS1–3 at the given scale.
pub fn datasets(scale: Scale) -> Vec<(String, SyntheticDataset)> {
    [
        ("DS1", SyntheticConfig::ds1()),
        ("DS2", SyntheticConfig::ds2()),
        ("DS3", SyntheticConfig::ds3()),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        (
            name.to_string(),
            generate_synthetic(&cfg.scaled(scale.synthetic_objects())),
        )
    })
    .collect()
}

/// Runs the whole synthetic experiment group.
///
/// `with_accugen` toggles the brute-force baseline (the expensive part;
/// integration tests at small scale keep it on, quick smoke tests can
/// drop it).
pub fn run(scale: Scale, with_accugen: bool) -> SyntheticExperiment {
    let table3 = vec![
        ("DS1".to_string(), SyntheticConfig::ds1().levels),
        ("DS2".to_string(), SyntheticConfig::ds2().levels),
        ("DS3".to_string(), SyntheticConfig::ds3().levels),
    ];

    let mut table4 = Vec::new();
    let mut table5_rows: Vec<(String, Vec<String>)> = vec![
        ("Synthetic data generator".to_string(), Vec::new()),
        ("AccuGenPartition (Max)".to_string(), Vec::new()),
        ("AccuGenPartition (Avg)".to_string(), Vec::new()),
        ("AccuGenPartition (Oracle)".to_string(), Vec::new()),
        ("TD-AC (F=Accu)".to_string(), Vec::new()),
    ];
    let mut fig1_groups = Vec::new();
    let mut fig1_series: Vec<String> = Vec::new();

    for (idx, (name, data)) in datasets(scale).into_iter().enumerate() {
        let sub = (b'a' + idx as u8) as char;
        let mut rows = Vec::new();
        for algo in standard_algorithms() {
            rows.push(run_standard(algo.as_ref(), &data.dataset, &data.truth));
        }
        let base = Accu::default();
        let planted = AttributePartition::new(data.planted.groups.clone());
        table5_rows[0].1.push(planted.to_string());
        if with_accugen {
            let (max_row, max_out) =
                run_accugen(&base, &data.dataset, &data.truth, Weighting::Max);
            let (avg_row, avg_out) =
                run_accugen(&base, &data.dataset, &data.truth, Weighting::Avg);
            let (oracle_row, oracle_out) =
                run_accugen_oracle(&base, &data.dataset, &data.truth);
            table5_rows[1].1.push(max_out.partition.to_string());
            table5_rows[2].1.push(avg_out.partition.to_string());
            table5_rows[3].1.push(oracle_out.partition.to_string());
            rows.push(max_row);
            rows.push(avg_row);
            rows.push(oracle_row);
        } else {
            for r in &mut table5_rows[1..4] {
                r.1.push("-".to_string());
            }
        }
        let (tdac_row, tdac_out) = run_tdac(&base, &data.dataset, &data.truth, TdacConfig::default());
        table5_rows[4].1.push(tdac_out.partition.to_string());
        rows.push(tdac_row);

        if fig1_series.is_empty() {
            fig1_series = rows.iter().map(|r| r.algorithm.clone()).collect();
        }
        fig1_groups.push((name.clone(), rows.iter().map(|r| r.accuracy).collect()));

        table4.push(TableResult {
            id: format!("table4{sub}"),
            title: format!("Performance measures on {name}"),
            rows,
        });
    }

    SyntheticExperiment {
        table3,
        table4,
        table5: PartitionTable {
            rows: table5_rows,
            datasets: vec!["DS1".into(), "DS2".into(), "DS3".into()],
        },
        fig1: FigureResult {
            id: "fig1".into(),
            title: "Accuracy of all tested algorithms on DS1, DS2 and DS3".into(),
            series: fig1_series,
            groups: fig1_groups,
        },
    }
}

/// Renders Table 3 as text.
pub fn render_table3(table3: &[(String, Vec<f64>)]) -> String {
    let mut out = String::from(
        "== table3 — Reliability level profiles of the synthetic configurations ==\n",
    );
    out.push_str("     DS1  DS2  DS3\n");
    let n_levels = table3.iter().map(|(_, l)| l.len()).max().unwrap_or(0);
    for li in 0..n_levels {
        out.push_str(&format!("m{}  ", li + 1));
        for (_, levels) in table3 {
            out.push_str(&format!("{:>4.1} ", levels.get(li).copied().unwrap_or(f64::NAN)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The group is expensive even at small scale; run it once and share
    /// across the assertions.
    fn cached() -> &'static SyntheticExperiment {
        static CACHE: OnceLock<SyntheticExperiment> = OnceLock::new();
        CACHE.get_or_init(|| run(Scale::Small, true))
    }

    #[test]
    fn small_scale_runs_end_to_end() {
        let exp = cached();
        assert_eq!(exp.table4.len(), 3);
        for t in &exp.table4 {
            assert_eq!(t.rows.len(), 9, "5 standard + 3 AccuGen + TD-AC");
        }
        assert_eq!(exp.table5.rows.len(), 5);
        assert_eq!(exp.fig1.groups.len(), 3);
        assert_eq!(exp.fig1.series.len(), 9);
    }

    #[test]
    fn tdac_beats_unpartitioned_accu_on_ds1() {
        let exp = cached();
        let t4a = &exp.table4[0];
        let accu = t4a.row("Accu").unwrap();
        let tdac = t4a.row("TD-AC (F=Accu)").unwrap();
        assert!(
            tdac.accuracy >= accu.accuracy,
            "TD-AC {:.3} must not lose to Accu {:.3} on the structured DS1",
            tdac.accuracy,
            accu.accuracy
        );
    }

    #[test]
    fn table3_renders() {
        let exp_levels = vec![
            ("DS1".to_string(), vec![1.0, 0.0, 1.0]),
            ("DS2".to_string(), vec![1.0, 0.0, 0.8]),
            ("DS3".to_string(), vec![1.0, 0.2, 0.8]),
        ];
        let s = render_table3(&exp_levels);
        assert!(s.contains("m1"));
        assert!(s.contains("m3"));
        assert!(s.contains("0.2"));
    }

    #[test]
    fn partition_table_renders() {
        let pt = PartitionTable {
            rows: vec![("TD-AC".into(), vec!["[(1,2)]".into(), "[(1),(2)]".into()])],
            datasets: vec!["DS1".into(), "DS2".into()],
        };
        let s = pt.render();
        assert!(s.contains("TD-AC"));
        assert!(s.contains("[(1,2)]"));
        assert!(s.contains("DS2"));
    }
}
