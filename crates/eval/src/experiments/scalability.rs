//! Scalability experiment — the paper's closing concern: *"the running
//! time … become\[s\] important when the number of attributes, objects and
//! sources is very large"*.
//!
//! Sweeps each axis independently on DS1-shaped workloads and records
//! TD-AC's wall-clock (with its base algorithm's as the reference),
//! including the rayon-parallel variant the paper proposes as future
//! work. Complements the Criterion benches with a one-shot recorded
//! table in `results.json`.

use serde::{Deserialize, Serialize};

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{Accu, TruthDiscovery};
use td_metrics::Stopwatch;
use tdac_core::{ExecutionBackend, Parallelism, Tdac, TdacConfig};

use crate::scale::Scale;

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Axis value (objects / sources / attributes).
    pub x: usize,
    /// Observations in the generated dataset.
    pub n_claims: usize,
    /// Base algorithm alone, seconds.
    pub base_s: f64,
    /// TD-AC (sequential), seconds.
    pub tdac_s: f64,
    /// TD-AC (parallel groups), seconds.
    pub tdac_parallel_s: f64,
}

/// The three sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityExperiment {
    /// Varying object count.
    pub objects: Vec<ScalePoint>,
    /// Varying source count.
    pub sources: Vec<ScalePoint>,
    /// Varying attribute count.
    pub attributes: Vec<ScalePoint>,
}

fn measure(cfg: &SyntheticConfig, x: usize) -> ScalePoint {
    let data = generate_synthetic(cfg);
    let base = Accu::default();
    let view = data.dataset.view_all();
    let (_, base_d) = Stopwatch::time(|| base.discover(&view));
    let (_, tdac_d) = Stopwatch::time(|| {
        Tdac::new(TdacConfig {
            backend: ExecutionBackend::in_process(Parallelism::Threads(1)),
            ..Default::default()
        })
        .run(&base, &data.dataset)
        .expect("TD-AC run")
    });
    let (_, par_d) = Stopwatch::time(|| {
        Tdac::new(TdacConfig {
            backend: ExecutionBackend::in_process(Parallelism::Auto),
            ..Default::default()
        })
        .run(&base, &data.dataset)
        .expect("TD-AC run")
    });
    ScalePoint {
        x,
        n_claims: data.dataset.n_claims(),
        base_s: base_d.as_secs_f64(),
        tdac_s: tdac_d.as_secs_f64(),
        tdac_parallel_s: par_d.as_secs_f64(),
    }
}

/// Runs the three sweeps. Sizes scale with `scale`.
pub fn run(scale: Scale) -> ScalabilityExperiment {
    let unit = match scale {
        Scale::Small => 1usize,
        Scale::Medium => 4,
        Scale::Full => 10,
    };

    let objects = [25, 50, 100, 200]
        .into_iter()
        .map(|o| {
            let n = o * unit;
            measure(&SyntheticConfig::ds1().scaled(n), n)
        })
        .collect();

    let sources = [10, 20, 40]
        .into_iter()
        .map(|s| {
            let mut cfg = SyntheticConfig::ds1().scaled(25 * unit);
            cfg.n_sources = s;
            measure(&cfg, s)
        })
        .collect();

    let attributes = [6, 12, 24]
        .into_iter()
        .map(|a| {
            let mut cfg = SyntheticConfig::ds1().scaled(25 * unit);
            cfg.n_attributes = a;
            cfg.partition = (0..a).step_by(2).map(|i| vec![i, i + 1]).collect();
            measure(&cfg, a)
        })
        .collect();

    ScalabilityExperiment {
        objects,
        sources,
        attributes,
    }
}

/// Renders the sweeps as text.
pub fn render(exp: &ScalabilityExperiment) -> String {
    let mut out = String::from("== scalability — runtime growth (Accu base) ==\n");
    for (axis, points) in [
        ("objects", &exp.objects),
        ("sources", &exp.sources),
        ("attributes", &exp.attributes),
    ] {
        out.push_str(&format!(
            "{axis:>10}  {:>10}  {:>9}  {:>9}  {:>12}\n",
            "claims", "base(s)", "tdac(s)", "tdac-par(s)"
        ));
        for p in points {
            out.push_str(&format!(
                "{:>10}  {:>10}  {:>9.4}  {:>9.4}  {:>12.4}\n",
                p.x, p.n_claims, p.base_s, p.tdac_s, p.tdac_parallel_s
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_all_points() {
        let exp = run(Scale::Small);
        assert_eq!(exp.objects.len(), 4);
        assert_eq!(exp.sources.len(), 3);
        assert_eq!(exp.attributes.len(), 3);
        for p in exp.objects.iter().chain(&exp.sources).chain(&exp.attributes) {
            assert!(p.n_claims > 0);
            assert!(p.base_s >= 0.0 && p.tdac_s >= 0.0 && p.tdac_parallel_s >= 0.0);
        }
    }

    #[test]
    fn claims_grow_with_objects() {
        let exp = run(Scale::Small);
        for w in exp.objects.windows(2) {
            assert!(w[1].n_claims > w[0].n_claims);
        }
    }

    #[test]
    fn render_lists_axes() {
        let exp = run(Scale::Small);
        let s = render(&exp);
        assert!(s.contains("objects"));
        assert!(s.contains("sources"));
        assert!(s.contains("attributes"));
    }
}
