//! Seed-sweep stability — the honesty check for our generator seeds.
//!
//! DESIGN.md documents that the DS1–DS3 presets fix specific seeds so the
//! committed tables exhibit the paper's ordering deterministically. This
//! experiment quantifies what happens *across* seeds: for each
//! configuration it re-draws the reliability assignment `n_seeds` times
//! and reports the distribution of Accu vs. TD-AC(F=Accu) accuracy, the
//! TD-AC win/tie/loss record, and the mean partition Rand index against
//! the planted grouping.
//!
//! The headline statistic to look at is `mean_delta` (TD-AC minus base):
//! positive across the sweep means the committed tables are typical, not
//! cherry-picked.

use serde::{Deserialize, Serialize};

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{Accu, TruthDiscovery};
use td_metrics::evaluate_fn;
use tdac_core::{AttributePartition, Tdac, TdacConfig};

use crate::scale::Scale;

/// Sweep summary for one synthetic configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedSweep {
    /// Configuration label (DS1/DS2/DS3).
    pub dataset: String,
    /// Seeds evaluated.
    pub n_seeds: usize,
    /// Per-seed `(accu_accuracy, tdac_accuracy)` pairs.
    pub points: Vec<(f64, f64)>,
    /// Mean Accu accuracy.
    pub mean_base: f64,
    /// Mean TD-AC accuracy.
    pub mean_tdac: f64,
    /// Mean (TD-AC − Accu) accuracy delta.
    pub mean_delta: f64,
    /// Sample standard deviation of the delta.
    pub std_delta: f64,
    /// Seeds where TD-AC beat / tied (±0.005) / lost to Accu.
    pub wins: usize,
    /// Ties within ±0.005.
    pub ties: usize,
    /// Losses beyond 0.005.
    pub losses: usize,
    /// Mean Rand index of TD-AC's partition vs the planted one.
    pub mean_rand_index: f64,
}

/// The three sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedsExperiment {
    /// One sweep per configuration.
    pub sweeps: Vec<SeedSweep>,
}

/// Runs the sweep: `n_seeds` fresh draws per configuration.
pub fn run(scale: Scale) -> SeedsExperiment {
    let n_seeds = match scale {
        Scale::Small => 5,
        Scale::Medium => 10,
        Scale::Full => 20,
    };
    let n_objects = scale.synthetic_objects().min(250); // sweep cost control

    let sweeps = [
        ("DS1", SyntheticConfig::ds1()),
        ("DS2", SyntheticConfig::ds2()),
        ("DS3", SyntheticConfig::ds3()),
    ]
    .into_iter()
    .map(|(name, base_cfg)| {
        let mut points = Vec::with_capacity(n_seeds);
        let mut ris = Vec::with_capacity(n_seeds);
        for seed in 0..n_seeds as u64 {
            let mut cfg = base_cfg.clone().scaled(n_objects);
            cfg.seed = 1000 + seed; // disjoint from the committed presets
            let data = generate_synthetic(&cfg);
            let planted = AttributePartition::new(data.planted.groups.clone());
            let base = Accu::default();
            let plain = base.discover(&data.dataset.view_all());
            let base_acc =
                evaluate_fn(&data.dataset, &data.truth, |o, a| plain.prediction(o, a)).accuracy;
            let out = Tdac::new(TdacConfig::default())
                .run(&base, &data.dataset)
                .expect("TD-AC run");
            let tdac_acc =
                evaluate_fn(&data.dataset, &data.truth, |o, a| out.result.prediction(o, a))
                    .accuracy;
            points.push((base_acc, tdac_acc));
            ris.push(out.partition.rand_index(&planted));
        }
        let n = points.len() as f64;
        let mean_base = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_tdac = points.iter().map(|p| p.1).sum::<f64>() / n;
        let deltas: Vec<f64> = points.iter().map(|p| p.1 - p.0).collect();
        let mean_delta = deltas.iter().sum::<f64>() / n;
        let var = deltas.iter().map(|d| (d - mean_delta).powi(2)).sum::<f64>()
            / (n - 1.0).max(1.0);
        let wins = deltas.iter().filter(|&&d| d > 0.005).count();
        let losses = deltas.iter().filter(|&&d| d < -0.005).count();
        SeedSweep {
            dataset: name.to_string(),
            n_seeds,
            mean_base,
            mean_tdac,
            mean_delta,
            std_delta: var.sqrt(),
            wins,
            ties: points.len() - wins - losses,
            losses,
            mean_rand_index: ris.iter().sum::<f64>() / n,
            points,
        }
    })
    .collect();

    SeedsExperiment { sweeps }
}

/// Renders the sweep as text.
pub fn render(exp: &SeedsExperiment) -> String {
    let mut out = String::from(
        "== seeds — TD-AC vs Accu across fresh generator seeds ==\n\
         dataset  seeds  mean(Accu)  mean(TD-AC)  mean Δ    σ(Δ)    W/T/L   mean RI\n",
    );
    for s in &exp.sweeps {
        out.push_str(&format!(
            "{:>7}  {:>5}  {:>10.3}  {:>11.3}  {:>+6.3}  {:>6.3}  {:>2}/{}/{}  {:>7.2}\n",
            s.dataset,
            s.n_seeds,
            s.mean_base,
            s.mean_tdac,
            s.mean_delta,
            s.std_delta,
            s.wins,
            s.ties,
            s.losses,
            s.mean_rand_index
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static SeedsExperiment {
        static CACHE: OnceLock<SeedsExperiment> = OnceLock::new();
        CACHE.get_or_init(|| run(Scale::Small))
    }

    #[test]
    fn sweep_covers_three_configs() {
        let exp = cached();
        assert_eq!(exp.sweeps.len(), 3);
        for s in &exp.sweeps {
            assert_eq!(s.points.len(), s.n_seeds);
            assert_eq!(s.wins + s.ties + s.losses, s.n_seeds);
            assert!((0.0..=1.0).contains(&s.mean_base));
            assert!((0.0..=1.0).contains(&s.mean_tdac));
            assert!((0.0..=1.0).contains(&s.mean_rand_index));
            assert!(s.std_delta >= 0.0);
        }
    }

    #[test]
    fn tdac_does_not_systematically_lose() {
        // Across fresh seeds TD-AC must not collapse relative to its base.
        // On the relaxed DS3 a small average deficit is expected at test
        // scale (short truth vectors make the clustering noisier) — the
        // paper's own framing is that TD-AC "does not degrade the
        // performances" outside its working setting, not that it always
        // wins; the sharp DS1 must still break even.
        let exp = cached();
        for s in &exp.sweeps {
            let floor = if s.dataset == "DS1" { -0.005 } else { -0.05 };
            assert!(
                s.mean_delta > floor,
                "{}: mean Δ {:.3} — TD-AC systematically losing",
                s.dataset,
                s.mean_delta
            );
        }
    }

    #[test]
    fn render_has_all_rows() {
        let exp = cached();
        let text = render(exp);
        for s in &exp.sweeps {
            assert!(text.contains(&s.dataset));
        }
    }
}
