//! Design-choice ablations (ours, not the paper's): how much do TD-AC's
//! individual choices — k-means vs. alternatives, Hamming vs. other
//! silhouette metrics, the silhouette sweep vs. a fixed k, restart
//! count — matter on the paper's own DS1 workload?

use clustering::Linkage;
use serde::{Deserialize, Serialize};

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::Accu;
use td_metrics::{evaluate_fn, Stopwatch};
use tdac_core::{ClusterMethod, MetricKind, Tdac, TdacConfig};

use crate::scale::Scale;

/// One ablation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Accuracy on DS1.
    pub accuracy: f64,
    /// Selected partition.
    pub partition: String,
    /// Whether it matches the planted partition exactly.
    pub recovered: bool,
    /// Rand index (pairwise agreement) with the planted partition.
    pub rand_index: f64,
    /// Silhouette of the selected partition.
    pub silhouette: f64,
    /// Wall-clock seconds.
    pub time_s: f64,
}

/// The ablation results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationExperiment {
    /// One row per configuration variant.
    pub rows: Vec<AblationRow>,
}

/// Runs every ablation variant on DS1.
pub fn run(scale: Scale) -> AblationExperiment {
    let data = generate_synthetic(&SyntheticConfig::ds1().scaled(scale.synthetic_objects()));
    let planted = tdac_core::AttributePartition::new(data.planted.groups.clone());
    let base = Accu::default();

    let variants: Vec<(String, TdacConfig)> = vec![
        ("paper default (k-means + Hamming silhouette)".into(), TdacConfig::default()),
        (
            "clusterer: PAM".into(),
            TdacConfig {
                method: ClusterMethod::Pam,
                ..Default::default()
            },
        ),
        (
            "clusterer: hierarchical (average)".into(),
            TdacConfig {
                method: ClusterMethod::Hierarchical(Linkage::Average),
                ..Default::default()
            },
        ),
        (
            "clusterer: hierarchical (complete)".into(),
            TdacConfig {
                method: ClusterMethod::Hierarchical(Linkage::Complete),
                ..Default::default()
            },
        ),
        (
            "silhouette metric: Euclidean".into(),
            TdacConfig {
                metric: MetricKind::Euclidean,
                ..Default::default()
            },
        ),
        (
            "silhouette metric: Cosine".into(),
            TdacConfig {
                metric: MetricKind::Cosine,
                ..Default::default()
            },
        ),
        (
            "fixed k = 2 (no sweep)".into(),
            TdacConfig {
                k_min: 2,
                k_max: Some(2),
                ..Default::default()
            },
        ),
        (
            "fixed k = 4 (planted count)".into(),
            TdacConfig {
                k_min: 4,
                k_max: Some(4),
                ..Default::default()
            },
        ),
        (
            "single k-means restart".into(),
            TdacConfig {
                n_init: 1,
                ..Default::default()
            },
        ),
    ];

    // Model-selection ablation: replace the silhouette sweep by the
    // elbow method — pick k from the inertia curve, then run TD-AC with
    // that k fixed.
    let elbow_variant = {
        let (matrix, _) = tdac_core::truth_vector_matrix(
            &base,
            &data.dataset.view_all(),
            &tdac_core::Observer::disabled(),
        );
        let hi = matrix.n_rows().saturating_sub(1).max(2);
        let elbow =
            clustering::select_k_elbow(&matrix, 2..=hi, clustering::KMeansConfig::with_k(0))
                .expect("elbow sweep");
        (
            format!("k selection: elbow (k={})", elbow.best_k),
            TdacConfig {
                k_min: elbow.best_k,
                k_max: Some(elbow.best_k),
                ..Default::default()
            },
        )
    };
    let mut variants = variants;
    variants.push(elbow_variant);
    // Extension variants: masked distances and parallel per-group runs.
    variants.push((
        "missing-aware (masked PAM)".into(),
        TdacConfig {
            missing_aware: true,
            ..Default::default()
        },
    ));
    variants.push((
        "parallel per-group execution".into(),
        TdacConfig {
            backend: tdac_core::ExecutionBackend::in_process(tdac_core::Parallelism::Auto),
            ..Default::default()
        },
    ));

    let rows = variants
        .into_iter()
        .map(|(variant, cfg)| {
            let sw = Stopwatch::start();
            let out = Tdac::new(cfg).run(&base, &data.dataset).expect("TD-AC run");
            let time_s = sw.elapsed_secs();
            let report = evaluate_fn(&data.dataset, &data.truth, |o, a| {
                out.result.prediction(o, a)
            });
            AblationRow {
                variant,
                accuracy: report.accuracy,
                partition: out.partition.to_string(),
                recovered: out.partition == planted,
                rand_index: out.partition.rand_index(&planted),
                silhouette: out.silhouette,
                time_s,
            }
        })
        .collect();

    AblationExperiment { rows }
}

/// Renders the ablation table as text.
pub fn render(exp: &AblationExperiment) -> String {
    let mut out = String::from("== ablation — TD-AC design choices on DS1 ==\n");
    let w = exp.rows.iter().map(|r| r.variant.len()).max().unwrap_or(10);
    out.push_str(&format!(
        "{:<w$}  {:>8}  {:>9}  {:>5}  {:>10}  {:>8}  Partition\n",
        "Variant", "Accuracy", "Recovered", "RI", "Silhouette", "Time(s)"
    ));
    for r in &exp.rows {
        out.push_str(&format!(
            "{:<w$}  {:>8.3}  {:>9}  {:>5.2}  {:>10.3}  {:>8.3}  {}\n",
            r.variant,
            r.accuracy,
            if r.recovered { "yes" } else { "no" },
            r.rand_index,
            r.silhouette,
            r.time_s,
            r.partition
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static AblationExperiment {
        static CACHE: OnceLock<AblationExperiment> = OnceLock::new();
        CACHE.get_or_init(|| run(Scale::Small))
    }

    #[test]
    fn all_variants_run() {
        let exp = cached();
        assert_eq!(exp.rows.len(), 12);
        for r in &exp.rows {
            assert!((0.0..=1.0).contains(&r.accuracy), "{}", r.variant);
            assert!(!r.partition.is_empty());
        }
    }

    #[test]
    fn paper_default_recovers_planted_structure() {
        // Exact recovery of DS1's planted partition is not expected: its
        // singleton groups (3) and (5) can draw indistinguishable
        // reliability patterns, and the paper's own Table 5 shows TD-AC
        // merging them ([(1,2),(4,6),(3,5)]). Require high pairwise
        // agreement instead.
        let exp = cached();
        let default = &exp.rows[0];
        assert!(
            default.rand_index >= 0.8,
            "default TD-AC should be close to DS1's planted partition, got {} (RI {:.2})",
            default.partition,
            default.rand_index
        );
    }

    #[test]
    fn render_contains_every_variant() {
        let exp = cached();
        let s = render(exp);
        for r in &exp.rows {
            assert!(s.contains(&r.variant));
        }
    }
}
