//! One module per paper experiment group.

pub mod ablation;
pub mod extended;
pub mod missing;
pub mod real;
pub mod scalability;
pub mod seeds;
pub mod semisynth;
pub mod synthetic;
