//! The real-data experiments (on the Table 8-shaped simulators):
//! Tables 8, 9a–e and Figures 4–5.

use serde::{Deserialize, Serialize};

use datagen::{generate_exam, generate_flights, generate_stocks, ExamConfig, FlightsConfig, StocksConfig};
use td_algorithms::{Accu, TruthFinder};
use td_model::{Dataset, DatasetStats, GroundTruth};
use tdac_core::TdacConfig;

use crate::figures::FigureResult;
use crate::runner::{run_standard, run_tdac};
use crate::scale::Scale;
use crate::tables::TableResult;

/// The DCR threshold the paper splits Figures 4 and 5 on.
pub const DCR_SPLIT: f64 = 60.0;

/// Output of the real-data experiment group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RealExperiment {
    /// Table 8: per-dataset statistics.
    pub table8: Vec<(String, DatasetStats)>,
    /// Tables 9a–e: per-dataset performance.
    pub table9: Vec<TableResult>,
    /// Figure 4: impact of TD-AC where DCR ≥ 66 %.
    pub fig4: FigureResult,
    /// Figure 5: impact of TD-AC where DCR ≤ 55 %.
    pub fig5: FigureResult,
}

/// Generates the five real-dataset configurations at the given scale, in
/// the paper's Table 9 order.
pub fn datasets(scale: Scale) -> Vec<(String, Dataset, GroundTruth)> {
    let mut out = Vec::new();
    for n_attrs in [32usize, 62, 124] {
        let mut cfg = ExamConfig::new(n_attrs, 25);
        cfg.n_students = scale.exam_students();
        let (d, t) = generate_exam(&cfg);
        out.push((format!("Exam {n_attrs}"), d, t));
    }
    let (d, t) = generate_stocks(&StocksConfig {
        n_objects: scale.stocks_objects(),
        ..Default::default()
    });
    out.push(("Stocks".to_string(), d, t));
    let (d, t) = generate_flights(&FlightsConfig {
        n_objects: scale.flights_objects(),
        ..Default::default()
    });
    out.push(("Flights".to_string(), d, t));
    out
}

/// Runs the whole real-data experiment group.
pub fn run(scale: Scale) -> RealExperiment {
    let data = datasets(scale);

    let table8: Vec<(String, DatasetStats)> = data
        .iter()
        .map(|(name, d, _)| (name.clone(), DatasetStats::of(d)))
        .collect();

    let mut table9 = Vec::new();
    let mut high_cov = Vec::new();
    let mut low_cov = Vec::new();
    let mut series: Vec<String> = Vec::new();

    for (idx, (name, dataset, truth)) in data.iter().enumerate() {
        let sub = (b'a' + idx as u8) as char;
        let accu = Accu::default();
        let tf = TruthFinder::default();
        let mut rows = Vec::new();
        rows.push(run_standard(&accu, dataset, truth));
        rows.push(run_tdac(&accu, dataset, truth, TdacConfig::default()).0);
        rows.push(run_standard(&tf, dataset, truth));
        rows.push(run_tdac(&tf, dataset, truth, TdacConfig::default()).0);

        if series.is_empty() {
            series = rows.iter().map(|r| r.algorithm.clone()).collect();
        }
        let accuracies: Vec<f64> = rows.iter().map(|r| r.accuracy).collect();
        let dcr = table8[idx].1.dcr;
        if dcr >= DCR_SPLIT {
            high_cov.push((name.clone(), accuracies));
        } else {
            low_cov.push((name.clone(), accuracies));
        }

        table9.push(TableResult {
            id: format!("table9{sub}"),
            title: format!("Performance on {name} (DCR {dcr:.0} %)"),
            rows,
        });
    }

    RealExperiment {
        table8,
        table9,
        fig4: FigureResult {
            id: "fig4".into(),
            title: "Impact of TD-AC on real datasets with DCR ≥ 66".into(),
            series: series.clone(),
            groups: high_cov,
        },
        fig5: FigureResult {
            id: "fig5".into(),
            title: "Impact of TD-AC on real datasets with DCR ≤ 55".into(),
            series,
            groups: low_cov,
        },
    }
}

/// Renders Table 8 as text.
pub fn render_table8(table8: &[(String, DatasetStats)]) -> String {
    let mut out = String::from("== table8 — Statistics about the real datasets ==\n");
    let w = table8.iter().map(|(n, _)| n.len()).max().unwrap_or(8).max(8);
    out.push_str(&format!(
        "{:<w$}  {:>8}  {:>8}  {:>11}  {:>13}  {:>8}\n",
        "Dataset", "Sources", "Objects", "Attributes", "Observations", "DCR (%)"
    ));
    for (name, st) in table8 {
        out.push_str(&format!(
            "{:<w$}  {:>8}  {:>8}  {:>11}  {:>13}  {:>8.0}\n",
            name, st.n_sources, st.n_objects, st.n_attributes, st.n_observations, st.dcr
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static RealExperiment {
        static CACHE: OnceLock<RealExperiment> = OnceLock::new();
        CACHE.get_or_init(|| run(Scale::Small))
    }

    #[test]
    fn produces_all_artifacts() {
        let exp = cached();
        assert_eq!(exp.table8.len(), 5);
        assert_eq!(exp.table9.len(), 5);
        assert_eq!(
            exp.fig4.groups.len() + exp.fig5.groups.len(),
            5,
            "every dataset lands in exactly one figure"
        );
        for t in &exp.table9 {
            assert_eq!(t.rows.len(), 4);
        }
    }

    #[test]
    fn coverage_split_is_faithful() {
        let exp = cached();
        // Exam 124 is the sparsest configuration — it must be in fig5.
        assert!(
            exp.fig5.groups.iter().any(|(g, _)| g == "Exam 124"),
            "fig5 groups: {:?}",
            exp.fig5.groups.iter().map(|(g, _)| g).collect::<Vec<_>>()
        );
    }

    #[test]
    fn table8_renders_all_rows() {
        let exp = cached();
        let s = render_table8(&exp.table8);
        for name in ["Exam 32", "Exam 62", "Exam 124", "Stocks", "Flights"] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }
}
