//! Extended comparison — the paper's final research perspective: *"we
//! plan to compare ourselves to a larger set of standard truth discovery
//! algorithms and the partitioning approach in \[13\]"*.
//!
//! Per synthetic dataset, this runs:
//!
//! * every algorithm in the registry (the paper's five plus Sums,
//!   AverageLog, Investment, PooledInvestment, CRH, 2-/3-Estimates);
//! * **DART** with the *planted* domains — the informed baseline: it is
//!   told the grouping TD-AC has to discover;
//! * a VERA-style **Ensemble** of MajorityVote + TruthFinder + Accu;
//! * **TD-AC** (F = Accu) and the greedy AccuGenPartition exploration.
//!
//! The headline question: does TD-AC (discovering the groups) match DART
//! (told the groups)?

use serde::{Deserialize, Serialize};

use datagen::{generate_synthetic, SyntheticConfig};
use td_algorithms::{registry::all_algorithms, Accu, Dart, Ensemble, MajorityVote, TruthFinder};
use tdac_core::{AccuGenPartition, TdacConfig, Weighting};

use crate::runner::{run_standard, run_tdac};
use crate::scale::Scale;
use crate::tables::TableResult;

/// Output of the extended comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendedExperiment {
    /// One table per synthetic dataset.
    pub tables: Vec<TableResult>,
}

/// Runs the extended comparison on DS1–3.
pub fn run(scale: Scale) -> ExtendedExperiment {
    let mut tables = Vec::new();
    for (name, cfg) in [
        ("DS1", SyntheticConfig::ds1()),
        ("DS2", SyntheticConfig::ds2()),
        ("DS3", SyntheticConfig::ds3()),
    ] {
        let data = generate_synthetic(&cfg.scaled(scale.synthetic_objects()));
        let mut rows = Vec::new();
        for algo in all_algorithms() {
            rows.push(run_standard(algo.as_ref(), &data.dataset, &data.truth));
        }
        // DART with the planted domains (informed baseline).
        let dart = Dart::with_domains(&data.planted.groups);
        let mut dart_row = run_standard(&dart, &data.dataset, &data.truth);
        dart_row.algorithm = "DART (planted domains)".into();
        rows.push(dart_row);
        // VERA-style ensemble.
        let ensemble = Ensemble::new(vec![
            Box::new(MajorityVote),
            Box::new(TruthFinder::default()),
            Box::new(Accu::default()),
        ]);
        rows.push(run_standard(&ensemble, &data.dataset, &data.truth));
        // Greedy lattice exploration (the WebDB'15 cheap strategy).
        {
            use td_metrics::{evaluate_fn, Stopwatch};
            let sw = Stopwatch::start();
            let out = AccuGenPartition::default()
                .run_greedy(&Accu::default(), &data.dataset, Weighting::Avg)
                .expect("greedy run");
            let time_s = sw.elapsed_secs();
            let report =
                evaluate_fn(&data.dataset, &data.truth, |o, a| out.result.prediction(o, a));
            rows.push(crate::runner::AlgoRow {
                algorithm: "AccuGenPartition (Greedy-Avg)".into(),
                precision: report.precision,
                recall: report.recall,
                accuracy: report.accuracy,
                f1: report.f1,
                time_s,
                iterations: None,
                partition: Some(out.partition.to_string()),
            });
        }
        // TD-AC.
        rows.push(run_tdac(&Accu::default(), &data.dataset, &data.truth, TdacConfig::default()).0);

        tables.push(TableResult {
            id: format!("extended-{name}"),
            title: format!("Extended algorithm comparison on {name}"),
            rows,
        });
    }
    ExtendedExperiment { tables }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static ExtendedExperiment {
        static CACHE: OnceLock<ExtendedExperiment> = OnceLock::new();
        CACHE.get_or_init(|| run(Scale::Small))
    }

    #[test]
    fn all_rows_present() {
        let exp = cached();
        assert_eq!(exp.tables.len(), 3);
        for t in &exp.tables {
            // 12 registry + DART + Ensemble + Greedy + TD-AC.
            assert_eq!(t.rows.len(), 16, "{}", t.id);
            assert!(t.row("DART (planted domains)").is_some());
            assert!(t.row("Ensemble").is_some());
            assert!(t.row("TD-AC (F=Accu)").is_some());
        }
    }

    #[test]
    fn tdac_is_competitive_with_informed_dart_on_ds1() {
        let exp = cached();
        let t = &exp.tables[0];
        let tdac = t.row("TD-AC (F=Accu)").expect("row").accuracy;
        let dart = t.row("DART (planted domains)").expect("row").accuracy;
        assert!(
            tdac >= dart - 0.1,
            "discovered grouping (acc {tdac:.3}) should be near the informed \
             baseline (acc {dart:.3})"
        );
    }

    #[test]
    fn ensemble_is_at_least_as_good_as_its_weakest_member() {
        let exp = cached();
        for t in &exp.tables {
            let ens = t.row("Ensemble").expect("row").accuracy;
            let members = ["MajorityVote", "TruthFinder", "Accu"];
            let worst = members
                .iter()
                .map(|m| t.row(m).expect("member row").accuracy)
                .fold(f64::INFINITY, f64::min);
            assert!(
                ens >= worst - 0.05,
                "{}: ensemble {ens:.3} below worst member {worst:.3}",
                t.id
            );
        }
    }
}
