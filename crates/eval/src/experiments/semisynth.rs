//! The semi-synthetic (Exam-based) experiments: Tables 6a–d, 7a–d and
//! Figures 2–3.

use serde::{Deserialize, Serialize};

use datagen::{generate_exam, ExamConfig};
use td_algorithms::{Accu, TruthFinder};
use tdac_core::TdacConfig;

use crate::figures::FigureResult;
use crate::runner::{run_standard, run_tdac};
use crate::scale::Scale;
use crate::tables::TableResult;

/// The false-answer range sizes of §4.3.
pub const RANGES: [i64; 4] = [25, 50, 100, 1000];

/// Output of one semi-synthetic sweep (one attribute count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemisynthExperiment {
    /// Attribute-prefix size (62 or 124 in the paper).
    pub n_attributes: usize,
    /// One sub-table per false-value range (the paper's (a)–(d)).
    pub tables: Vec<TableResult>,
    /// The pairwise accuracy comparison (Figure 2 for 62 attributes,
    /// Figure 3 for 124).
    pub figure: FigureResult,
}

/// Runs the sweep for one attribute count (62 ⇒ Table 6 + Figure 2,
/// 124 ⇒ Table 7 + Figure 3).
pub fn run(scale: Scale, n_attributes: usize) -> SemisynthExperiment {
    let (table_no, fig_no) = if n_attributes <= 62 { (6, 2) } else { (7, 3) };
    let mut tables = Vec::new();
    let mut groups = Vec::new();
    let mut series: Vec<String> = Vec::new();

    for (idx, &range) in RANGES.iter().enumerate() {
        let sub = (b'a' + idx as u8) as char;
        let mut cfg = ExamConfig::new(n_attributes, range);
        cfg.n_students = scale.exam_students();
        let (dataset, truth) = generate_exam(&cfg);

        let accu = Accu::default();
        let tf = TruthFinder::default();
        let mut rows = Vec::new();
        rows.push(run_standard(&accu, &dataset, &truth));
        rows.push(run_tdac(&accu, &dataset, &truth, TdacConfig::default()).0);
        rows.push(run_standard(&tf, &dataset, &truth));
        rows.push(run_tdac(&tf, &dataset, &truth, TdacConfig::default()).0);

        if series.is_empty() {
            series = rows.iter().map(|r| r.algorithm.clone()).collect();
        }
        groups.push((format!("Range {range}"), rows.iter().map(|r| r.accuracy).collect()));
        tables.push(TableResult {
            id: format!("table{table_no}{sub}"),
            title: format!(
                "Semi-synthetic Exam with {n_attributes} attributes, false-value range {range}"
            ),
            rows,
        });
    }

    SemisynthExperiment {
        n_attributes,
        tables,
        figure: FigureResult {
            id: format!("fig{fig_no}"),
            title: format!(
                "Impact of TD-AC on Accu and TruthFinder (semi-synthetic, \
                 {n_attributes} attributes)"
            ),
            series,
            groups,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached32() -> &'static SemisynthExperiment {
        static CACHE: OnceLock<SemisynthExperiment> = OnceLock::new();
        CACHE.get_or_init(|| run(Scale::Small, 32))
    }

    #[test]
    fn sweep_produces_four_subtables_and_figure() {
        let exp = cached32();
        assert_eq!(exp.tables.len(), 4);
        for t in &exp.tables {
            assert_eq!(t.rows.len(), 4);
            assert!(t.rows[0].algorithm == "Accu");
            assert!(t.rows[1].algorithm.starts_with("TD-AC"));
        }
        assert_eq!(exp.figure.groups.len(), 4);
        assert_eq!(exp.figure.series.len(), 4);
    }

    #[test]
    fn tdac_does_not_collapse_base_accuracy() {
        // The paper's claim for semi-synthetic data: combining a base
        // algorithm with TD-AC "does not highly deteriorate" it.
        let exp = cached32();
        for t in &exp.tables {
            let accu = t.row("Accu").unwrap().accuracy;
            let tdac = t.row("TD-AC (F=Accu)").unwrap().accuracy;
            assert!(
                tdac > accu - 0.15,
                "{}: TD-AC {tdac:.3} collapsed vs Accu {accu:.3}",
                t.id
            );
        }
    }

    #[test]
    fn table_ids_follow_paper_numbering() {
        // 32 attributes uses the 62-attribute numbering branch.
        let exp = cached32();
        assert_eq!(exp.tables[0].id, "table6a");
        assert_eq!(exp.tables[3].id, "table6d");
        assert_eq!(exp.figure.id, "fig2");
    }
}
