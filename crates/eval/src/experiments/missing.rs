//! Extension experiment: does the missing-data-aware TD-AC variant (the
//! paper's future-work perspective (i)) recover the accuracy the plain
//! variant loses on sparse data?
//!
//! The paper's Figure 5 shows TD-AC trailing its base algorithms on the
//! low-coverage Exam slices (DCR ≤ 55 %) because Eq. 1 conflates
//! "wrong" with "missing". This experiment compares, per Exam slice:
//! the base algorithm alone, plain TD-AC, and masked-distance TD-AC.

use serde::{Deserialize, Serialize};

use datagen::{generate_exam, ExamConfig};
use td_algorithms::{TruthDiscovery, TruthFinder};
use td_metrics::data_coverage_rate;
use tdac_core::TdacConfig;

use crate::runner::{run_standard, run_tdac, AlgoRow};
use crate::scale::Scale;
use crate::tables::TableResult;

/// The comparison results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissingExperiment {
    /// One sub-table per Exam slice, rows: base, plain TD-AC, masked
    /// TD-AC.
    pub tables: Vec<TableResult>,
    /// The DCR of each slice, parallel to `tables`.
    pub dcrs: Vec<f64>,
}

/// Runs the sparse-data comparison on the Exam 32 / 62 / 124 slices.
pub fn run(scale: Scale) -> MissingExperiment {
    let mut tables = Vec::new();
    let mut dcrs = Vec::new();
    for n_attrs in [32usize, 62, 124] {
        let mut cfg = ExamConfig::new(n_attrs, 25);
        cfg.n_students = scale.exam_students();
        let (dataset, truth) = generate_exam(&cfg);
        dcrs.push(data_coverage_rate(&dataset));

        let base = TruthFinder::default();
        let mut rows: Vec<AlgoRow> = Vec::new();
        rows.push(run_standard(&base, &dataset, &truth));
        rows.push(run_tdac(&base, &dataset, &truth, TdacConfig::default()).0);
        let (mut masked_row, _) = run_tdac(
            &base,
            &dataset,
            &truth,
            TdacConfig {
                missing_aware: true,
                ..Default::default()
            },
        );
        masked_row.algorithm = format!("TD-AC-masked (F={})", base.name());
        rows.push(masked_row);

        tables.push(TableResult {
            id: format!("missing{n_attrs}"),
            title: format!(
                "Sparse-data extension on Exam {n_attrs} (DCR {:.0} %)",
                dcrs.last().expect("just pushed")
            ),
            rows,
        });
    }
    MissingExperiment { tables, dcrs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static MissingExperiment {
        static CACHE: OnceLock<MissingExperiment> = OnceLock::new();
        CACHE.get_or_init(|| run(Scale::Small))
    }

    #[test]
    fn produces_three_slices_with_three_rows() {
        let exp = cached();
        assert_eq!(exp.tables.len(), 3);
        assert_eq!(exp.dcrs.len(), 3);
        for t in &exp.tables {
            assert_eq!(t.rows.len(), 3);
            assert!(t.rows[2].algorithm.starts_with("TD-AC-masked"));
        }
    }

    #[test]
    fn masked_variant_is_not_catastrophic() {
        // The extension must stay within a reasonable band of the base on
        // every slice (a regression guard, not a superiority claim).
        let exp = cached();
        for t in &exp.tables {
            let base = t.rows[0].accuracy;
            let masked = t.rows[2].accuracy;
            assert!(
                masked > base - 0.2,
                "{}: masked {masked:.3} vs base {base:.3}",
                t.id
            );
        }
    }

    #[test]
    fn dcr_gradient_present() {
        let exp = cached();
        assert!(exp.dcrs[0] > exp.dcrs[2], "32-attribute slice is denser");
    }
}
