//! Timed, evaluated runs of the algorithms under comparison.

use serde::{Deserialize, Serialize};

use td_algorithms::TruthDiscovery;
use td_metrics::{evaluate_fn, Stopwatch};
use td_model::{Dataset, GroundTruth};
use tdac_core::{AccuGenOutcome, AccuGenPartition, Tdac, TdacConfig, TdacOutcome, Weighting};

/// One row of a paper-style performance table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgoRow {
    /// Algorithm label, paper style (e.g. `"TD-AC (F=Accu)"`).
    pub algorithm: String,
    /// Instance-level precision.
    pub precision: f64,
    /// Instance-level recall.
    pub recall: f64,
    /// Instance-level accuracy.
    pub accuracy: f64,
    /// F1-measure.
    pub f1: f64,
    /// Wall-clock seconds.
    pub time_s: f64,
    /// Iterations, when the algorithm reports them (the paper prints `-`
    /// for AccuGenPartition).
    pub iterations: Option<u32>,
    /// Partition chosen, for the partitioning strategies (Table 5).
    pub partition: Option<String>,
}

/// Runs a standard (un-partitioned) algorithm, timed and evaluated.
pub fn run_standard(
    algo: &dyn TruthDiscovery,
    dataset: &Dataset,
    truth: &GroundTruth,
) -> AlgoRow {
    let sw = Stopwatch::start();
    let result = algo.discover(&dataset.view_all());
    let time_s = sw.elapsed_secs();
    let report = evaluate_fn(dataset, truth, |o, a| result.prediction(o, a));
    AlgoRow {
        algorithm: algo.name().to_string(),
        precision: report.precision,
        recall: report.recall,
        accuracy: report.accuracy,
        f1: report.f1,
        time_s,
        iterations: Some(result.iterations),
        partition: None,
    }
}

/// Runs TD-AC with the given base algorithm, timed and evaluated.
pub fn run_tdac(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    truth: &GroundTruth,
    config: TdacConfig,
) -> (AlgoRow, TdacOutcome) {
    let sw = Stopwatch::start();
    let outcome = Tdac::new(config)
        .run(base, dataset)
        .expect("TD-AC run failed on a non-empty dataset");
    let time_s = sw.elapsed_secs();
    let report = evaluate_fn(dataset, truth, |o, a| outcome.result.prediction(o, a));
    let row = AlgoRow {
        algorithm: format!("TD-AC (F={})", base.name()),
        precision: report.precision,
        recall: report.recall,
        accuracy: report.accuracy,
        f1: report.f1,
        time_s,
        iterations: Some(1),
        partition: Some(outcome.partition.to_string()),
    };
    (row, outcome)
}

/// Runs the AccuGenPartition baseline with a weighting function.
pub fn run_accugen(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    truth: &GroundTruth,
    weighting: Weighting,
) -> (AlgoRow, AccuGenOutcome) {
    let sw = Stopwatch::start();
    let outcome = AccuGenPartition::default()
        .run(base, dataset, weighting)
        .expect("AccuGenPartition run failed");
    let time_s = sw.elapsed_secs();
    let report = evaluate_fn(dataset, truth, |o, a| outcome.result.prediction(o, a));
    let row = AlgoRow {
        algorithm: format!("AccuGenPartition ({weighting})"),
        precision: report.precision,
        recall: report.recall,
        accuracy: report.accuracy,
        f1: report.f1,
        time_s,
        iterations: None,
        partition: Some(outcome.partition.to_string()),
    };
    (row, outcome)
}

/// Runs the AccuGenPartition oracle (scores partitions by ground truth).
pub fn run_accugen_oracle(
    base: &(dyn TruthDiscovery + Sync),
    dataset: &Dataset,
    truth: &GroundTruth,
) -> (AlgoRow, AccuGenOutcome) {
    let sw = Stopwatch::start();
    let outcome = AccuGenPartition::default()
        .run_oracle(base, dataset, truth)
        .expect("AccuGenPartition oracle run failed");
    let time_s = sw.elapsed_secs();
    let report = evaluate_fn(dataset, truth, |o, a| outcome.result.prediction(o, a));
    let row = AlgoRow {
        algorithm: "AccuGenPartition (Oracle)".to_string(),
        precision: report.precision,
        recall: report.recall,
        accuracy: report.accuracy,
        f1: report.f1,
        time_s,
        iterations: None,
        partition: Some(outcome.partition.to_string()),
    };
    (row, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_algorithms::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    fn tiny() -> (Dataset, GroundTruth) {
        let mut b = DatasetBuilder::new();
        for o in 0..4 {
            let obj = format!("o{o}");
            for a in ["a0", "a1", "a2", "a3"] {
                b.claim("good1", &obj, a, Value::int(o)).unwrap();
                b.claim("good2", &obj, a, Value::int(o)).unwrap();
                b.claim("bad", &obj, a, Value::int(100 + o)).unwrap();
                b.truth(&obj, a, Value::int(o));
            }
        }
        b.build_with_truth()
    }

    #[test]
    fn standard_row_is_complete() {
        let (d, t) = tiny();
        let row = run_standard(&MajorityVote, &d, &t);
        assert_eq!(row.algorithm, "MajorityVote");
        assert!((row.accuracy - 1.0).abs() < 1e-9);
        assert!(row.time_s >= 0.0);
        assert_eq!(row.iterations, Some(1));
        assert!(row.partition.is_none());
    }

    #[test]
    fn tdac_row_carries_partition() {
        let (d, t) = tiny();
        let (row, outcome) = run_tdac(&MajorityVote, &d, &t, TdacConfig::default());
        assert!(row.algorithm.starts_with("TD-AC"));
        assert_eq!(row.partition.as_deref(), Some(outcome.partition.to_string().as_str()));
        assert!(row.accuracy > 0.9);
    }

    #[test]
    fn accugen_rows_have_no_iterations() {
        let (d, t) = tiny();
        let (row, out) = run_accugen(&MajorityVote, &d, &t, Weighting::Avg);
        assert!(row.iterations.is_none());
        assert_eq!(out.n_partitions, 15);
        let (orow, _) = run_accugen_oracle(&MajorityVote, &d, &t);
        assert!(orow.accuracy >= row.accuracy - 1e-9, "oracle is an upper bound here");
    }
}
