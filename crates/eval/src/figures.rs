//! Figure data series and their text rendering.
//!
//! The paper's figures are bar charts; here each figure is a named set of
//! `(group, series values)` rows rendered as horizontal ASCII bars plus a
//! CSV block, so the exact numbers can be re-plotted with any tool.

use serde::{Deserialize, Serialize};

/// One reproduced figure: grouped series of accuracy values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureResult {
    /// Paper artifact id, e.g. `"fig1"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Series labels (the legend).
    pub series: Vec<String>,
    /// `(group label, one value per series)` rows.
    pub groups: Vec<(String, Vec<f64>)>,
}

impl FigureResult {
    /// The value of `series` in `group`, if present.
    pub fn value(&self, group: &str, series: &str) -> Option<f64> {
        let si = self.series.iter().position(|s| s == series)?;
        self.groups
            .iter()
            .find(|(g, _)| g == group)
            .and_then(|(_, vs)| vs.get(si))
            .copied()
    }
}

/// Renders a figure as ASCII bars (scaled to `width` characters for the
/// value 1.0) followed by a CSV block.
pub fn render_figure(fig: &FigureResult, width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} — {} ==\n", fig.id, fig.title));
    let label_w = fig
        .groups
        .iter()
        .map(|(g, _)| g.len())
        .chain(fig.series.iter().map(String::len))
        .max()
        .unwrap_or(0);
    for (group, values) in &fig.groups {
        out.push_str(&format!("{group}\n"));
        for (si, v) in values.iter().enumerate() {
            let bar = "#".repeat(((v.clamp(0.0, 1.0)) * width as f64).round() as usize);
            out.push_str(&format!(
                "  {:<label_w$} |{bar:<width$}| {v:.3}\n",
                fig.series[si]
            ));
        }
    }
    out.push_str("\n-- csv --\n");
    out.push_str(&format!("group,{}\n", fig.series.join(",")));
    for (group, values) in &fig.groups {
        let vals: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
        out.push_str(&format!("{group},{}\n", vals.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        FigureResult {
            id: "fig1".into(),
            title: "Accuracy on DS1-3".into(),
            series: vec!["Accu".into(), "TD-AC (F=Accu)".into()],
            groups: vec![
                ("DS1".into(), vec![0.838, 0.930]),
                ("DS2".into(), vec![0.828, 0.940]),
            ],
        }
    }

    #[test]
    fn value_lookup() {
        let f = sample();
        assert_eq!(f.value("DS1", "Accu"), Some(0.838));
        assert_eq!(f.value("DS2", "TD-AC (F=Accu)"), Some(0.940));
        assert_eq!(f.value("DS9", "Accu"), None);
        assert_eq!(f.value("DS1", "Nope"), None);
    }

    #[test]
    fn render_contains_bars_and_csv() {
        let s = render_figure(&sample(), 40);
        assert!(s.contains("DS1"));
        assert!(s.contains("#"));
        assert!(s.contains("-- csv --"));
        assert!(s.contains("group,Accu,TD-AC (F=Accu)"));
        assert!(s.contains("DS2,0.8280,0.9400"));
    }

    #[test]
    fn bars_scale_with_value() {
        let f = FigureResult {
            id: "x".into(),
            title: "t".into(),
            series: vec!["a".into()],
            groups: vec![("g".into(), vec![0.5])],
        };
        let s = render_figure(&f, 10);
        assert!(s.contains("#####"), "{s}");
        assert!(!s.contains("######"), "half bar only: {s}");
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let f = FigureResult {
            id: "x".into(),
            title: "t".into(),
            series: vec!["a".into()],
            groups: vec![("g".into(), vec![7.0])],
        };
        let s = render_figure(&f, 10);
        assert!(s.contains(&"#".repeat(10)));
        assert!(!s.contains(&"#".repeat(11)));
    }
}
