//! The Dong–Berti-Équille–Srivastava algorithm family (*Integrating
//! Conflicting Data: The Role of Source Dependence*, VLDB 2009):
//! **Depen**, **Accu** and **AccuSim**.
//!
//! All three share one engine with three orthogonal switches:
//!
//! * **dependence detection** — Bayesian analysis of pairwise source
//!   overlap. For every source pair the engine counts, under the current
//!   truth estimate, the cells where both provide the *same true* value
//!   (`kt`), the *same false* value (`kf`, the smoking gun of copying),
//!   and *different* values (`kd`), then compares the likelihood of that
//!   evidence under independence vs. copying. Votes of likely copiers are
//!   discounted before counting.
//! * **source accuracy** — per-source accuracy `A(s)` re-estimated every
//!   round (Depen keeps it uniform at `1 - ε`; Accu/AccuSim learn it).
//! * **value similarity** — AccuSim adds TruthFinder-style mutual support
//!   between similar values on top of Accu.
//!
//! | Variant | dependence | learned accuracy | similarity |
//! |---|---|---|---|
//! | [`Depen`]   | ✓ | ✗ | ✗ |
//! | [`Accu`]    | ✓ | ✓ | ✗ |
//! | [`AccuSim`] | ✓ | ✓ | ✓ |

use td_model::{DatasetView, SimilarityConfig, ValueSimilarity};

use crate::common::{clamp_unit, max_abs_diff, Workspace};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Hyper-parameters shared by [`Depen`], [`Accu`] and [`AccuSim`],
/// defaulting to the values of the VLDB 2009 paper.
#[derive(Debug, Clone, Copy)]
pub struct AccuConfig {
    /// Initial source accuracy `A₀` (paper: 0.8).
    pub initial_accuracy: f64,
    /// Assumed number of uniformly-distributed false values per cell,
    /// `n` (paper: 100 in experiments; also the denominator of the
    /// same-false-value probability in dependence detection).
    pub n_false: f64,
    /// A-priori probability `α` that two overlapping sources are
    /// dependent (paper: 0.2).
    pub alpha: f64,
    /// Probability `c` that a copier copies a particular value
    /// (paper: 0.8).
    pub copy_rate: f64,
    /// Error rate `ε` used inside the dependence likelihoods (paper: 0.2).
    pub epsilon: f64,
    /// Similarity weight `ρ` for the AccuSim adjustment (paper: 0.5).
    pub similarity_weight: f64,
    /// Value-similarity tuning (AccuSim only).
    pub similarity: SimilarityConfig,
    /// Convergence threshold on the max accuracy change (and prediction
    /// stability for Depen).
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
}

impl Default for AccuConfig {
    fn default() -> Self {
        Self {
            initial_accuracy: 0.8,
            n_false: 100.0,
            alpha: 0.2,
            copy_rate: 0.8,
            epsilon: 0.2,
            similarity_weight: 0.5,
            similarity: SimilarityConfig::default(),
            tolerance: 1e-4,
            max_iterations: 30,
        }
    }
}

/// Which features of the engine a variant enables.
#[derive(Debug, Clone, Copy)]
struct Features {
    dependence: bool,
    learn_accuracy: bool,
    similarity: bool,
}

/// Depen: copy detection with uniform source accuracy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Depen {
    /// Engine hyper-parameters.
    pub config: AccuConfig,
}

/// Accu: copy detection plus learned per-source accuracy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accu {
    /// Engine hyper-parameters.
    pub config: AccuConfig,
}

/// AccuSim: Accu plus value-similarity support.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccuSim {
    /// Engine hyper-parameters.
    pub config: AccuConfig,
}

impl Depen {
    /// Depen with custom hyper-parameters.
    pub fn new(config: AccuConfig) -> Self {
        Self { config }
    }
}

impl Accu {
    /// Accu with custom hyper-parameters.
    pub fn new(config: AccuConfig) -> Self {
        Self { config }
    }
}

impl AccuSim {
    /// AccuSim with custom hyper-parameters.
    pub fn new(config: AccuConfig) -> Self {
        Self { config }
    }
}

impl TruthDiscovery for Depen {
    fn name(&self) -> &'static str {
        "DEPEN"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        run_engine(
            view,
            &self.config,
            Features {
                dependence: true,
                learn_accuracy: false,
                similarity: false,
            },
        )
    }
}

impl TruthDiscovery for Accu {
    fn name(&self) -> &'static str {
        "Accu"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        run_engine(
            view,
            &self.config,
            Features {
                dependence: true,
                learn_accuracy: true,
                similarity: false,
            },
        )
    }
}

impl TruthDiscovery for AccuSim {
    fn name(&self) -> &'static str {
        "AccuSim"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        run_engine(
            view,
            &self.config,
            Features {
                dependence: true,
                learn_accuracy: true,
                similarity: true,
            },
        )
    }
}

/// Pairwise dependence probabilities, stored densely.
struct DependenceMatrix {
    n: usize,
    /// `P(s1 ~ s2 | Φ)`, symmetric, zero diagonal.
    prob: Vec<f64>,
}

impl DependenceMatrix {
    fn zero(n: usize) -> Self {
        Self {
            n,
            prob: vec![0.0; n * n],
        }
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> f64 {
        self.prob[a * self.n + b]
    }

    #[inline]
    fn set(&mut self, a: usize, b: usize, p: f64) {
        self.prob[a * self.n + b] = p;
        self.prob[b * self.n + a] = p;
    }
}

/// Recomputes the dependence matrix from per-cell co-claim statistics
/// under the current prediction (`pred[cell] = winning candidate index`).
fn compute_dependence(
    ws: &Workspace,
    pred: &[u32],
    cfg: &AccuConfig,
    dep: &mut DependenceMatrix,
) {
    let n = ws.n_sources;
    // kt / kf / kd counters per ordered pair (only a < b used).
    let mut kt = vec![0u32; n * n];
    let mut kf = vec![0u32; n * n];
    let mut kd = vec![0u32; n * n];

    for (cell, &p) in ws.cells.iter().zip(pred) {
        let m = cell.claim_sources.len();
        for i in 0..m {
            let si = cell.claim_sources[i].index();
            let vi = cell.claim_cand[i];
            for j in (i + 1)..m {
                let sj = cell.claim_sources[j].index();
                let vj = cell.claim_cand[j];
                let (a, b) = if si < sj { (si, sj) } else { (sj, si) };
                let idx = a * n + b;
                if vi == vj {
                    if vi == p {
                        kt[idx] += 1;
                    } else {
                        kf[idx] += 1;
                    }
                } else {
                    kd[idx] += 1;
                }
            }
        }
    }

    let e = cfg.epsilon;
    let nf = cfg.n_false.max(1.0);
    let c = cfg.copy_rate;
    // Per-cell outcome probabilities under independence / dependence.
    let pt_i = (1.0 - e) * (1.0 - e);
    let pf_i = e * e / nf;
    let pd_i = (1.0 - pt_i - pf_i).max(1e-12);
    let pt_d = c * (1.0 - e) + (1.0 - c) * pt_i;
    let pf_d = c * e + (1.0 - c) * pf_i;
    let pd_d = ((1.0 - c) * pd_i).max(1e-12);

    let l_t = (pt_i / pt_d).ln();
    let l_f = (pf_i / pf_d).ln();
    let l_d = (pd_i / pd_d).ln();
    let prior = ((1.0 - cfg.alpha) / cfg.alpha).ln();

    for a in 0..n {
        for b in (a + 1)..n {
            let idx = a * n + b;
            let overlap = kt[idx] + kf[idx] + kd[idx];
            if overlap == 0 {
                dep.set(a, b, 0.0);
                continue;
            }
            // log Bayes factor of independence over dependence; large and
            // positive ⇒ independent, very negative ⇒ copier.
            let log_bf =
                prior + kt[idx] as f64 * l_t + kf[idx] as f64 * l_f + kd[idx] as f64 * l_d;
            let p_dep = 1.0 / (1.0 + log_bf.exp());
            dep.set(a, b, p_dep);
        }
    }
}

fn run_engine(view: &DatasetView<'_>, cfg: &AccuConfig, feat: Features) -> TruthResult {
    let sim = ValueSimilarity::new(cfg.similarity);
    let ws = Workspace::build(view, feat.similarity.then_some(&sim));
    let n = ws.n_sources;
    const EPS: f64 = 1e-6;

    let init_acc = if feat.learn_accuracy {
        cfg.initial_accuracy
    } else {
        1.0 - cfg.epsilon
    };
    let mut accuracy = vec![init_acc; n];
    let mut result = TruthResult::with_sources(n, init_acc);

    // Current winning candidate per cell; seeded by vote counts so the
    // first dependence computation has a truth estimate to work from.
    let mut pred: Vec<u32> = ws
        .cells
        .iter()
        .map(|cell| {
            let mut best = 0usize;
            for i in 1..cell.k() {
                if cell.counts[i] > cell.counts[best]
                    || (cell.counts[i] == cell.counts[best]
                        && cell.values[i] < cell.values[best])
                {
                    best = i;
                }
            }
            best as u32
        })
        .collect();

    let mut dep = DependenceMatrix::zero(if feat.dependence { n } else { 0 });
    let mut confidences: Vec<Vec<f64>> = ws.cells.iter().map(|c| vec![0.0; c.k()]).collect();
    // Scratch: claims of one cell ordered by accuracy (for vote discount).
    let mut order: Vec<usize> = Vec::new();
    let mut scores: Vec<f64> = Vec::new();
    let mut adjusted: Vec<f64> = Vec::new();
    let mut sums = vec![0.0f64; n];

    let mut iterations = 0u32;
    loop {
        iterations += 1;
        if feat.dependence {
            compute_dependence(&ws, &pred, cfg, &mut dep);
        }

        for s in sums.iter_mut() {
            *s = 0.0;
        }
        let mut changed = false;

        for (ci, cell) in ws.cells.iter().enumerate() {
            let k = cell.k();
            scores.clear();
            scores.resize(k, 0.0);

            if feat.dependence {
                // Count votes value-by-value, highest-accuracy source
                // first, discounting by the probability of having copied
                // from an already-counted supporter of the same value.
                order.clear();
                order.extend(0..cell.claim_sources.len());
                order.sort_by(|&x, &y| {
                    let ax = accuracy[cell.claim_sources[x].index()];
                    let ay = accuracy[cell.claim_sources[y].index()];
                    ay.partial_cmp(&ax)
                        .unwrap()
                        .then(cell.claim_sources[x].cmp(&cell.claim_sources[y]))
                });
                for (rank, &ic) in order.iter().enumerate() {
                    let s = cell.claim_sources[ic].index();
                    let v = cell.claim_cand[ic] as usize;
                    let a = clamp_unit(accuracy[s], EPS);
                    let tau = (cfg.n_false * a / (1.0 - a)).ln();
                    let mut independence = 1.0;
                    for &jc in &order[..rank] {
                        if cell.claim_cand[jc] == cell.claim_cand[ic] {
                            let s2 = cell.claim_sources[jc].index();
                            independence *= 1.0 - cfg.copy_rate * dep.get(s, s2);
                        }
                    }
                    scores[v] += tau * independence;
                }
            } else {
                for (ic, &src) in cell.claim_sources.iter().enumerate() {
                    let a = clamp_unit(accuracy[src.index()], EPS);
                    let tau = (cfg.n_false * a / (1.0 - a)).ln();
                    scores[cell.claim_cand[ic] as usize] += tau;
                }
            }

            if feat.similarity {
                adjusted.clear();
                adjusted.extend_from_slice(&scores);
                for i in 0..k {
                    let mut infl = 0.0;
                    for j in 0..k {
                        if i != j {
                            infl += scores[j] * cell.sim(j, i);
                        }
                    }
                    adjusted[i] += cfg.similarity_weight * infl;
                }
                scores.copy_from_slice(&adjusted);
            }

            // Softmax over vote counts = Bayesian posterior over candidates.
            let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                z += *s;
            }
            let conf = &mut confidences[ci];
            let mut best = 0usize;
            for i in 0..k {
                conf[i] = scores[i] / z;
                if conf[i] > conf[best] || (conf[i] == conf[best] && cell.values[i] < cell.values[best]) {
                    best = i;
                }
            }
            if pred[ci] != best as u32 {
                pred[ci] = best as u32;
                changed = true;
            }
            for (ic, &src) in cell.claim_sources.iter().enumerate() {
                sums[src.index()] += conf[cell.claim_cand[ic] as usize];
            }
        }

        let converged = if feat.learn_accuracy {
            let mut new_acc = accuracy.clone();
            for s in 0..n {
                if ws.claims_per_source[s] > 0 {
                    new_acc[s] = clamp_unit(sums[s] / ws.claims_per_source[s] as f64, EPS);
                }
            }
            let delta = max_abs_diff(&accuracy, &new_acc);
            accuracy = new_acc;
            delta < cfg.tolerance && !changed
        } else {
            !changed
        };

        if converged || iterations >= cfg.max_iterations {
            break;
        }
    }

    for (ci, cell) in ws.cells.iter().enumerate() {
        let best = pred[ci] as usize;
        result.set_prediction(
            cell.object,
            cell.attribute,
            cell.values[best],
            confidences[ci][best],
        );
    }
    result.source_trust = accuracy;
    result.iterations = iterations;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{Dataset, DatasetBuilder, Value};

    /// s1, s2 honest and agreeing on 4 cells; s3 wrong everywhere.
    fn honest_vs_liar() -> Dataset {
        let mut b = DatasetBuilder::new();
        for i in 0..4 {
            let a = format!("a{i}");
            b.claim("s1", "o", &a, Value::int(i)).unwrap();
            b.claim("s2", "o", &a, Value::int(i)).unwrap();
            b.claim("s3", "o", &a, Value::int(100 + i)).unwrap();
        }
        b.build()
    }

    /// Four independent mostly-right sources plus a copier clique of three
    /// sources sharing identical wrong answers. Without copy detection the
    /// clique outvotes the majority on the poisoned cells.
    fn copier_clique() -> Dataset {
        let mut b = DatasetBuilder::new();
        // 8 cells; independents agree on the truth everywhere but each
        // also makes one (distinct) unique error, so they're not copies.
        for cell in 0..8i64 {
            let a = format!("a{cell}");
            for ind in 0..4 {
                let s = format!("ind{ind}");
                let v = if cell == ind { Value::int(900 + ind) } else { Value::int(cell) };
                b.claim(&s, "o", &a, v).unwrap();
            }
            // Copier clique: identical answers, wrong on every cell.
            for cp in 0..3 {
                let s = format!("cp{cp}");
                b.claim(&s, "o", &a, Value::int(500 + cell)).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn accu_learns_source_accuracy() {
        let d = honest_vs_liar();
        let r = Accu::default().discover(&d.view_all());
        let s1 = d.source_id("s1").unwrap();
        let s3 = d.source_id("s3").unwrap();
        assert!(
            r.source_trust[s1.index()] > r.source_trust[s3.index()],
            "honest source must end more accurate: {:?}",
            r.source_trust
        );
        let o = d.object_id("o").unwrap();
        for i in 0..4 {
            let a = d.attribute_id(&format!("a{i}")).unwrap();
            assert_eq!(r.prediction(o, a), Some(d.value_id(&Value::int(i)).unwrap()));
        }
    }

    #[test]
    fn depen_discounts_copier_clique() {
        let d = copier_clique();
        let r = Depen::default().discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        // On unpoisoned cells (cells 4..8) independents have 4 distinct...
        // actually all four agree; clique has 3 — majority already wins.
        // The interesting cells are 0..4 where one independent defects:
        // 3 honest vs 3 copies. Copy detection must break the tie for the
        // independents.
        let mut correct = 0;
        for cell in 0..8 {
            let a = d.attribute_id(&format!("a{cell}")).unwrap();
            if r.prediction(o, a) == d.value_id(&Value::int(cell)) {
                correct += 1;
            }
        }
        assert!(
            correct >= 7,
            "copy-aware voting should recover nearly all cells, got {correct}/8"
        );
    }

    #[test]
    fn accu_beats_uniform_on_copier_clique() {
        let d = copier_clique();
        let r = Accu::default().discover(&d.view_all());
        let ind0 = d.source_id("ind0").unwrap();
        let cp0 = d.source_id("cp0").unwrap();
        assert!(r.source_trust[ind0.index()] > r.source_trust[cp0.index()]);
    }

    #[test]
    fn accusim_groups_similar_values() {
        // Truth 100; supporters split between 100 and 101 (close), while
        // two sources push 999. Similarity support must rescue the close
        // pair.
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(100)).unwrap();
        b.claim("s2", "o", "a", Value::int(101)).unwrap();
        b.claim("s3", "o", "a", Value::int(999)).unwrap();
        b.claim("s4", "o", "a", Value::int(999)).unwrap();
        // Ballast cells so accuracies stay informative.
        for i in 0..3 {
            let a = format!("b{i}");
            for s in ["s1", "s2", "s3", "s4"] {
                b.claim(s, "o", &a, Value::int(7)).unwrap();
            }
        }
        let d = b.build();
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        let v100 = d.value_id(&Value::int(100)).unwrap();
        let v101 = d.value_id(&Value::int(101)).unwrap();
        let v999 = d.value_id(&Value::int(999)).unwrap();

        // Plain Accu follows the two exact votes.
        let base = Accu::default().discover(&d.view_all());
        assert_eq!(base.prediction(o, a), Some(v999));

        // With a strong similarity weight the mutually-supporting close
        // values overcome the vote deficit.
        let strong = AccuSim::new(AccuConfig {
            similarity_weight: 2.0,
            ..Default::default()
        })
        .discover(&d.view_all());
        let picked = strong.prediction(o, a).unwrap();
        assert!(picked == v100 || picked == v101, "similar pair should win");
    }

    #[test]
    fn all_variants_are_deterministic() {
        let d = copier_clique();
        for algo in [
            Box::new(Depen::default()) as Box<dyn TruthDiscovery>,
            Box::new(Accu::default()),
            Box::new(AccuSim::default()),
        ] {
            let r1 = algo.discover(&d.view_all());
            let r2 = algo.discover(&d.view_all());
            assert_eq!(r1.source_trust, r2.source_trust, "{}", algo.name());
            assert_eq!(r1.iterations, r2.iterations);
        }
    }

    #[test]
    fn iteration_counts_reported() {
        let d = honest_vs_liar();
        let r = Accu::default().discover(&d.view_all());
        assert!(r.iterations >= 1 && r.iterations <= AccuConfig::default().max_iterations);
        let rd = Depen::default().discover(&d.view_all());
        assert!(rd.iterations >= 1);
    }

    #[test]
    fn confidences_sum_sensibly() {
        let d = honest_vs_liar();
        let r = Accu::default().discover(&d.view_all());
        for (_, _, _, c) in r.iter() {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn restricted_view_keeps_global_source_space() {
        let d = honest_vs_liar();
        let a0 = d.attribute_id("a0").unwrap();
        let r = Accu::default().discover(&d.view_of(&[a0]));
        assert_eq!(r.source_trust.len(), d.n_sources());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_view_yields_empty_result() {
        let d = DatasetBuilder::new().build();
        for algo in [
            Box::new(Depen::default()) as Box<dyn TruthDiscovery>,
            Box::new(Accu::default()),
            Box::new(AccuSim::default()),
        ] {
            assert!(algo.discover(&d.view_all()).is_empty());
        }
    }

    #[test]
    fn dependence_matrix_flags_identical_sources() {
        // Build workspace manually: two sources agreeing on many false
        // values should be detected as dependent.
        let mut b = DatasetBuilder::new();
        for i in 0..10 {
            let a = format!("a{i}");
            b.claim("cp1", "o", &a, Value::int(555)).unwrap();
            b.claim("cp2", "o", &a, Value::int(555)).unwrap();
            b.claim("ind", "o", &a, Value::int(i)).unwrap();
        }
        let d = b.build();
        let ws = Workspace::build(&d.view_all(), None);
        let cfg = AccuConfig::default();
        // Truth estimate: the independent source is right (candidate
        // index of `ind`'s value). Find per-cell index of value Int(i).
        let pred: Vec<u32> = ws
            .cells
            .iter()
            .map(|c| {
                c.values
                    .iter()
                    .position(|&v| {
                        matches!(d.value(v), Value::Int(x) if *x < 100)
                    })
                    .unwrap() as u32
            })
            .collect();
        let mut dep = DependenceMatrix::zero(3);
        compute_dependence(&ws, &pred, &cfg, &mut dep);
        let cp1 = d.source_id("cp1").unwrap().index();
        let cp2 = d.source_id("cp2").unwrap().index();
        let ind = d.source_id("ind").unwrap().index();
        assert!(
            dep.get(cp1, cp2) > 0.9,
            "shared false values ⇒ dependence: {}",
            dep.get(cp1, cp2)
        );
        assert!(
            dep.get(cp1, ind) < 0.5,
            "disagreeing sources look independent: {}",
            dep.get(cp1, ind)
        );
    }
}
