//! Majority voting — the simplest baseline and TD-AC's default reference
//! algorithm for building attribute truth vectors.

use td_model::DatasetView;

use crate::common::{argmax_candidate, group_candidates, Candidate};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Per-cell plurality vote.
///
/// Each cell's winner is the value claimed by the most sources (ties
/// toward the smallest value id, making the algorithm deterministic); its
/// confidence is the winner's vote share. A source's reported trust is
/// the fraction of its claims that agree with the local majority — not
/// used by the vote itself, but handy as an initializer and for
/// diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl TruthDiscovery for MajorityVote {
    fn name(&self) -> &'static str {
        "MajorityVote"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        let n_sources = view.n_sources();
        let mut result = TruthResult::with_sources(n_sources, 0.0);
        result.iterations = 1;

        let mut agree = vec![0u64; n_sources];
        let mut total = vec![0u64; n_sources];
        let mut cands: Vec<Candidate> = Vec::new();
        let mut claim_cand: Vec<u32> = Vec::new();

        for cell in view.cells() {
            let claims = view.cell_claims(cell);
            group_candidates(claims, &mut cands, &mut claim_cand);
            for c in cands.iter_mut() {
                c.score = c.count as f64;
            }
            let Some(win) = argmax_candidate(&cands) else {
                continue;
            };
            let winner = cands[win];
            let share = winner.count as f64 / claims.len() as f64;
            result.set_prediction(cell.object, cell.attribute, winner.value, share);
            for claim in claims {
                let s = claim.source.index();
                total[s] += 1;
                if claim.value == winner.value {
                    agree[s] += 1;
                }
            }
        }

        for s in 0..n_sources {
            result.source_trust[s] = if total[s] == 0 {
                0.5
            } else {
                agree[s] as f64 / total[s] as f64
            };
        }
        result
    }

    // Majority trust is a pure function of the predictions: a source's
    // trust is the fraction of its claims agreeing with the per-cell
    // winner. Replaying that count against an externally supplied
    // prediction set reproduces `discover`'s trust bit-for-bit — the
    // tallies are integers, so the result is independent of cell
    // iteration order and of how the predictions were computed (one
    // process or unioned from object shards).
    fn trust_from_predictions(
        &self,
        view: &DatasetView<'_>,
        result: &TruthResult,
    ) -> Option<Vec<f64>> {
        let n_sources = view.n_sources();
        let mut agree = vec![0u64; n_sources];
        let mut total = vec![0u64; n_sources];
        for cell in view.cells() {
            let Some(winner) = result.prediction(cell.object, cell.attribute) else {
                continue;
            };
            for claim in view.cell_claims(cell) {
                let s = claim.source.index();
                total[s] += 1;
                if claim.value == winner {
                    agree[s] += 1;
                }
            }
        }
        Some(
            (0..n_sources)
                .map(|s| {
                    if total[s] == 0 {
                        0.5
                    } else {
                        agree[s] as f64 / total[s] as f64
                    }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{DatasetBuilder, Value};

    #[test]
    fn plurality_wins() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::text("x")).unwrap();
        b.claim("s2", "o", "a", Value::text("x")).unwrap();
        b.claim("s3", "o", "a", Value::text("y")).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        assert_eq!(r.prediction(o, a), Some(d.value_id(&Value::text("x")).unwrap()));
        assert!((r.confidence(o, a).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn tie_breaks_to_first_interned_value() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::text("x")).unwrap(); // interned first
        b.claim("s2", "o", "a", Value::text("y")).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        assert_eq!(r.prediction(o, a), Some(d.value_id(&Value::text("x")).unwrap()));
    }

    #[test]
    fn source_trust_is_majority_agreement_rate() {
        let mut b = DatasetBuilder::new();
        // Two cells; s3 agrees with the majority once out of twice.
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o", "a1", Value::int(1)).unwrap();
        b.claim("s3", "o", "a1", Value::int(2)).unwrap();
        b.claim("s1", "o", "a2", Value::int(5)).unwrap();
        b.claim("s2", "o", "a2", Value::int(5)).unwrap();
        b.claim("s3", "o", "a2", Value::int(5)).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let s3 = d.source_id("s3").unwrap();
        assert!((r.source_trust[s3.index()] - 0.5).abs() < 1e-12);
        let s1 = d.source_id("s1").unwrap();
        assert!((r.source_trust[s1.index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_sources_get_neutral_trust() {
        let mut b = DatasetBuilder::new();
        b.source("idle");
        b.claim("busy", "o", "a", Value::int(1)).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let idle = d.source_id("idle").unwrap();
        assert_eq!(r.source_trust[idle.index()], 0.5);
    }

    #[test]
    fn respects_view_restriction() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s1", "o", "a2", Value::int(2)).unwrap();
        let d = b.build();
        let a1 = d.attribute_id("a1").unwrap();
        let a2 = d.attribute_id("a2").unwrap();
        let r = MajorityVote.discover(&d.view_of(&[a1]));
        let o = d.object_id("o").unwrap();
        assert!(r.prediction(o, a1).is_some());
        assert!(r.prediction(o, a2).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn trust_from_predictions_is_bit_identical_to_discover() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o1", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o1", "a1", Value::int(1)).unwrap();
        b.claim("s3", "o1", "a1", Value::int(2)).unwrap();
        b.claim("s1", "o2", "a1", Value::int(7)).unwrap();
        b.claim("s3", "o2", "a1", Value::int(7)).unwrap();
        b.claim("s2", "o1", "a2", Value::text("x")).unwrap();
        b.source("idle");
        let d = b.build();
        let view = d.view_all();
        let r = MajorityVote.discover(&view);
        let trust = MajorityVote.trust_from_predictions(&view, &r).unwrap();
        assert_eq!(trust.len(), r.source_trust.len());
        for (got, want) in trust.iter().zip(r.source_trust.iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // Through trait objects too — the blanket impls must forward the
        // override, not fall back to the default `None`.
        let boxed: Box<dyn TruthDiscovery + Send + Sync> = Box::new(MajorityVote);
        assert!(boxed.trust_from_predictions(&view, &r).is_some());
        let dyn_ref: &(dyn TruthDiscovery + Sync) = &MajorityVote;
        assert!((&dyn_ref).trust_from_predictions(&view, &r).is_some());
    }

    #[test]
    fn trust_from_predictions_unions_exactly_across_object_shards() {
        // Split the objects in two, discover each half separately, union
        // the predictions, and re-derive trust: bit-identical to the
        // whole-view run — the contract object-hash sharding leans on.
        let mut b = DatasetBuilder::new();
        for (i, o) in ["o1", "o2", "o3", "o4"].iter().enumerate() {
            b.claim("s1", o, "a", Value::int(i as i64)).unwrap();
            b.claim("s2", o, "a", Value::int(i as i64)).unwrap();
            b.claim("s3", o, "a", Value::int(99)).unwrap();
        }
        let d = b.build();
        let view = d.view_all();
        let whole = MajorityVote.discover(&view);

        let mut unioned = TruthResult::with_sources(d.n_sources(), 0.0);
        unioned.iterations = 1;
        for cell in view.cells() {
            let half = MajorityVote.discover(&view); // same view; predictions are cell-local
            let v = half.prediction(cell.object, cell.attribute).unwrap();
            let c = half.confidence(cell.object, cell.attribute).unwrap();
            unioned.set_prediction(cell.object, cell.attribute, v, c);
        }
        let trust = MajorityVote.trust_from_predictions(&view, &unioned).unwrap();
        for (got, want) in trust.iter().zip(whole.source_trust.iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn empty_view_yields_empty_result() {
        let d = DatasetBuilder::new().build();
        let r = MajorityVote.discover(&d.view_all());
        assert!(r.is_empty());
        assert_eq!(r.iterations, 1);
    }
}
