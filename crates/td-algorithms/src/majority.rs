//! Majority voting — the simplest baseline and TD-AC's default reference
//! algorithm for building attribute truth vectors.

use td_model::DatasetView;

use crate::common::{argmax_candidate, group_candidates, Candidate};
use crate::result::TruthResult;
use crate::traits::TruthDiscovery;

/// Per-cell plurality vote.
///
/// Each cell's winner is the value claimed by the most sources (ties
/// toward the smallest value id, making the algorithm deterministic); its
/// confidence is the winner's vote share. A source's reported trust is
/// the fraction of its claims that agree with the local majority — not
/// used by the vote itself, but handy as an initializer and for
/// diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl TruthDiscovery for MajorityVote {
    fn name(&self) -> &'static str {
        "MajorityVote"
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        let n_sources = view.n_sources();
        let mut result = TruthResult::with_sources(n_sources, 0.0);
        result.iterations = 1;

        let mut agree = vec![0u64; n_sources];
        let mut total = vec![0u64; n_sources];
        let mut cands: Vec<Candidate> = Vec::new();
        let mut claim_cand: Vec<u32> = Vec::new();

        for cell in view.cells() {
            let claims = view.cell_claims(cell);
            group_candidates(claims, &mut cands, &mut claim_cand);
            for c in cands.iter_mut() {
                c.score = c.count as f64;
            }
            let Some(win) = argmax_candidate(&cands) else {
                continue;
            };
            let winner = cands[win];
            let share = winner.count as f64 / claims.len() as f64;
            result.set_prediction(cell.object, cell.attribute, winner.value, share);
            for claim in claims {
                let s = claim.source.index();
                total[s] += 1;
                if claim.value == winner.value {
                    agree[s] += 1;
                }
            }
        }

        for s in 0..n_sources {
            result.source_trust[s] = if total[s] == 0 {
                0.5
            } else {
                agree[s] as f64 / total[s] as f64
            };
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{DatasetBuilder, Value};

    #[test]
    fn plurality_wins() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::text("x")).unwrap();
        b.claim("s2", "o", "a", Value::text("x")).unwrap();
        b.claim("s3", "o", "a", Value::text("y")).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        assert_eq!(r.prediction(o, a), Some(d.value_id(&Value::text("x")).unwrap()));
        assert!((r.confidence(o, a).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn tie_breaks_to_first_interned_value() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::text("x")).unwrap(); // interned first
        b.claim("s2", "o", "a", Value::text("y")).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let o = d.object_id("o").unwrap();
        let a = d.attribute_id("a").unwrap();
        assert_eq!(r.prediction(o, a), Some(d.value_id(&Value::text("x")).unwrap()));
    }

    #[test]
    fn source_trust_is_majority_agreement_rate() {
        let mut b = DatasetBuilder::new();
        // Two cells; s3 agrees with the majority once out of twice.
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s2", "o", "a1", Value::int(1)).unwrap();
        b.claim("s3", "o", "a1", Value::int(2)).unwrap();
        b.claim("s1", "o", "a2", Value::int(5)).unwrap();
        b.claim("s2", "o", "a2", Value::int(5)).unwrap();
        b.claim("s3", "o", "a2", Value::int(5)).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let s3 = d.source_id("s3").unwrap();
        assert!((r.source_trust[s3.index()] - 0.5).abs() < 1e-12);
        let s1 = d.source_id("s1").unwrap();
        assert!((r.source_trust[s1.index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_sources_get_neutral_trust() {
        let mut b = DatasetBuilder::new();
        b.source("idle");
        b.claim("busy", "o", "a", Value::int(1)).unwrap();
        let d = b.build();
        let r = MajorityVote.discover(&d.view_all());
        let idle = d.source_id("idle").unwrap();
        assert_eq!(r.source_trust[idle.index()], 0.5);
    }

    #[test]
    fn respects_view_restriction() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a1", Value::int(1)).unwrap();
        b.claim("s1", "o", "a2", Value::int(2)).unwrap();
        let d = b.build();
        let a1 = d.attribute_id("a1").unwrap();
        let a2 = d.attribute_id("a2").unwrap();
        let r = MajorityVote.discover(&d.view_of(&[a1]));
        let o = d.object_id("o").unwrap();
        assert!(r.prediction(o, a1).is_some());
        assert!(r.prediction(o, a2).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_view_yields_empty_result() {
        let d = DatasetBuilder::new().build();
        let r = MajorityVote.discover(&d.view_all());
        assert!(r.is_empty());
        assert_eq!(r.iterations, 1);
    }
}
