//! The algorithm abstraction TD-AC composes over.

use td_model::DatasetView;

use crate::result::TruthResult;

/// A truth-discovery algorithm: given conflicting claims, select the true
/// value of every `(object, attribute)` cell.
///
/// Implementations must be:
///
/// * **View-polymorphic** — operate on any [`DatasetView`], whether the
///   whole dataset or one attribute cluster of a TD-AC partition;
/// * **Deterministic** — identical inputs produce identical outputs
///   (required for reproducible experiments and for TD-AC's truth-vector
///   construction to be stable);
/// * **Global-id-preserving** — `source_trust` is indexed by the parent
///   dataset's `SourceId` space even when the view restricts attributes.
pub trait TruthDiscovery {
    /// Human-readable algorithm name as it appears in the paper's tables
    /// (e.g. `"TruthFinder"`, `"Accu"`).
    fn name(&self) -> &'static str;

    /// Runs the algorithm over `view` and returns its predictions.
    fn discover(&self, view: &DatasetView<'_>) -> TruthResult;

    /// [`TruthDiscovery::discover`] with instrumentation: records the
    /// run's fixpoint iteration count against `observer` (globally and
    /// under the per-algorithm label `fixpoint_iterations/<name>`).
    ///
    /// Provided — implementors never override it, so observation cannot
    /// change what an algorithm computes; with a disabled observer it is
    /// exactly `discover`.
    fn discover_observed(&self, view: &DatasetView<'_>, observer: &td_obs::Observer) -> TruthResult {
        let result = self.discover(view);
        observer.record_discovery(self.name(), result.iterations as u64);
        result
    }

    /// Reconstructs the trust vector this algorithm would report for
    /// `view` from an already-computed prediction set, or `None` when
    /// trust is not a pure function of the predictions.
    ///
    /// This is the opt-in contract behind object-hash sharding
    /// (`ShardStrategy::HashByObject` in `tdac-core`): when a view's
    /// objects are split across worker processes, per-cell predictions
    /// union exactly for cell-local algorithms, but the *global* trust
    /// vector spans every object — so the coordinator re-derives it
    /// from the merged predictions via this hook. An implementation
    /// must be **bit-exact**: given `result = self.discover(view)`,
    /// `trust_from_predictions(view, &result)` must return
    /// `Some(result.source_trust)` with every `f64` identical to the
    /// bit. Algorithms whose trust depends on iteration history or
    /// other non-prediction state keep the default `None`, and the
    /// shard coordinator rejects them for object sharding with a typed
    /// error instead of merging approximately.
    fn trust_from_predictions(
        &self,
        view: &DatasetView<'_>,
        result: &TruthResult,
    ) -> Option<Vec<f64>> {
        let _ = (view, result);
        None
    }
}

// Allow passing algorithms around as trait objects (the TD-AC API takes
// `&dyn TruthDiscovery` so callers can pick the base algorithm at runtime,
// exactly like the paper's `F` parameter).
impl<T: TruthDiscovery + ?Sized> TruthDiscovery for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        (**self).discover(view)
    }

    // Forwarded explicitly: falling through to the provided default
    // would silently erase an override behind a trait object.
    fn trust_from_predictions(
        &self,
        view: &DatasetView<'_>,
        result: &TruthResult,
    ) -> Option<Vec<f64>> {
        (**self).trust_from_predictions(view, result)
    }
}

impl<T: TruthDiscovery + ?Sized> TruthDiscovery for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn discover(&self, view: &DatasetView<'_>) -> TruthResult {
        (**self).discover(view)
    }

    fn trust_from_predictions(
        &self,
        view: &DatasetView<'_>,
        result: &TruthResult,
    ) -> Option<Vec<f64>> {
        (**self).trust_from_predictions(view, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::MajorityVote;
    use td_model::{DatasetBuilder, Value};

    #[test]
    fn trait_objects_and_references_work() {
        let mut b = DatasetBuilder::new();
        b.claim("s", "o", "a", Value::int(1)).unwrap();
        let d = b.build();
        let algo = MajorityVote;
        let by_ref: &dyn TruthDiscovery = &algo;
        let boxed: Box<dyn TruthDiscovery> = Box::new(MajorityVote);
        assert_eq!(by_ref.name(), "MajorityVote");
        assert_eq!(boxed.name(), "MajorityVote");
        assert_eq!(by_ref.discover(&d.view_all()).len(), 1);
        assert_eq!(boxed.discover(&d.view_all()).len(), 1);
        // &T blanket impl:
        assert_eq!(algo.discover(&d.view_all()).len(), 1);
    }

    #[test]
    fn discover_observed_matches_discover_and_records_iterations() {
        let mut b = DatasetBuilder::new();
        b.claim("s1", "o", "a", Value::int(1)).unwrap();
        b.claim("s2", "o", "a", Value::int(1)).unwrap();
        let d = b.build();
        let plain = MajorityVote.discover(&d.view_all());
        let obs = td_obs::Observer::enabled();
        let observed = MajorityVote.discover_observed(&d.view_all(), &obs);
        assert_eq!(
            observed.iter().collect::<Vec<_>>(),
            plain.iter().collect::<Vec<_>>()
        );
        assert_eq!(observed.iterations, plain.iterations);
        let profile = obs.profile().unwrap();
        assert_eq!(
            profile.counter("fixpoint_iterations"),
            Some(plain.iterations as u64)
        );
        assert_eq!(
            profile.counter("fixpoint_iterations/MajorityVote"),
            Some(plain.iterations as u64)
        );
        // Disabled observers leave the result identical too.
        let off = MajorityVote.discover_observed(&d.view_all(), &td_obs::Observer::disabled());
        assert_eq!(
            off.iter().collect::<Vec<_>>(),
            plain.iter().collect::<Vec<_>>()
        );
    }
}
